//! TinyLFU admission control.
//!
//! Eviction decides who *leaves*; admission decides who may *enter*. Under
//! scan-heavy or long-tailed traffic (the Meta trace's one-hit wonders),
//! plain LRU lets cold keys wash hot ones out. TinyLFU (Einziger et al.)
//! keeps an approximate frequency history — a count-min sketch of 4-bit
//! counters with periodic halving, fronted by a doorkeeper Bloom filter —
//! and admits a candidate only if it is historically more popular than the
//! eviction victim it would displace.
//!
//! Everything here is hash-based and O(1); the sketch uses ~8 bits per
//! expected cache entry, negligible next to the entries themselves.

use cachekit_hash::spread;
use serde::{Deserialize, Serialize};

mod cachekit_hash {
    /// Re-derive independent hash functions from one 64-bit key hash.
    pub fn spread(hash: u64, i: u64) -> u64 {
        crate::ring::splitmix64(hash ^ (i.wrapping_mul(0x9E3779B97F4A7C15)))
    }
}

/// Count-min sketch with 4-bit counters packed 16 per `u64`, 4 hash rows in
/// one flat table, and halving-based aging every `sample_size` increments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrequencySketch {
    table: Vec<u64>,
    /// Mask for slot selection (table length is a power of two).
    mask: u64,
    additions: u64,
    sample_size: u64,
}

const ROWS: u64 = 4;
const COUNTER_MAX: u64 = 15;

impl FrequencySketch {
    /// Size the sketch for roughly `capacity` distinct hot items.
    pub fn new(capacity: usize) -> Self {
        let slots = (capacity.max(16)).next_power_of_two();
        FrequencySketch {
            table: vec![0; slots],
            mask: (slots - 1) as u64,
            additions: 0,
            sample_size: (slots as u64) * 10,
        }
    }

    fn slot_of(&self, hash: u64, row: u64) -> (usize, u32) {
        let h = spread(hash, row);
        let index = (h & self.mask) as usize;
        // 16 4-bit counters per word; pick one from the upper hash bits.
        let counter = ((h >> 32) & 0xF) as u32;
        (index, counter * 4)
    }

    fn counter_at(&self, index: usize, shift: u32) -> u64 {
        (self.table[index] >> shift) & COUNTER_MAX
    }

    /// Record one occurrence of `hash`.
    ///
    /// Conservative update (Estan & Varghese): only the rows currently at
    /// the minimum are bumped. Rows above the minimum already overestimate
    /// this key — they carry some colliding neighbour's counts — so raising
    /// them again would only inflate *that* neighbour's estimate further.
    /// The minimum (which is what [`FrequencySketch::estimate`] reads)
    /// still advances by exactly one, so no estimate gets less accurate.
    pub fn increment(&mut self, hash: u64) {
        let mut slots = [(0usize, 0u32); ROWS as usize];
        let mut min = COUNTER_MAX;
        for (row, slot) in slots.iter_mut().enumerate() {
            *slot = self.slot_of(hash, row as u64);
            min = min.min(self.counter_at(slot.0, slot.1));
        }
        if min >= COUNTER_MAX {
            return; // all rows saturated: nothing to record
        }
        for &(index, shift) in &slots {
            if self.counter_at(index, shift) == min {
                self.table[index] += 1u64 << shift;
            }
        }
        self.additions += 1;
        if self.additions >= self.sample_size {
            self.age();
        }
    }

    /// Estimated frequency of `hash` (min over rows; ≤ 15).
    pub fn estimate(&self, hash: u64) -> u64 {
        (0..ROWS)
            .map(|row| {
                let (index, shift) = self.slot_of(hash, row);
                self.counter_at(index, shift)
            })
            .min()
            .unwrap_or(0)
    }

    /// Halve every counter — the aging step that keeps the sketch tracking
    /// *recent* popularity rather than all-time counts.
    fn age(&mut self) {
        for word in &mut self.table {
            // Halve each 4-bit lane: shift right then clear carried-in bits.
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.additions /= 2;
    }

    pub fn additions(&self) -> u64 {
        self.additions
    }
}

/// A small Bloom filter in front of the sketch: the first occurrence of a
/// key only sets doorkeeper bits, so one-hit wonders never pollute the
/// sketch counters. Reset on each aging cycle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Doorkeeper {
    bits: Vec<u64>,
    mask: u64,
    set_count: u64,
    reset_at: u64,
}

impl Doorkeeper {
    pub fn new(capacity: usize) -> Self {
        let words = (capacity.max(64) / 8).next_power_of_two();
        Doorkeeper {
            bits: vec![0; words],
            mask: (words as u64 * 64) - 1,
            set_count: 0,
            reset_at: words as u64 * 16, // ~25% fill before reset
        }
    }

    /// Insert; returns true if the key was (probably) already present.
    pub fn insert(&mut self, hash: u64) -> bool {
        let mut present = true;
        for i in 0..2u64 {
            let bit = spread(hash, 100 + i) & self.mask;
            let (word, offset) = ((bit / 64) as usize, bit % 64);
            if self.bits[word] >> offset & 1 == 0 {
                present = false;
                self.bits[word] |= 1 << offset;
                self.set_count += 1;
            }
        }
        // Backstop only: the primary reset rides the sketch's aging cycle
        // (see `TinyLfu::record`), but a filter saturating between cycles
        // would stop absorbing one-hit wonders, so clear it here too.
        if self.set_count >= self.reset_at {
            self.reset();
        }
        present
    }

    /// Membership test (no mutation): true if both probe bits are set.
    pub fn contains(&self, hash: u64) -> bool {
        (0..2u64).all(|i| {
            let bit = spread(hash, 100 + i) & self.mask;
            let (word, offset) = ((bit / 64) as usize, bit % 64);
            self.bits[word] >> offset & 1 == 1
        })
    }

    /// Clear every bit — called on each sketch aging cycle so doorkeeper
    /// history decays on the same clock as the counters.
    pub fn reset(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.set_count = 0;
    }
}

/// The TinyLFU admission policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TinyLfu {
    sketch: FrequencySketch,
    doorkeeper: Doorkeeper,
}

impl TinyLfu {
    pub fn new(expected_entries: usize) -> Self {
        TinyLfu {
            sketch: FrequencySketch::new(expected_entries),
            doorkeeper: Doorkeeper::new(expected_entries),
        }
    }

    /// Record one access to `hash` (call on every lookup and insert).
    ///
    /// The first occurrence only sets doorkeeper bits; repeats reach the
    /// sketch. When the sketch ages (detected by its additions counter
    /// halving), the doorkeeper resets with it, keeping both histories on
    /// the same decay clock.
    pub fn record(&mut self, hash: u64) {
        if self.doorkeeper.insert(hash) {
            let before = self.sketch.additions();
            self.sketch.increment(hash);
            if self.sketch.additions() < before {
                self.doorkeeper.reset();
            }
        }
    }

    /// Frequency estimate including the doorkeeper's implicit +1: a key
    /// whose only sighting lives in the doorkeeper still counts as seen
    /// once, so it can displace a victim with no history at all.
    pub fn estimate(&self, hash: u64) -> u64 {
        self.sketch.estimate(hash) + self.doorkeeper.contains(hash) as u64
    }

    /// Should `candidate` displace `victim`? Admit ties in favor of the
    /// candidate only when strictly more popular — conservative, matching
    /// the original TinyLFU design (protects the resident working set).
    pub fn admit(&self, candidate: u64, victim: u64) -> bool {
        self.estimate(candidate) > self.estimate(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::stable_hash;

    fn h(s: &str) -> u64 {
        stable_hash(s.as_bytes())
    }

    #[test]
    fn sketch_counts_frequencies_approximately() {
        let mut sk = FrequencySketch::new(1024);
        for _ in 0..10 {
            sk.increment(h("hot"));
        }
        sk.increment(h("cold"));
        assert!(sk.estimate(h("hot")) >= 8, "hot underestimated");
        assert!(sk.estimate(h("cold")) <= 3, "cold overestimated");
        assert_eq!(sk.estimate(h("never")), 0);
    }

    #[test]
    fn counters_saturate_at_fifteen() {
        let mut sk = FrequencySketch::new(64);
        for _ in 0..100 {
            sk.increment(h("k"));
        }
        assert!(sk.estimate(h("k")) <= 15);
    }

    #[test]
    fn aging_halves_counts() {
        let mut sk = FrequencySketch::new(16);
        for _ in 0..12 {
            sk.increment(h("a"));
        }
        let before = sk.estimate(h("a"));
        sk.age();
        let after = sk.estimate(h("a"));
        assert_eq!(after, before / 2);
    }

    #[test]
    fn doorkeeper_absorbs_first_touch() {
        let mut tl = TinyLfu::new(256);
        tl.record(h("one-hit"));
        // First touch lives only in the doorkeeper: the sketch stays clean
        // but the estimate still reflects the implicit +1.
        assert_eq!(tl.sketch.estimate(h("one-hit")), 0);
        assert_eq!(tl.estimate(h("one-hit")), 1);
        tl.record(h("one-hit"));
        assert!(tl.estimate(h("one-hit")) >= 2, "second touch reaches the sketch");
    }

    #[test]
    fn once_seen_candidate_beats_never_seen_victim() {
        // Regression: `estimate` used to drop the doorkeeper's implicit +1,
        // so a key seen exactly once tied a key never seen at all and the
        // tie-rejecting `admit` kept it out.
        let mut tl = TinyLfu::new(256);
        tl.record(h("seen-once"));
        assert_eq!(tl.estimate(h("never")), 0);
        assert_eq!(tl.estimate(h("seen-once")), 1);
        assert!(
            tl.admit(h("seen-once"), h("never")),
            "a once-seen candidate must displace a victim with no history"
        );
        assert!(!tl.admit(h("never"), h("seen-once")));
    }

    #[test]
    fn aging_resets_the_doorkeeper() {
        // Regression: the doorkeeper used to reset only at its own 25%-fill
        // threshold, never on the sketch's aging cycle as documented.
        let mut tl = TinyLfu::new(16); // sample_size = 160 additions/cycle
        tl.record(h("resident"));
        assert_eq!(tl.estimate(h("resident")), 1, "doorkeeper holds the first touch");
        // Drive the sketch through an aging cycle: a dozen keys recorded
        // past the doorkeeper, each adding ~15 additions before saturating
        // — far too few distinct keys to trip the 25%-fill backstop.
        for i in 0..12 {
            let key = h(&format!("driver{i}"));
            for _ in 0..16 {
                tl.record(key);
            }
        }
        assert_eq!(
            tl.estimate(h("resident")),
            0,
            "aging must clear doorkeeper bits along with halving the sketch"
        );
        // The sketch survives aging (halved), so real history remains.
        assert!(tl.estimate(h("driver0")) >= 1);
    }

    /// The pre-fix full update: bump every unsaturated row, minimum or not.
    fn full_update(sk: &mut FrequencySketch, hash: u64) {
        for row in 0..ROWS {
            let (index, shift) = sk.slot_of(hash, row);
            if sk.counter_at(index, shift) < COUNTER_MAX {
                sk.table[index] += 1u64 << shift;
            }
        }
    }

    #[test]
    fn conservative_update_never_less_accurate_than_full_update() {
        // Property vs an exact-count oracle, over deterministic pseudo-random
        // streams: for every key, min(true, 15) <= conservative <= full.
        // The left inequality is the count-min guarantee (estimates never
        // undershoot); the right says conservative update only ever removes
        // overestimation error, never adds it.
        let mut seed = 0x9E37u64;
        let mut next = move || {
            seed = crate::ring::splitmix64(seed);
            seed
        };
        for _trial in 0..20 {
            let mut cons = FrequencySketch::new(256);
            let mut full = FrequencySketch::new(256);
            let mut exact: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
            // Short streams: stay below sample_size so aging never fires
            // and the exact oracle stays comparable.
            for _ in 0..800 {
                let key = next() % 64; // small domain forces collisions
                let hash = crate::ring::splitmix64(key);
                cons.increment(hash);
                full_update(&mut full, hash);
                *exact.entry(hash).or_insert(0) += 1;
            }
            for (&hash, &count) in &exact {
                let c = cons.estimate(hash);
                let f = full.estimate(hash);
                assert!(
                    c >= count.min(COUNTER_MAX),
                    "conservative undershoots: {c} < {count}"
                );
                assert!(
                    c <= f,
                    "conservative overestimate {c} exceeds full-update {f}"
                );
            }
        }
    }

    #[test]
    fn admit_prefers_frequent_candidates() {
        let mut tl = TinyLfu::new(1024);
        for _ in 0..8 {
            tl.record(h("popular"));
        }
        tl.record(h("rare"));
        assert!(tl.admit(h("popular"), h("rare")));
        assert!(!tl.admit(h("rare"), h("popular")));
        // Ties (both unknown) reject the candidate: protect residents.
        assert!(!tl.admit(h("x"), h("y")));
    }

    #[test]
    fn sketch_distinguishes_many_keys() {
        let mut sk = FrequencySketch::new(4096);
        for i in 0..200u32 {
            let key = format!("hot{i}");
            for _ in 0..9 {
                sk.increment(h(&key));
            }
        }
        for i in 0..2000u32 {
            sk.increment(h(&format!("cold{i}")));
        }
        let mut hot_wins = 0;
        for i in 0..200u32 {
            if sk.estimate(h(&format!("hot{i}"))) > sk.estimate(h(&format!("cold{}", i * 7))) {
                hot_wins += 1;
            }
        }
        assert!(hot_wins > 180, "sketch collisions too damaging: {hot_wins}/200");
    }
}
