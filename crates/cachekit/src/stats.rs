//! Cache statistics. Every architecture's cost accounting starts from these
//! counters: hit/miss ratios determine how often the expensive storage path
//! runs, which is the paper's whole cost story.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// Monotonic counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    /// Entries dropped because their TTL elapsed.
    pub expired: u64,
    /// Entries removed by explicit invalidation.
    pub invalidations: u64,
    /// Inserts rejected because the entry exceeded total capacity.
    pub rejected: u64,
}

impl CacheStats {
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits / lookups; 0 when idle.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Misses / lookups; 0 when idle (note: *not* 1, so an unused cache does
    /// not report a pessimal miss ratio).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Export every counter (plus the derived hit ratio) into a metrics
    /// registry as `{prefix}hits_total`, `{prefix}misses_total`, … with
    /// `labels` on each series. Idle caches export nothing.
    pub fn export(&self, reg: &mut telemetry::Registry, prefix: &str, labels: &[(&str, &str)]) {
        if self.lookups() == 0 && self.inserts == 0 {
            return;
        }
        let counters: [(&str, u64); 7] = [
            ("hits_total", self.hits),
            ("misses_total", self.misses),
            ("inserts_total", self.inserts),
            ("evictions_total", self.evictions),
            ("expired_total", self.expired),
            ("invalidations_total", self.invalidations),
            ("rejected_total", self.rejected),
        ];
        for (name, value) in counters {
            reg.set_counter(&format!("{prefix}{name}"), labels, value);
        }
        reg.set_gauge(&format!("{prefix}hit_ratio"), labels, self.hit_ratio());
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.inserts += rhs.inserts;
        self.evictions += rhs.evictions;
        self.expired += rhs.expired;
        self.invalidations += rhs.invalidations;
        self.rejected += rhs.rejected;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} (hit ratio {:.3}) evictions={} expired={} invalidations={}",
            self.hits,
            self.misses,
            self.hit_ratio(),
            self.evictions,
            self.expired,
            self.invalidations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_idle_cache() {
        let s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.miss_ratio(), 0.0);
    }

    #[test]
    fn ratios_sum_to_one_under_traffic() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_ratio() + s.miss_ratio() - 1.0).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn export_skips_idle_and_emits_series() {
        let mut reg = telemetry::Registry::new();
        CacheStats::default().export(&mut reg, "cache_", &[]);
        assert!(reg.is_empty(), "idle cache exports nothing");
        let s = CacheStats {
            hits: 3,
            misses: 1,
            inserts: 1,
            ..Default::default()
        };
        s.export(&mut reg, "cache_", &[("shard", "0")]);
        assert_eq!(reg.counter_value("cache_hits_total", &[("shard", "0")]), Some(3));
        assert_eq!(reg.gauge_value("cache_hit_ratio", &[("shard", "0")]), Some(0.75));
    }

    #[test]
    fn add_assign_merges_all_fields() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            inserts: 3,
            evictions: 4,
            expired: 5,
            invalidations: 6,
            rejected: 7,
        };
        a += a;
        assert_eq!(a.hits, 2);
        assert_eq!(a.rejected, 14);
        assert_eq!(a.lookups(), 6);
    }
}
