//! A deterministic, allocation-free hasher for the cache's internal index.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3 with a random seed) costs
//! tens of nanoseconds per small key — measurable when every simulated
//! request performs several cache lookups. The index map never exposes
//! iteration order, so swapping the hasher cannot change any simulated
//! outcome; it only removes wall-clock cost. This is the FxHash
//! multiply-mix (as used by rustc), which is not DoS-resistant — fine for a
//! simulator hashing its own deterministic keys, wrong for a network
//! service.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// FxHash: one multiply + rotate per word of input.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] — use as the `S` parameter of `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` indexed by the deterministic fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_bytes(b: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(b);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_bytes(b"hello world"), hash_bytes(b"hello world"));
        assert_ne!(hash_bytes(b"hello world"), hash_bytes(b"hello worle"));
    }

    #[test]
    fn short_inputs_do_not_collide_trivially() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }

    #[test]
    fn tail_bytes_are_significant() {
        assert_ne!(hash_bytes(b"12345678a"), hash_bytes(b"12345678b"));
        assert_ne!(hash_bytes(b"12345678"), hash_bytes(b"123456780"));
    }
}
