//! Property test: the TTL'd cache against a shadow oracle.
//!
//! The oracle is a `BTreeMap` of `key -> (value, charge, expires_at)` that
//! applies the documented TTL semantics directly: inserts store
//! `now.saturating_add(ttl)` (or the cache-wide default, or never), an
//! entry with `expires_at <= now` does not exist, overwrites reset the
//! deadline, and removal is immediate. Two modes:
//!
//! * **exact** — capacity far above the working set, no admission gate, so
//!   nothing is ever evicted and the cache must agree with the oracle on
//!   *every* observable: get/contains outcomes, length, `used_bytes`,
//!   `resident_bytes`, and `expire_sweep` counts.
//! * **capped** — a small byte cap makes evictions constant; the contract
//!   weakens to fail-open (a miss is always safe) but a *hit* must still
//!   serve exactly the oracle's unexpired value, and expired entries must
//!   never be served no matter what eviction did around them.
//!
//! Both streams flip the default TTL mid-run via `set_default_ttl` — the
//! adaptive-TTL-control-plane case — which the oracle mirrors by tracking
//! the same default.

use cachekit::cache::ENTRY_OVERHEAD_BYTES;
use cachekit::Cache;
use std::collections::BTreeMap;

/// xorshift64* — deterministic, dependency-free op stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Clone, Copy)]
struct ShadowEntry {
    value: u64,
    charge: u64,
    expires_at: u64,
}

struct Shadow {
    map: BTreeMap<u64, ShadowEntry>,
    default_ttl: Option<u64>,
}

impl Shadow {
    fn insert(&mut self, key: u64, value: u64, value_bytes: u64, now: u64, ttl: Option<u64>) {
        // Explicit TTL wins; otherwise the default; otherwise never.
        let expires_at = match ttl.or(self.default_ttl) {
            Some(t) => now.saturating_add(t),
            None => u64::MAX,
        };
        self.map.insert(
            key,
            ShadowEntry {
                value,
                charge: value_bytes + ENTRY_OVERHEAD_BYTES,
                expires_at,
            },
        );
    }

    fn alive(&self, key: u64, now: u64) -> Option<&ShadowEntry> {
        self.map.get(&key).filter(|e| e.expires_at > now)
    }

    /// Drop lapsed entries, returning how many an eager sweep reclaims.
    fn sweep(&mut self, now: u64) -> usize {
        let before = self.map.len();
        self.map.retain(|_, e| e.expires_at > now);
        before - self.map.len()
    }

    fn resident_bytes(&self, now: u64) -> u64 {
        self.map
            .values()
            .filter(|e| e.expires_at > now)
            .map(|e| e.charge)
            .sum()
    }

    fn used_bytes(&self) -> u64 {
        self.map.values().map(|e| e.charge).sum()
    }
}

fn drive(cache: &mut Cache<u64, u64>, shadow: &mut Shadow, seed: u64, ops: u64, exact: bool) {
    const KEYS: u64 = 48;
    let mut rng = Rng(seed | 1);
    let mut now = 0u64;
    let (mut hits, mut inserts, mut sweeps_reclaimed) = (0u64, 0u64, 0usize);

    for step in 0..ops {
        now += rng.below(200); // uneven clock so deadlines interleave ops
        let key = rng.below(KEYS);
        match rng.below(12) {
            // Reads: the oracle's main observable.
            0..=4 => {
                let got = cache.get(&key, now).copied();
                match (got, shadow.alive(key, now).map(|e| e.value)) {
                    (Some(v), Some(want)) => {
                        assert_eq!(v, want, "step {step}: hit served the wrong value");
                        hits += 1;
                    }
                    (Some(v), None) => {
                        panic!("step {step}: served {v} for a key the oracle rules out")
                    }
                    (None, Some(_)) => {
                        // Fail-open: legal only when eviction may have
                        // removed it. In exact mode nothing evicts.
                        assert!(!exact, "step {step}: exact-mode miss on a live key");
                        shadow.map.remove(&key);
                    }
                    (None, None) => {}
                }
                // A get on an expired entry reclaims it in both worlds.
                if shadow.map.get(&key).is_some_and(|e| e.expires_at <= now) {
                    shadow.map.remove(&key);
                }
            }
            // Insert with an explicit TTL (sometimes 0, sometimes huge).
            5..=6 => {
                let ttl = match rng.below(8) {
                    0 => 0,
                    1 => u64::MAX,
                    _ => 1 + rng.below(5_000),
                };
                let bytes = 16 + rng.below(112);
                inserts += 1;
                cache.insert_with_ttl(key, step, bytes, now, ttl);
                shadow.insert(key, step, bytes, now, Some(ttl));
            }
            // Insert under the current default TTL.
            7..=8 => {
                let bytes = 16 + rng.below(112);
                inserts += 1;
                cache.insert(key, step, bytes, now);
                shadow.insert(key, step, bytes, now, None);
            }
            // Remove.
            9 => {
                let got = cache.remove(&key);
                let want = shadow.map.remove(&key);
                if exact {
                    assert_eq!(got, want.map(|e| e.value), "step {step}: remove diverged");
                } else if let Some(v) = got {
                    assert_eq!(Some(v), want.map(|e| e.value), "step {step}: removed wrong value");
                }
            }
            // Eager sweep.
            10 => {
                let got = cache.expire_sweep(now);
                let want = shadow.sweep(now);
                if exact {
                    assert_eq!(got, want, "step {step}: sweep reclaimed a different count");
                } else {
                    assert!(got <= want, "step {step}: swept more than ever expired");
                }
                sweeps_reclaimed += got;
            }
            // The control plane retunes the default TTL mid-stream.
            _ => {
                let ttl = match rng.below(4) {
                    0 => None,
                    1 => Some(0),
                    _ => Some(1 + rng.below(3_000)),
                };
                cache.set_default_ttl(ttl);
                shadow.default_ttl = ttl;
            }
        }
        if exact {
            assert_eq!(cache.len(), shadow.map.len(), "step {step}: length diverged");
            assert_eq!(cache.used_bytes(), shadow.used_bytes(), "step {step}: used bytes");
            assert_eq!(
                cache.resident_bytes(now),
                shadow.resident_bytes(now),
                "step {step}: resident bytes diverged"
            );
        } else {
            assert!(cache.used_bytes() <= cache.capacity_bytes(), "step {step}: cap breached");
            assert!(cache.resident_bytes(now) <= cache.used_bytes(), "step {step}");
        }
    }

    // The stream must exercise the machinery, not miss its way through.
    assert!(hits > 0, "vacuous run: no hits");
    assert!(inserts > 0, "vacuous run: no inserts");
    assert!(sweeps_reclaimed > 0, "vacuous run: sweeps never reclaimed anything");
    assert!(cache.stats().expired > 0, "vacuous run: nothing ever expired");
}

#[test]
fn uncapped_cache_matches_the_oracle_exactly() {
    for seed in [7, 42, 4242] {
        let mut cache: Cache<u64, u64> = Cache::lru(1 << 30);
        let mut shadow = Shadow { map: BTreeMap::new(), default_ttl: None };
        drive(&mut cache, &mut shadow, seed, 20_000, true);
    }
}

#[test]
fn capped_cache_is_fail_open_but_never_serves_ghosts() {
    for seed in [7, 42, 4242] {
        // ~6 entries' worth of bytes: evictions are constant even though
        // expiry keeps trimming the resident set.
        let mut cache: Cache<u64, u64> = Cache::lru(6 * 192);
        let mut shadow = Shadow { map: BTreeMap::new(), default_ttl: None };
        drive(&mut cache, &mut shadow, seed, 20_000, false);
        assert!(cache.stats().evictions > 0, "capped run must actually evict");
    }
}
