//! Property test: the L0 tier against a shadow oracle.
//!
//! The L0's contract is fail-open: a miss is always safe, but a *hit* makes
//! hard promises — the value is the one from the latest accepted admit, its
//! version never regresses past an invalidation, its age is measured from
//! the admit that stored it, and in serve-stale mode the age never reaches
//! the declared bound. The oracle tracks, per key, the only state the tier
//! is allowed to serve (`Some((version, stored_at))` = "if resident, then
//! exactly this"; `None` = "definitely absent") and checks every hit
//! against it. Eviction, TTL expiry and the TinyLFU gate may turn any
//! `Some` into a silent miss — that's the fail-open half, and the oracle
//! deliberately accepts it — but the reverse direction (serving something
//! the shadow rules out) is a coherence bug.
//!
//! Ops are driven by a deterministic xorshift stream over a small keyspace
//! and a small byte cap, so evictions, scans, stale refills and
//! invalidation races all actually happen.

use cachekit::{L0Cache, L0Mode, L0Params};
use std::collections::HashMap;

/// xorshift64* — deterministic, dependency-free op stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// What the tier may serve for one key, if it serves anything at all.
#[derive(Clone, Copy)]
struct Possible {
    version: u64,
    stored_at: u64,
}

fn run_oracle(mode: L0Mode, seed: u64, ops: u64) {
    const KEYS: u64 = 32;
    let mut l0: L0Cache<u64, (u64, u64)> = L0Cache::new(L0Params {
        capacity_bytes: 2_048,
        expected_entries: 64,
        mode,
    });
    let mut rng = Rng(seed | 1);
    // The authoritative store: version each writer bumps.
    let mut authoritative: HashMap<u64, u64> = HashMap::new();
    // The oracle: per key, the only (version, stored_at) a hit may carry.
    let mut possible: HashMap<u64, Possible> = HashMap::new();
    let (mut gets, mut admits, mut invalidates) = (0u64, 0u64, 0u64);

    for step in 0..ops {
        let now = step * 1_000; // 1 µs per op keeps ages readable
        let key = rng.below(KEYS);
        match rng.below(10) {
            // Read-and-fill: the common serve path.
            0..=5 => {
                gets += 1;
                let hit = l0.get(&key, now).map(|h| (*h.value, h.version, h.age_nanos));
                if let Some(((vk, vv), version, age)) = hit {
                    let p = possible
                        .get(&key)
                        .unwrap_or_else(|| panic!("step {step}: hit on a key the oracle ruled absent"));
                    assert_eq!(version, p.version, "step {step}: served version diverged");
                    assert_eq!(
                        age,
                        now - p.stored_at,
                        "step {step}: age not measured from the storing admit"
                    );
                    assert_eq!((vk, vv), (key, version), "step {step}: served value diverged");
                    if let L0Mode::ServeStale { stale_after_nanos } = mode {
                        assert!(
                            age < stale_after_nanos,
                            "step {step}: served {age} ns stale, bound {stale_after_nanos}"
                        );
                    }
                } else {
                    // Fail open: fetch from the authoritative store and offer.
                    let version = *authoritative.entry(key).or_insert(1);
                    admits += 1;
                    if l0.admit(key, (key, version), version, 16 + rng.below(112), now) {
                        possible.insert(key, Possible { version, stored_at: now });
                    }
                }
            }
            // Write: bump the authoritative version; invalidate-first purges.
            6..=7 => {
                let v = authoritative.entry(key).or_insert(1);
                *v += 1;
                let new_version = *v;
                if !matches!(mode, L0Mode::ServeStale { .. }) {
                    invalidates += 1;
                    let removed = l0.invalidate(&key, new_version);
                    if let Some(p) = possible.get(&key).copied() {
                        if p.version < new_version {
                            possible.remove(&key);
                        } else {
                            assert!(
                                !removed,
                                "step {step}: invalidation removed an entry at or past v{new_version}"
                            );
                        }
                    } else {
                        assert!(!removed, "step {step}: invalidation removed a ruled-absent entry");
                    }
                }
            }
            // A late refill: an offer at an old version must never roll the
            // tier backwards past what it *currently holds*. The shadow
            // can't know residency (eviction is silent), but the tier's own
            // stale-drop counter discloses which case happened: a drop
            // proves the resident entry was newer — which the oracle can
            // cross-check — while an accept is legal whenever the key was
            // evicted in between, and simply re-arms the oracle at the old
            // version (subsequent hits must then serve exactly that).
            8 => {
                let version = authoritative.get(&key).copied().unwrap_or(1);
                let old = version.saturating_sub(1 + rng.below(3)).max(1);
                let drops_before = l0.stats().stale_admits_dropped;
                admits += 1;
                if l0.admit(key, (key, old), old, 64, now) {
                    possible.insert(key, Possible { version: old, stored_at: now });
                } else if l0.stats().stale_admits_dropped > drops_before {
                    let p = possible.get(&key).unwrap_or_else(|| {
                        panic!("step {step}: stale-drop against a ruled-absent entry")
                    });
                    assert!(
                        p.version > old,
                        "step {step}: v{old} dropped as stale against resident v{}",
                        p.version
                    );
                }
            }
            // A cold scan key: mostly bounced by the TinyLFU gate, but if
            // one gets in it plays by the same rules.
            _ => {
                let scan_key = KEYS + rng.below(1_000);
                admits += 1;
                if l0.admit(scan_key, (scan_key, 1), 1, 64, now) {
                    possible.insert(scan_key, Possible { version: 1, stored_at: now });
                }
            }
        }
        assert!(
            l0.used_bytes() <= l0.capacity_bytes(),
            "step {step}: byte cap breached ({} > {})",
            l0.used_bytes(),
            l0.capacity_bytes()
        );
    }

    // Stats tally exactly with the ops issued — nothing double-counted.
    let s = l0.stats();
    assert_eq!(s.hits + s.misses, gets, "get accounting");
    assert_eq!(
        s.admitted + s.rejected + s.stale_admits_dropped,
        admits,
        "admit accounting"
    );
    assert_eq!(
        s.invalidations + s.invalidation_misses,
        invalidates,
        "invalidate accounting"
    );
    // The run must exercise the interesting paths, not just miss its way
    // through: hits, admissions, gate rejections and (in invalidate-first)
    // actual invalidations.
    assert!(s.hits > 0, "vacuous run: no hits");
    assert!(s.admitted > 0, "vacuous run: nothing admitted");
    assert!(s.rejected > 0, "vacuous run: the admission gate never fired");
    if !matches!(mode, L0Mode::ServeStale { .. }) {
        assert!(s.invalidations > 0, "vacuous run: nothing invalidated");
    }
}

#[test]
fn invalidate_first_matches_the_oracle() {
    for seed in [7, 42, 4242] {
        run_oracle(L0Mode::InvalidateFirst, seed, 20_000);
    }
}

#[test]
fn serve_stale_matches_the_oracle() {
    for seed in [7, 42, 4242] {
        run_oracle(
            L0Mode::ServeStale {
                stale_after_nanos: 50_000, // 50 ops — entries expire mid-run
            },
            seed,
            20_000,
        );
    }
}
