//! Oracle property tests for [`cachekit::ShardedCache`].
//!
//! The oracle is deliberately naive: one flat list of resident entries per
//! shard with LRU recency order, routed by an independently-constructed
//! [`HashRing`] with the same parameters. Every observable of every
//! operation — hit/miss per get, [`InsertOutcome`] (including how many
//! entries each insert evicted), remove results, per-shard byte usage and
//! the aggregate [`CacheStats`] counters — must match the real sharded
//! cache operation-for-operation under arbitrary interleavings.
//!
//! Two drivers feed the same checker: a deterministic splitmix64 trace
//! generator that always runs (the vendored offline proptest stub swallows
//! `proptest!` blocks), and a `proptest!` block that adds shrinking and
//! broader exploration when the real crate is available.

// The offline `proptest` stub swallows `proptest!` blocks, leaving the
// strategy helpers (and some imports) unreferenced in offline builds.
#![allow(dead_code, unused_imports)]
use cachekit::cache::ENTRY_OVERHEAD_BYTES;
use cachekit::{CacheStats, HashRing, InsertOutcome, PolicyKind, ShardedCache};
use proptest::prelude::*;
use std::collections::VecDeque;

const KEY_UNIVERSE: u8 = 48;
const PER_SHARD_CAPACITY: u64 = 2_000;

/// Flat per-shard LRU deques as a reference model of `ShardedCache` with
/// `PolicyKind::Lru` and no TTLs. Front of each deque = most recent.
struct ShardedOracle {
    shards: Vec<VecDeque<(Vec<u8>, u64, u32)>>, // (key, charge, value)
    ring: HashRing,
    per_shard_capacity: u64,
    stats: CacheStats,
}

impl ShardedOracle {
    fn new(shard_count: u32, per_shard_capacity: u64) -> Self {
        ShardedOracle {
            shards: (0..shard_count).map(|_| VecDeque::new()).collect(),
            // Same vnode count ShardedCache::new uses, so routing agrees.
            ring: HashRing::with_shards(shard_count, 128),
            per_shard_capacity,
            stats: CacheStats::default(),
        }
    }

    fn owner(&self, key: &[u8]) -> usize {
        self.ring.shard_for(key).expect("ring has shards") as usize
    }

    fn shard_used(&self, shard: usize) -> u64 {
        self.shards[shard].iter().map(|&(_, c, _)| c).sum()
    }

    fn used(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.shard_used(s)).sum()
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.shards[self.owner(key)].iter().any(|(k, _, _)| k == key)
    }

    fn get(&mut self, key: &[u8]) -> Option<u32> {
        let shard = self.owner(key);
        let deque = &mut self.shards[shard];
        if let Some(pos) = deque.iter().position(|(k, _, _)| k == key) {
            let e = deque.remove(pos).unwrap();
            let value = e.2;
            deque.push_front(e);
            self.stats.hits += 1;
            Some(value)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    fn insert(&mut self, key: &[u8], value: u32, value_bytes: u64) -> InsertOutcome {
        let charge = value_bytes + ENTRY_OVERHEAD_BYTES;
        if charge > self.per_shard_capacity {
            self.stats.rejected += 1;
            return InsertOutcome::TooLarge;
        }
        let shard = self.owner(key);
        let replaced =
            if let Some(pos) = self.shards[shard].iter().position(|(k, _, _)| k == key) {
                self.shards[shard].remove(pos);
                true
            } else {
                false
            };
        let mut evicted = 0;
        while self.shard_used(shard) + charge > self.per_shard_capacity {
            self.shards[shard].pop_back();
            self.stats.evictions += 1;
            evicted += 1;
        }
        self.shards[shard].push_front((key.to_vec(), charge, value));
        self.stats.inserts += 1;
        if replaced {
            InsertOutcome::Replaced { evicted }
        } else {
            InsertOutcome::Inserted { evicted }
        }
    }

    fn remove(&mut self, key: &[u8]) -> Option<u32> {
        let shard = self.owner(key);
        if let Some(pos) = self.shards[shard].iter().position(|(k, _, _)| k == key) {
            let (_, _, value) = self.shards[shard].remove(pos).unwrap();
            self.stats.invalidations += 1;
            Some(value)
        } else {
            None
        }
    }

    /// Elastic resize: every shard's capacity changes and each over-full
    /// shard evicts from its LRU tail until it fits. Returns evictions.
    fn resize(&mut self, per_shard_capacity: u64) -> u64 {
        self.per_shard_capacity = per_shard_capacity;
        let mut evicted = 0;
        for shard in 0..self.shards.len() {
            while self.shard_used(shard) > per_shard_capacity {
                self.shards[shard].pop_back();
                self.stats.evictions += 1;
                evicted += 1;
            }
        }
        evicted
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Get(u8),
    Insert(u8, u64),
    Remove(u8),
    /// Set every shard's byte capacity (the elastic controller's move).
    Resize(u64),
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("key{k}").into_bytes()
}

/// Run one trace against both implementations, checking every observable
/// after every operation. Plain asserts so both drivers can share it.
fn check_trace(shard_count: u32, ops: &[Op]) {
    let mut cache: ShardedCache<u32> =
        ShardedCache::new(shard_count, PER_SHARD_CAPACITY, PolicyKind::Lru);
    let mut oracle = ShardedOracle::new(shard_count, PER_SHARD_CAPACITY);

    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Get(k) => {
                let key = key_bytes(k);
                assert_eq!(oracle.owner(&key), cache.owner(&key), "routing diverged");
                let real = cache.get(&key, 0).copied();
                let expect = oracle.get(&key);
                assert_eq!(real, expect, "get(key{k}) at op {i}");
            }
            Op::Insert(k, sz) => {
                let key = key_bytes(k);
                let real = cache.insert(&key, i as u32, sz, 0);
                let expect = oracle.insert(&key, i as u32, sz);
                assert_eq!(real, expect, "insert(key{k}, {sz}) at op {i}");
            }
            Op::Remove(k) => {
                let key = key_bytes(k);
                let real = cache.remove(&key);
                let expect = oracle.remove(&key);
                assert_eq!(real, expect, "remove(key{k}) at op {i}");
            }
            Op::Resize(cap) => {
                let real = cache.set_per_shard_capacity(cap);
                let expect = oracle.resize(cap);
                assert_eq!(real.evicted_entries, expect, "resize({cap}) at op {i}");
                assert_eq!(real.migrated_entries, 0, "resize never migrates");
                assert_eq!(cache.total_capacity_bytes(), cap * shard_count as u64);
            }
        }
        assert_eq!(cache.total_used_bytes(), oracle.used(), "bytes at op {i}");
        assert!(cache.total_used_bytes() <= cache.total_capacity_bytes());
    }

    // Aggregate counters must agree exactly (no TTLs => expired is 0 on
    // both sides), and so must per-key residency across the universe.
    assert_eq!(cache.stats(), oracle.stats);
    for k in 0..KEY_UNIVERSE {
        let key = key_bytes(k);
        assert_eq!(cache.contains(&key, 0), oracle.contains(&key), "residency of key{k}");
    }
    let mut summed = CacheStats::default();
    for s in 0..shard_count as usize {
        summed += *cache.shard_stats(s);
    }
    assert_eq!(summed, cache.stats(), "shard stats must partition the aggregate");
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn random_trace(seed: u64, len: usize) -> Vec<Op> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            let r = splitmix64(&mut state);
            let key = (r >> 8) as u8 % KEY_UNIVERSE;
            match r % 16 {
                0..=5 => Op::Get(key),
                // Sizes span "many fit" through "one barely fits" through
                // "rejected as too large for a whole shard".
                6..=11 => Op::Insert(key, 1 + (r >> 16) % 2_200),
                12 | 13 => Op::Remove(key),
                // Capacities span "evict almost everything" through "larger
                // than the starting capacity".
                _ => Op::Resize(ENTRY_OVERHEAD_BYTES + (r >> 16) % 3_000),
            }
        })
        .collect()
}

/// Always-running driver: 64 seeds × 400 ops across 1–5 shards.
#[test]
fn sharded_cache_matches_flat_oracle_on_random_traces() {
    for seed in 0..64u64 {
        let shard_count = 1 + (seed % 5) as u32;
        let ops = random_trace(0xD15C0 ^ (seed * 0x9e37), 400);
        check_trace(shard_count, &ops);
    }
}

/// Hand-picked edge traces: replacement that must evict, an entry exactly
/// at capacity, and remove-then-reinsert cycles.
#[test]
fn sharded_cache_matches_oracle_on_edge_traces() {
    let exact_fit = PER_SHARD_CAPACITY - ENTRY_OVERHEAD_BYTES;
    check_trace(
        3,
        &[
            Op::Insert(1, exact_fit), // fills its whole shard
            Op::Insert(1, exact_fit), // same-key replacement at full capacity
            Op::Insert(2, exact_fit + 1), // rejected: larger than a shard
            Op::Get(1),
            Op::Remove(1),
            Op::Get(1),
            Op::Insert(1, 1),
            Op::Remove(1),
        ],
    );
    // Many small entries then one huge one: the insert must cascade
    // evictions through its owner shard only.
    let mut ops: Vec<Op> = (0..40).map(|k| Op::Insert(k, 50)).collect();
    ops.push(Op::Insert(40, exact_fit));
    (0..40).for_each(|k| ops.push(Op::Get(k)));
    check_trace(2, &ops);
}

/// Resize edges: shrink below the resident set, shrink to the point where
/// nothing fits, then regrow and refill. Recency from a prior hit must
/// steer which entries the shrink keeps, exactly as in the oracle.
#[test]
fn sharded_cache_matches_oracle_across_resizes() {
    let mut ops = vec![
        Op::Insert(0, 500),
        Op::Insert(1, 500),
        Op::Insert(2, 500),
        Op::Insert(3, 500),
        Op::Get(0), // promote key0 so the shrink keeps it if it can
        Op::Resize(700),
        Op::Get(0),
        Op::Resize(ENTRY_OVERHEAD_BYTES), // nothing fits: shards empty out
        Op::Get(0),
        Op::Insert(4, 100), // rejected while capacity is tiny
        Op::Resize(PER_SHARD_CAPACITY),
        Op::Insert(4, 100),
        Op::Get(4),
    ];
    // And a grow applied while already under capacity changes nothing.
    ops.push(Op::Resize(PER_SHARD_CAPACITY * 2));
    ops.push(Op::Get(4));
    for shards in 1..=4u32 {
        check_trace(shards, &ops);
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..KEY_UNIVERSE).prop_map(Op::Get),
        3 => ((0u8..KEY_UNIVERSE), (1u64..2_200)).prop_map(|(k, sz)| Op::Insert(k, sz)),
        1 => (0u8..KEY_UNIVERSE).prop_map(Op::Remove),
        1 => (ENTRY_OVERHEAD_BYTES..3_000u64).prop_map(Op::Resize),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Shrinking driver for the same checker (no-op under the offline
    /// proptest stub; full exploration with the real crate).
    #[test]
    fn sharded_cache_matches_flat_oracle(
        shard_count in 1u32..6,
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        check_trace(shard_count, &ops);
    }
}
