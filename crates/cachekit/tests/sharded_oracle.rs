//! Oracle property tests for [`cachekit::ShardedCache`].
//!
//! The oracle is deliberately naive: one flat list of resident entries per
//! shard with LRU recency order, routed by an independently-constructed
//! [`HashRing`] with the same parameters. Every observable of every
//! operation — hit/miss per get, [`InsertOutcome`] (including how many
//! entries each insert evicted), remove results, per-shard byte usage and
//! the aggregate [`CacheStats`] counters — must match the real sharded
//! cache operation-for-operation under arbitrary interleavings.
//!
//! Two drivers feed the same checker: a deterministic splitmix64 trace
//! generator that always runs (the vendored offline proptest stub swallows
//! `proptest!` blocks), and a `proptest!` block that adds shrinking and
//! broader exploration when the real crate is available.

use cachekit::cache::ENTRY_OVERHEAD_BYTES;
use cachekit::{CacheStats, HashRing, InsertOutcome, PolicyKind, ShardedCache};
use proptest::prelude::*;
use std::collections::VecDeque;

const KEY_UNIVERSE: u8 = 48;
const PER_SHARD_CAPACITY: u64 = 2_000;

/// Flat per-shard LRU deques as a reference model of `ShardedCache` with
/// `PolicyKind::Lru` and no TTLs. Front of each deque = most recent.
struct ShardedOracle {
    shards: Vec<VecDeque<(Vec<u8>, u64, u32)>>, // (key, charge, value)
    ring: HashRing,
    per_shard_capacity: u64,
    stats: CacheStats,
}

impl ShardedOracle {
    fn new(shard_count: u32, per_shard_capacity: u64) -> Self {
        ShardedOracle {
            shards: (0..shard_count).map(|_| VecDeque::new()).collect(),
            // Same vnode count ShardedCache::new uses, so routing agrees.
            ring: HashRing::with_shards(shard_count, 128),
            per_shard_capacity,
            stats: CacheStats::default(),
        }
    }

    fn owner(&self, key: &[u8]) -> usize {
        self.ring.shard_for(key).expect("ring has shards") as usize
    }

    fn shard_used(&self, shard: usize) -> u64 {
        self.shards[shard].iter().map(|&(_, c, _)| c).sum()
    }

    fn used(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.shard_used(s)).sum()
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.shards[self.owner(key)].iter().any(|(k, _, _)| k == key)
    }

    fn get(&mut self, key: &[u8]) -> Option<u32> {
        let shard = self.owner(key);
        let deque = &mut self.shards[shard];
        if let Some(pos) = deque.iter().position(|(k, _, _)| k == key) {
            let e = deque.remove(pos).unwrap();
            let value = e.2;
            deque.push_front(e);
            self.stats.hits += 1;
            Some(value)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    fn insert(&mut self, key: &[u8], value: u32, value_bytes: u64) -> InsertOutcome {
        let charge = value_bytes + ENTRY_OVERHEAD_BYTES;
        if charge > self.per_shard_capacity {
            self.stats.rejected += 1;
            return InsertOutcome::TooLarge;
        }
        let shard = self.owner(key);
        let replaced =
            if let Some(pos) = self.shards[shard].iter().position(|(k, _, _)| k == key) {
                self.shards[shard].remove(pos);
                true
            } else {
                false
            };
        let mut evicted = 0;
        while self.shard_used(shard) + charge > self.per_shard_capacity {
            self.shards[shard].pop_back();
            self.stats.evictions += 1;
            evicted += 1;
        }
        self.shards[shard].push_front((key.to_vec(), charge, value));
        self.stats.inserts += 1;
        if replaced {
            InsertOutcome::Replaced { evicted }
        } else {
            InsertOutcome::Inserted { evicted }
        }
    }

    fn remove(&mut self, key: &[u8]) -> Option<u32> {
        let shard = self.owner(key);
        if let Some(pos) = self.shards[shard].iter().position(|(k, _, _)| k == key) {
            let (_, _, value) = self.shards[shard].remove(pos).unwrap();
            self.stats.invalidations += 1;
            Some(value)
        } else {
            None
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Get(u8),
    Insert(u8, u64),
    Remove(u8),
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("key{k}").into_bytes()
}

/// Run one trace against both implementations, checking every observable
/// after every operation. Plain asserts so both drivers can share it.
fn check_trace(shard_count: u32, ops: &[Op]) {
    let mut cache: ShardedCache<u32> =
        ShardedCache::new(shard_count, PER_SHARD_CAPACITY, PolicyKind::Lru);
    let mut oracle = ShardedOracle::new(shard_count, PER_SHARD_CAPACITY);

    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Get(k) => {
                let key = key_bytes(k);
                assert_eq!(oracle.owner(&key), cache.owner(&key), "routing diverged");
                let real = cache.get(&key, 0).copied();
                let expect = oracle.get(&key);
                assert_eq!(real, expect, "get(key{k}) at op {i}");
            }
            Op::Insert(k, sz) => {
                let key = key_bytes(k);
                let real = cache.insert(&key, i as u32, sz, 0);
                let expect = oracle.insert(&key, i as u32, sz);
                assert_eq!(real, expect, "insert(key{k}, {sz}) at op {i}");
            }
            Op::Remove(k) => {
                let key = key_bytes(k);
                let real = cache.remove(&key);
                let expect = oracle.remove(&key);
                assert_eq!(real, expect, "remove(key{k}) at op {i}");
            }
        }
        assert_eq!(cache.total_used_bytes(), oracle.used(), "bytes at op {i}");
        assert!(cache.total_used_bytes() <= cache.total_capacity_bytes());
    }

    // Aggregate counters must agree exactly (no TTLs => expired is 0 on
    // both sides), and so must per-key residency across the universe.
    assert_eq!(cache.stats(), oracle.stats);
    for k in 0..KEY_UNIVERSE {
        let key = key_bytes(k);
        assert_eq!(cache.contains(&key, 0), oracle.contains(&key), "residency of key{k}");
    }
    let mut summed = CacheStats::default();
    for s in 0..shard_count as usize {
        summed += *cache.shard_stats(s);
    }
    assert_eq!(summed, cache.stats(), "shard stats must partition the aggregate");
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn random_trace(seed: u64, len: usize) -> Vec<Op> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            let r = splitmix64(&mut state);
            let key = (r >> 8) as u8 % KEY_UNIVERSE;
            match r % 7 {
                0..=2 => Op::Get(key),
                // Sizes span "many fit" through "one barely fits" through
                // "rejected as too large for a whole shard".
                3..=5 => Op::Insert(key, 1 + (r >> 16) % 2_200),
                _ => Op::Remove(key),
            }
        })
        .collect()
}

/// Always-running driver: 64 seeds × 400 ops across 1–5 shards.
#[test]
fn sharded_cache_matches_flat_oracle_on_random_traces() {
    for seed in 0..64u64 {
        let shard_count = 1 + (seed % 5) as u32;
        let ops = random_trace(0xD15C0 ^ (seed * 0x9e37), 400);
        check_trace(shard_count, &ops);
    }
}

/// Hand-picked edge traces: replacement that must evict, an entry exactly
/// at capacity, and remove-then-reinsert cycles.
#[test]
fn sharded_cache_matches_oracle_on_edge_traces() {
    let exact_fit = PER_SHARD_CAPACITY - ENTRY_OVERHEAD_BYTES;
    check_trace(
        3,
        &[
            Op::Insert(1, exact_fit), // fills its whole shard
            Op::Insert(1, exact_fit), // same-key replacement at full capacity
            Op::Insert(2, exact_fit + 1), // rejected: larger than a shard
            Op::Get(1),
            Op::Remove(1),
            Op::Get(1),
            Op::Insert(1, 1),
            Op::Remove(1),
        ],
    );
    // Many small entries then one huge one: the insert must cascade
    // evictions through its owner shard only.
    let mut ops: Vec<Op> = (0..40).map(|k| Op::Insert(k, 50)).collect();
    ops.push(Op::Insert(40, exact_fit));
    (0..40).for_each(|k| ops.push(Op::Get(k)));
    check_trace(2, &ops);
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..KEY_UNIVERSE).prop_map(Op::Get),
        3 => ((0u8..KEY_UNIVERSE), (1u64..2_200)).prop_map(|(k, sz)| Op::Insert(k, sz)),
        1 => (0u8..KEY_UNIVERSE).prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Shrinking driver for the same checker (no-op under the offline
    /// proptest stub; full exploration with the real crate).
    #[test]
    fn sharded_cache_matches_flat_oracle(
        shard_count in 1u32..6,
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        check_trace(shard_count, &ops);
    }
}
