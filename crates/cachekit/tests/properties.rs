//! Property-based tests for cachekit's core invariants.
//!
//! These are the "cannot be wrong" guarantees every architecture in the cost
//! study leans on: capacity is never exceeded, LRU matches a reference model
//! operation-for-operation, rings rebalance minimally, and the analytic MRC
//! agrees with brute force.

// The offline `proptest` stub swallows `proptest!` blocks, leaving the
// strategy helpers (and some imports) unreferenced in offline builds.
#![allow(dead_code, unused_imports)]
use cachekit::cache::ENTRY_OVERHEAD_BYTES;
use cachekit::{Cache, HashRing, PolicyKind, StackDistance};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference LRU: a deque of (key, charge), most recent at the front.
struct ModelLru {
    items: VecDeque<(u16, u64)>,
    capacity: u64,
}

impl ModelLru {
    fn used(&self) -> u64 {
        self.items.iter().map(|&(_, c)| c).sum()
    }

    fn get(&mut self, key: u16) -> bool {
        if let Some(pos) = self.items.iter().position(|&(k, _)| k == key) {
            let e = self.items.remove(pos).unwrap();
            self.items.push_front(e);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: u16, charge: u64) {
        if charge > self.capacity {
            return;
        }
        if let Some(pos) = self.items.iter().position(|&(k, _)| k == key) {
            self.items.remove(pos);
        }
        while self.used() + charge > self.capacity {
            self.items.pop_back();
        }
        self.items.push_front((key, charge));
    }

    fn remove(&mut self, key: u16) -> bool {
        if let Some(pos) = self.items.iter().position(|&(k, _)| k == key) {
            self.items.remove(pos);
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Get(u16),
    Insert(u16, u64),
    Remove(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..64).prop_map(Op::Get),
        ((0u16..64), (1u64..400)).prop_map(|(k, sz)| Op::Insert(k, sz)),
        (0u16..64).prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The cache agrees with a brute-force LRU model on every observable:
    /// hit/miss per get, membership per remove, and byte usage throughout.
    #[test]
    fn lru_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let capacity = 2_000u64;
        let mut cache: Cache<u16, ()> = Cache::lru(capacity);
        let mut model = ModelLru { items: VecDeque::new(), capacity };
        for op in ops {
            match op {
                Op::Get(k) => {
                    let real = cache.get(&k, 0).is_some();
                    let expect = model.get(k);
                    prop_assert_eq!(real, expect, "get({}) mismatch", k);
                }
                Op::Insert(k, sz) => {
                    cache.insert(k, (), sz, 0);
                    model.insert(k, sz + ENTRY_OVERHEAD_BYTES);
                }
                Op::Remove(k) => {
                    let real = cache.remove(&k).is_some();
                    let expect = model.remove(k);
                    prop_assert_eq!(real, expect, "remove({}) mismatch", k);
                }
            }
            prop_assert_eq!(cache.used_bytes(), model.used());
            prop_assert_eq!(cache.len(), model.items.len());
            prop_assert!(cache.used_bytes() <= capacity);
        }
    }

    /// No policy ever exceeds capacity, loses a just-inserted hot key
    /// spuriously, or miscounts bytes, under arbitrary workloads.
    #[test]
    fn every_policy_respects_capacity(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        policy_idx in 0usize..PolicyKind::ALL.len(),
    ) {
        let kind = PolicyKind::ALL[policy_idx];
        let capacity = 1_500u64;
        let mut cache: Cache<u16, u16> = Cache::new(capacity, kind);
        for op in &ops {
            match *op {
                Op::Get(k) => { cache.get(&k, 0); }
                Op::Insert(k, sz) => {
                    cache.insert(k, k, sz, 0);
                    if sz + ENTRY_OVERHEAD_BYTES <= capacity {
                        // An entry that fits must be resident immediately
                        // after its own insert, under every policy.
                        prop_assert_eq!(cache.peek(&k), Some(&k), "{:?}", kind);
                    }
                }
                Op::Remove(k) => { cache.remove(&k); }
            }
            prop_assert!(cache.used_bytes() <= capacity, "{:?}", kind);
        }
        // Byte accounting must agree with per-entry charges.
        let sum: u64 = cache.keys().map(|k| cache.charge_of(k).unwrap()).sum();
        prop_assert_eq!(sum, cache.used_bytes());
    }

    /// Get after insert always returns the latest value (until eviction),
    /// and values never cross keys.
    #[test]
    fn get_returns_latest_value(keys in proptest::collection::vec(0u16..32, 1..100)) {
        let mut cache: Cache<u16, u64> = Cache::lru(1 << 20);
        let mut latest = std::collections::HashMap::new();
        for (i, k) in keys.iter().enumerate() {
            cache.insert(*k, i as u64, 10, 0);
            latest.insert(*k, i as u64);
        }
        for (k, v) in latest {
            prop_assert_eq!(cache.get(&k, 0), Some(&v));
        }
    }

    /// Ring: every key routes to a live shard, and removing one shard moves
    /// only the keys it owned.
    #[test]
    fn ring_reshard_moves_minimum(
        shards in 2u32..12,
        remove in 0u32..12,
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..20), 1..200),
    ) {
        let remove = remove % shards;
        let before = HashRing::with_shards(shards, 64);
        let mut after = before.clone();
        after.remove_shard(remove);
        for k in &keys {
            let a = before.shard_for(k).unwrap();
            let b = after.shard_for(k).unwrap();
            prop_assert!(a < shards);
            prop_assert_ne!(b, remove);
            if a != remove {
                prop_assert_eq!(a, b, "key moved that was not on removed shard");
            }
        }
    }

    /// Mattson's stack distances agree with direct LRU simulation at
    /// arbitrary cache sizes on arbitrary traces.
    #[test]
    fn mattson_equals_lru_simulation(
        trace in proptest::collection::vec(0u32..50, 10..400),
        entries in 1u64..60,
    ) {
        let mut sd = StackDistance::new();
        for &k in &trace {
            sd.access(k);
        }
        let curve = sd.curve();

        let per_entry = 100 + ENTRY_OVERHEAD_BYTES;
        let mut cache: Cache<u32, ()> = Cache::lru(entries * per_entry);
        let mut misses = 0u64;
        for &k in &trace {
            if cache.get(&k, 0).is_none() {
                misses += 1;
                cache.insert(k, (), 100, 0);
            }
        }
        let sim = misses as f64 / trace.len() as f64;
        let analytic = curve.miss_ratio(entries);
        prop_assert!((sim - analytic).abs() < 1e-9,
            "entries={} sim={} mattson={}", entries, sim, analytic);
    }

    /// TTL: an entry is visible strictly before expiry and never after.
    #[test]
    fn ttl_boundary_is_exact(ttl in 1u64..1_000_000, probe in 0u64..2_000_000) {
        let mut cache: Cache<u8, ()> = Cache::lru(10_000);
        cache.insert_with_ttl(1, (), 10, 0, ttl);
        let visible = cache.get(&1, probe).is_some();
        prop_assert_eq!(visible, probe < ttl);
    }
}
