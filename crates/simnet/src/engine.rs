//! The discrete-event kernel.
//!
//! [`Sim<W>`] owns a virtual clock and a priority queue of events. An event
//! is a boxed `FnOnce(&mut W, &mut Sim<W>)` closure: it receives mutable
//! access to the user's world and to the kernel itself (to read the clock,
//! draw randomness, and schedule further events). Ties in time are broken by
//! insertion sequence number, so execution order is fully deterministic.

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

// Events are `Send` so a whole `Sim<W>` (with its queued closures) can move
// to a sweep worker thread; each simulation still runs single-threaded.
type BoxedEvent<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>) + Send>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    event: BoxedEvent<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}

impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Scheduled<W> {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulation kernel. Generic over the world type `W` that events mutate.
pub struct Sim<W> {
    clock: SimTime,
    queue: BinaryHeap<Scheduled<W>>,
    next_seq: u64,
    rng: StdRng,
    executed: u64,
    stopped: bool,
}

impl<W> Sim<W> {
    /// Create a kernel with a deterministic seed. Equal seeds and equal event
    /// insertion orders produce identical runs.
    pub fn new(seed: u64) -> Self {
        Sim {
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            rng: StdRng::seed_from_u64(seed),
            executed: 0,
            stopped: false,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The kernel's RNG. All randomness in a simulation must come from here
    /// (or from generators seeded from here) to preserve determinism.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }

    /// Fork an independent, deterministic RNG (e.g. to hand to a workload
    /// generator) without entangling its stream with the kernel's.
    pub fn fork_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.rng.gen())
    }

    /// Schedule `event` to run at absolute time `at`. Scheduling in the past
    /// clamps to "now" (the event still runs, after already-queued events at
    /// the current instant).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut W, &mut Sim<W>) + Send + 'static,
    ) {
        let at = at.max(self.clock);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            event: Box::new(event),
        });
    }

    /// Schedule `event` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut W, &mut Sim<W>) + Send + 'static,
    ) {
        self.schedule_at(self.clock + delay, event);
    }

    /// Request that the run loop stop after the current event returns.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Run until the queue drains or [`Sim::stop`] is called.
    pub fn run(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }

    /// Run events with `at <= deadline`; the clock finishes at the deadline
    /// (or at the last event if the queue drained first and was earlier).
    /// Events scheduled past the deadline stay queued.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        self.stopped = false;
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            let scheduled = self.queue.pop().expect("peeked entry must pop");
            debug_assert!(scheduled.at >= self.clock, "time must not run backwards");
            self.clock = scheduled.at;
            self.executed += 1;
            (scheduled.event)(world, self);
            if self.stopped {
                return;
            }
        }
        if deadline != SimTime::MAX {
            self.clock = self.clock.max(deadline);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn sim_is_send_when_world_is_send() {
        // A sweep worker must be able to own a whole simulation, queued
        // events included. Compile-time check; nothing to run.
        fn assert_send<T: Send>() {}
        assert_send::<Sim<World>>();
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        sim.schedule_in(SimDuration::from_millis(20), |w: &mut World, s| {
            w.log.push((s.now().as_millis(), "b"))
        });
        sim.schedule_in(SimDuration::from_millis(10), |w: &mut World, s| {
            w.log.push((s.now().as_millis(), "a"))
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b")]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        for name in ["first", "second", "third"] {
            sim.schedule_at(SimTime::from_nanos(5), move |w: &mut World, _| {
                w.log.push((0, name))
            });
        }
        sim.run(&mut w);
        let names: Vec<_> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        sim.schedule_in(SimDuration::from_millis(1), |_, s| {
            s.schedule_in(SimDuration::from_millis(1), |w: &mut World, s| {
                w.log.push((s.now().as_millis(), "nested"));
            });
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(2, "nested")]);
    }

    #[test]
    fn run_until_leaves_later_events_queued_and_advances_clock() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        sim.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| {
            w.log.push((1, "early"))
        });
        sim.schedule_in(SimDuration::from_secs(10), |w: &mut World, _| {
            w.log.push((10, "late"))
        });
        sim.run_until(&mut w, SimTime::from_nanos(5_000_000_000));
        assert_eq!(w.log.len(), 1);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now().as_secs_f64(), 5.0);
        sim.run(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        sim.schedule_in(SimDuration::from_secs(2), |w: &mut World, s| {
            s.schedule_at(SimTime::ZERO, |w: &mut World, s| {
                w.log.push((s.now().as_millis(), "clamped"));
            });
            w.log.push((s.now().as_millis(), "outer"));
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(2000, "outer"), (2000, "clamped")]);
    }

    #[test]
    fn stop_halts_immediately() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        sim.schedule_in(SimDuration::from_millis(1), |w: &mut World, s| {
            w.log.push((1, "ran"));
            s.stop();
        });
        sim.schedule_in(SimDuration::from_millis(2), |w: &mut World, _| {
            w.log.push((2, "never"));
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(1, "ran")]);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn identical_seeds_give_identical_random_streams() {
        let draws = |seed: u64| -> Vec<u64> {
            let mut sim: Sim<()> = Sim::new(seed);
            (0..8).map(|_| sim.rng().gen()).collect()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn forked_rng_is_deterministic_and_independent() {
        let mut sim: Sim<()> = Sim::new(3);
        let mut f1 = sim.fork_rng();
        let a: u64 = f1.gen();
        let mut sim2: Sim<()> = Sim::new(3);
        let mut f2 = sim2.fork_rng();
        let b: u64 = f2.gen();
        assert_eq!(a, b);
    }
}
