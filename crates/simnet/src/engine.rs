//! The discrete-event kernel.
//!
//! [`Sim<W>`] owns a virtual clock and a pending-event structure. An event
//! is a boxed `FnOnce(&mut W, &mut Sim<W>)` closure: it receives mutable
//! access to the user's world and to the kernel itself (to read the clock,
//! draw randomness, and schedule further events). Ties in time are broken by
//! insertion sequence number, so execution order is fully deterministic.
//!
//! # Internals: hierarchical timer wheel + event arena
//!
//! The queue is a six-level hierarchical timer wheel (64 slots per level,
//! one-nanosecond ticks) instead of a binary heap. Level `L` buckets events
//! by the `L`-th base-64 digit of their absolute nanosecond timestamp, so a
//! slot at level 0 holds events of exactly one instant and a slot at level
//! `L` spans `64^L` ns. A per-level occupancy bitmap turns "find the next
//! non-empty slot" into a `trailing_zeros`, scheduling appends to an
//! intrusive singly-linked slot list, and expiring a higher-level slot
//! re-distributes ("cascades") its list into lower levels. Events beyond
//! the wheel's ~68 s horizon wait in an overflow heap ordered by
//! `(time, seq)` and are promoted en masse when the wheel drains up to
//! them. Every path preserves the exact `(time, seq)` pop order of the old
//! heap — `tests/wheel_oracle.rs` checks that differentially against a
//! `BinaryHeap` re-implementation.
//!
//! Event records live in a slab arena with an intrusive freelist: the
//! steady-state schedule→fire cycle reuses arena slots instead of touching
//! the allocator (the closure box is the only per-event allocation).
//! [`Sim::schedule_at`] returns an [`EventId`] — a generation-checked
//! arena handle — which [`Sim::cancel`] invalidates lazily, so cancels and
//! reschedules are O(1) and never reshuffle the wheel.

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

// Events are `Send` so a whole `Sim<W>` (with its queued closures) can move
// to a sweep worker thread; each simulation still runs single-threaded.
type BoxedEvent<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>) + Send>;

/// Wheel geometry: 6 levels × 64 slots of 1 ns ticks ⇒ a 64⁶ ns ≈ 68.7 s
/// horizon; anything further sits in the overflow heap until promoted.
const LEVELS: usize = 6;
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;

/// Sentinel for "no slot" in intrusive lists.
const NIL: u32 = u32::MAX;

/// Handle to a scheduled event, returned by [`Sim::schedule_at`] /
/// [`Sim::schedule_in`] and consumed by [`Sim::cancel`]. Generation-checked:
/// a handle goes stale (cancel returns `false`) once the event has fired or
/// been cancelled, even if the arena slot is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId {
    index: u32,
    gen: u32,
}

/// One arena slot: timestamp, tie-break sequence, generation for handle
/// validation, intrusive list link, and the event closure (`None` once the
/// event is cancelled or fired).
struct EventSlot<W> {
    at: SimTime,
    seq: u64,
    gen: u32,
    next: u32,
    event: Option<BoxedEvent<W>>,
}

/// Head/tail of one wheel slot's intrusive list (append-to-tail keeps
/// equal-time events in seq order).
#[derive(Clone, Copy)]
struct SlotList {
    head: u32,
    tail: u32,
}

impl SlotList {
    const EMPTY: SlotList = SlotList {
        head: NIL,
        tail: NIL,
    };
}

/// Overflow-heap entry: min-ordered by `(at, seq)`.
struct Overflow {
    at: u64,
    seq: u64,
    index: u32,
}

impl PartialEq for Overflow {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Overflow {}
impl PartialOrd for Overflow {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Overflow {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulation kernel. Generic over the world type `W` that events mutate.
pub struct Sim<W> {
    clock: SimTime,
    /// Wheel reference point in ticks. Always `>= clock` ticks and `<=` the
    /// next pending event; slot digits are interpreted relative to this.
    cursor: u64,
    wheel: [[SlotList; SLOTS]; LEVELS],
    occupied: [u64; LEVELS],
    overflow: BinaryHeap<Overflow>,
    arena: Vec<EventSlot<W>>,
    free_head: u32,
    /// Scheduled and not yet fired or cancelled.
    live: usize,
    next_seq: u64,
    rng: StdRng,
    executed: u64,
    stopped: bool,
}

impl<W> Sim<W> {
    /// Create a kernel with a deterministic seed. Equal seeds and equal event
    /// insertion orders produce identical runs.
    pub fn new(seed: u64) -> Self {
        Sim {
            clock: SimTime::ZERO,
            cursor: 0,
            wheel: [[SlotList::EMPTY; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            arena: Vec::new(),
            free_head: NIL,
            live: 0,
            next_seq: 0,
            rng: StdRng::seed_from_u64(seed),
            executed: 0,
            stopped: false,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (scheduled, not yet fired or
    /// cancelled).
    pub fn pending(&self) -> usize {
        self.live
    }

    /// The kernel's RNG. All randomness in a simulation must come from here
    /// (or from generators seeded from here) to preserve determinism.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }

    /// Fork an independent, deterministic RNG (e.g. to hand to a workload
    /// generator) without entangling its stream with the kernel's.
    pub fn fork_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.rng.gen())
    }

    /// Schedule `event` to run at absolute time `at`. Scheduling in the past
    /// clamps to "now" (the event still runs, after already-queued events at
    /// the current instant). Returns a handle for [`Sim::cancel`].
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut W, &mut Sim<W>) + Send + 'static,
    ) -> EventId {
        let at = at.max(self.clock);
        let seq = self.next_seq;
        self.next_seq += 1;
        let index = self.alloc(at, seq, Box::new(event));
        self.live += 1;
        self.place(index);
        EventId {
            index,
            gen: self.arena[index as usize].gen,
        }
    }

    /// Schedule `event` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut W, &mut Sim<W>) + Send + 'static,
    ) -> EventId {
        self.schedule_at(self.clock + delay, event)
    }

    /// Cancel a pending event. Returns `true` if the handle was live (the
    /// event will not run); `false` if it already fired, was already
    /// cancelled, or the handle is stale. O(1): the record is tombstoned in
    /// place and reclaimed when the wheel next sweeps past it.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.arena.get_mut(id.index as usize) {
            Some(slot) if slot.gen == id.gen && slot.event.is_some() => {
                slot.event = None;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Request that the run loop stop after the current event returns.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Run until the queue drains or [`Sim::stop`] is called.
    pub fn run(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }

    /// Run events with `at <= deadline`; the clock finishes at the deadline
    /// (or at the last event if the queue drained first and was earlier).
    /// Events scheduled past the deadline stay queued.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        self.stopped = false;
        while let Some((at, index)) = self.pop_next(deadline) {
            debug_assert!(at >= self.clock, "time must not run backwards");
            self.clock = at;
            self.cursor = at.as_nanos();
            self.executed += 1;
            let event = self.arena[index as usize].event.take().expect("live event");
            self.live -= 1;
            self.release(index);
            event(world, self);
            if self.stopped {
                return;
            }
        }
        if deadline != SimTime::MAX {
            self.clock = self.clock.max(deadline);
        }
    }

    // ---- arena ----

    fn alloc(&mut self, at: SimTime, seq: u64, event: BoxedEvent<W>) -> u32 {
        if self.free_head != NIL {
            let index = self.free_head;
            let slot = &mut self.arena[index as usize];
            self.free_head = slot.next;
            slot.at = at;
            slot.seq = seq;
            slot.next = NIL;
            slot.event = Some(event);
            index
        } else {
            let index = u32::try_from(self.arena.len()).expect("arena capacity");
            self.arena.push(EventSlot {
                at,
                seq,
                gen: 0,
                next: NIL,
                event: Some(event),
            });
            index
        }
    }

    /// Return an unlinked record to the freelist, invalidating handles.
    fn release(&mut self, index: u32) {
        let slot = &mut self.arena[index as usize];
        slot.gen = slot.gen.wrapping_add(1);
        slot.event = None;
        slot.next = self.free_head;
        self.free_head = index;
    }

    // ---- wheel ----

    /// File an unlinked record into the wheel (or overflow) based on its
    /// timestamp relative to the cursor.
    fn place(&mut self, index: u32) {
        let at = self.arena[index as usize].at.as_nanos();
        debug_assert!(at >= self.cursor, "placement behind the wheel cursor");
        let diff = at ^ self.cursor;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        };
        if level >= LEVELS {
            let seq = self.arena[index as usize].seq;
            self.overflow.push(Overflow { at, seq, index });
            return;
        }
        let slot = ((at >> (SLOT_BITS as u64 * level as u64)) & SLOT_MASK) as usize;
        self.arena[index as usize].next = NIL;
        let list = &mut self.wheel[level][slot];
        if list.head == NIL {
            list.head = index;
        } else {
            self.arena[list.tail as usize].next = index;
        }
        list.tail = index;
        self.occupied[level] |= 1 << slot;
    }

    /// Drop tombstoned (cancelled) records off the front of a slot list,
    /// clearing the occupancy bit if the list empties. Returns the surviving
    /// head, if any.
    fn clean_list_head(&mut self, level: usize, slot: usize) -> Option<u32> {
        loop {
            let head = self.wheel[level][slot].head;
            if head == NIL {
                self.wheel[level][slot] = SlotList::EMPTY;
                self.occupied[level] &= !(1 << slot);
                return None;
            }
            if self.arena[head as usize].event.is_some() {
                return Some(head);
            }
            let next = self.arena[head as usize].next;
            self.wheel[level][slot].head = next;
            if next == NIL {
                self.wheel[level][slot].tail = NIL;
            }
            self.release(head);
        }
    }

    /// Find (and commit the wheel to) the next live event with
    /// `at <= deadline`, unlinking it. The cursor never advances past an
    /// event that stays queued, so later insertions remain well-placed.
    fn pop_next(&mut self, deadline: SimTime) -> Option<(SimTime, u32)> {
        loop {
            // Level 0: a slot is a single instant, so the lowest occupied
            // slot's head (cancelled entries swept) is the global minimum.
            if self.occupied[0] != 0 {
                let slot = self.occupied[0].trailing_zeros() as usize;
                match self.clean_list_head(0, slot) {
                    None => continue,
                    Some(head) => {
                        let at = self.arena[head as usize].at;
                        if at > deadline {
                            return None;
                        }
                        let next = self.arena[head as usize].next;
                        self.wheel[0][slot].head = next;
                        if next == NIL {
                            self.wheel[0][slot] = SlotList::EMPTY;
                            self.occupied[0] &= !(1 << slot);
                        }
                        return Some((at, head));
                    }
                }
            }

            // Higher levels: cascade the lowest occupied slot of the lowest
            // occupied level — every pending wheel event at or below that
            // window sits inside it (digits above are shared with the
            // cursor), so redistribution is safe and order-preserving.
            if let Some(level) = (1..LEVELS).find(|&l| self.occupied[l] != 0) {
                let slot = self.occupied[level].trailing_zeros() as usize;
                // Peek the slot's minimum live timestamp before committing
                // the cursor, so a deadline in the middle of an idle gap
                // leaves the wheel untouched for pre-deadline insertions.
                let mut min_at: Option<SimTime> = None;
                let mut cur = self.wheel[level][slot].head;
                while cur != NIL {
                    let rec = &self.arena[cur as usize];
                    if rec.event.is_some() && min_at.is_none_or(|m| rec.at < m) {
                        min_at = Some(rec.at);
                    }
                    cur = rec.next;
                }
                let Some(min_at) = min_at else {
                    // Entirely tombstones: sweep and retry.
                    self.clean_list_head(level, slot);
                    continue;
                };
                if min_at > deadline {
                    return None;
                }
                // Advance the cursor to the slot's window base and cascade.
                let shift = SLOT_BITS as u64 * level as u64;
                let window = SLOT_BITS as u64 * (level as u64 + 1);
                self.cursor = ((self.cursor >> window) << window) | ((slot as u64) << shift);
                let mut cur = self.wheel[level][slot].head;
                self.wheel[level][slot] = SlotList::EMPTY;
                self.occupied[level] &= !(1 << slot);
                while cur != NIL {
                    let next = self.arena[cur as usize].next;
                    if self.arena[cur as usize].event.is_some() {
                        self.place(cur);
                    } else {
                        self.release(cur);
                    }
                    cur = next;
                }
                continue;
            }

            // Wheel empty: promote from overflow. Wheel windows are aligned,
            // so every overflow event is later than every wheel event was —
            // rebasing the cursor on the overflow minimum is safe.
            match self.overflow.peek() {
                None => return None,
                Some(top) => {
                    if self.arena[top.index as usize].event.is_none() {
                        let dead = self.overflow.pop().expect("peeked").index;
                        self.release(dead);
                        continue;
                    }
                    if SimTime::from_nanos(top.at) > deadline {
                        return None;
                    }
                    self.cursor = top.at;
                    // Pull every event now inside the horizon, in (at, seq)
                    // order so same-instant promotions stay seq-ordered.
                    while let Some(top) = self.overflow.peek() {
                        if (top.at ^ self.cursor) >> (SLOT_BITS as u64 * LEVELS as u64) != 0 {
                            break;
                        }
                        let of = self.overflow.pop().expect("peeked");
                        if self.arena[of.index as usize].event.is_some() {
                            self.place(of.index);
                        } else {
                            self.release(of.index);
                        }
                    }
                    continue;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn sim_is_send_when_world_is_send() {
        // A sweep worker must be able to own a whole simulation, queued
        // events included. Compile-time check; nothing to run.
        fn assert_send<T: Send>() {}
        assert_send::<Sim<World>>();
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        sim.schedule_in(SimDuration::from_millis(20), |w: &mut World, s| {
            w.log.push((s.now().as_millis(), "b"))
        });
        sim.schedule_in(SimDuration::from_millis(10), |w: &mut World, s| {
            w.log.push((s.now().as_millis(), "a"))
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b")]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        for name in ["first", "second", "third"] {
            sim.schedule_at(SimTime::from_nanos(5), move |w: &mut World, _| {
                w.log.push((0, name))
            });
        }
        sim.run(&mut w);
        let names: Vec<_> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        sim.schedule_in(SimDuration::from_millis(1), |_, s| {
            s.schedule_in(SimDuration::from_millis(1), |w: &mut World, s| {
                w.log.push((s.now().as_millis(), "nested"));
            });
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(2, "nested")]);
    }

    #[test]
    fn run_until_leaves_later_events_queued_and_advances_clock() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        sim.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| {
            w.log.push((1, "early"))
        });
        sim.schedule_in(SimDuration::from_secs(10), |w: &mut World, _| {
            w.log.push((10, "late"))
        });
        sim.run_until(&mut w, SimTime::from_nanos(5_000_000_000));
        assert_eq!(w.log.len(), 1);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now().as_secs_f64(), 5.0);
        sim.run(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        sim.schedule_in(SimDuration::from_secs(2), |w: &mut World, s| {
            s.schedule_at(SimTime::ZERO, |w: &mut World, s| {
                w.log.push((s.now().as_millis(), "clamped"));
            });
            w.log.push((s.now().as_millis(), "outer"));
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(2000, "outer"), (2000, "clamped")]);
    }

    #[test]
    fn stop_halts_immediately() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        sim.schedule_in(SimDuration::from_millis(1), |w: &mut World, s| {
            w.log.push((1, "ran"));
            s.stop();
        });
        sim.schedule_in(SimDuration::from_millis(2), |w: &mut World, _| {
            w.log.push((2, "never"));
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(1, "ran")]);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn identical_seeds_give_identical_random_streams() {
        let draws = |seed: u64| -> Vec<u64> {
            let mut sim: Sim<()> = Sim::new(seed);
            (0..8).map(|_| sim.rng().gen()).collect()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn forked_rng_is_deterministic_and_independent() {
        let mut sim: Sim<()> = Sim::new(3);
        let mut f1 = sim.fork_rng();
        let a: u64 = f1.gen();
        let mut sim2: Sim<()> = Sim::new(3);
        let mut f2 = sim2.fork_rng();
        let b: u64 = f2.gen();
        assert_eq!(a, b);
    }

    #[test]
    fn cancel_prevents_execution_and_reports_liveness() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        let keep = sim.schedule_in(SimDuration::from_millis(1), |w: &mut World, _| {
            w.log.push((1, "keep"))
        });
        let drop_ = sim.schedule_in(SimDuration::from_millis(2), |w: &mut World, _| {
            w.log.push((2, "dropped"))
        });
        assert_eq!(sim.pending(), 2);
        assert!(sim.cancel(drop_));
        assert!(!sim.cancel(drop_), "double cancel is stale");
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(w.log, vec![(1, "keep")]);
        assert!(!sim.cancel(keep), "fired handle is stale");
    }

    #[test]
    fn stale_handles_do_not_cancel_recycled_slots() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        let first = sim.schedule_in(SimDuration::from_millis(1), |_, _| {});
        sim.run(&mut w);
        // The arena slot is recycled for a new event; the old handle's
        // generation no longer matches.
        let _second = sim.schedule_in(SimDuration::from_millis(1), |w: &mut World, _| {
            w.log.push((2, "second"))
        });
        assert!(!sim.cancel(first));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(2, "second")]);
    }

    #[test]
    fn events_beyond_the_wheel_horizon_promote_in_order() {
        // 64^6 ns ≈ 68.7 s horizon: schedule far past it, plus a tie there.
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        let far = SimTime::from_nanos(500_000_000_000); // 500 s
        sim.schedule_at(far, |w: &mut World, _| w.log.push((500, "x")));
        sim.schedule_at(far, |w: &mut World, _| w.log.push((500, "y")));
        sim.schedule_in(SimDuration::from_millis(1), |w: &mut World, _| {
            w.log.push((0, "near"))
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(0, "near"), (500, "x"), (500, "y")]);
    }

    #[test]
    fn deadline_in_an_idle_gap_keeps_later_events_intact() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut w = World { log: vec![] };
        sim.schedule_at(SimTime::from_nanos(200_000_000_000), |w: &mut World, _| {
            w.log.push((200, "late"))
        });
        // Deadline long before the only event: nothing fires, and an event
        // scheduled afterwards — earlier than the queued one — still runs
        // first.
        sim.run_until(&mut w, SimTime::from_nanos(1_000_000_000));
        assert!(w.log.is_empty());
        sim.schedule_at(SimTime::from_nanos(2_000_000_000), |w: &mut World, _| {
            w.log.push((2, "early"))
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(2, "early"), (200, "late")]);
    }
}
