//! A tiny in-process sampling CPU profiler with collapsed-stack output.
//!
//! The simulator's hot path is pure compute, so the usual "where does the
//! wall-clock go" question is answered by statistical sampling: code brackets
//! regions with [`prof_span!`] guards that maintain a per-thread stack of
//! interned span names, and a background sampler thread snapshots every
//! registered thread's stack at a fixed interval. The aggregate is emitted in
//! Brendan Gregg's *collapsed* format — `root;child;leaf count` per line —
//! ready for `flamegraph.pl` or speedscope.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** The bench binaries always compile the
//!    spans in; when profiling is off (`--profile` absent) a span is one
//!    relaxed atomic load and a branch. Goldens and throughput numbers are
//!    produced with the profiler off.
//! 2. **No allocation on the hot path.** Span names are interned to `u32`
//!    once per call site (a `OnceLock`); pushing a frame writes one slot of a
//!    fixed-size atomic array.
//! 3. **Honest about racing.** The sampler reads stacks without stopping the
//!    world; a sample taken mid push/pop can be off by one frame. That is
//!    fine for telemetry (thousands of samples drown one tear) and keeps the
//!    mutator wait-free. Profiles are *not* deterministic and must never
//!    feed golden outputs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Maximum tracked stack depth; deeper spans still run, just unsampled.
pub const MAX_DEPTH: usize = 32;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Interned span names (id = index). Lock taken only at interning and when
/// rendering output, never on the span hot path.
static NAMES: OnceLock<Mutex<Vec<String>>> = OnceLock::new();

/// Every thread that ever opened a span registers its stack here so the
/// sampler can see it. Stacks are never unregistered — worker threads are
/// few and long-lived; an idle stack just samples as empty.
static REGISTRY: OnceLock<Mutex<Vec<Arc<SpanStack>>>> = OnceLock::new();

/// Per-thread span stack, readable by the sampler without coordination.
struct SpanStack {
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_DEPTH],
}

impl SpanStack {
    fn new() -> Self {
        SpanStack {
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }
}

thread_local! {
    static LOCAL: Arc<SpanStack> = {
        let stack = Arc::new(SpanStack::new());
        REGISTRY
            .get_or_init(|| Mutex::new(Vec::new()))
            .lock()
            .expect("prof registry poisoned")
            .push(stack.clone());
        stack
    };
}

/// Turn sampling spans on (bench `--profile` mode).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn spans back off; open guards still pop correctly.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether spans are currently live.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Intern a span name, returning its stable id. Call once per call site
/// (the [`prof_span!`] macro memoizes in a `OnceLock`).
pub fn intern(name: &str) -> u32 {
    let mut names = NAMES
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("prof names poisoned");
    if let Some(id) = names.iter().position(|n| n == name) {
        return id as u32;
    }
    names.push(name.to_string());
    (names.len() - 1) as u32
}

/// Open a span; the returned guard closes it on drop. Prefer the
/// [`prof_span!`] macro, which handles interning.
#[inline]
pub fn enter(name_id: u32) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { active: false };
    }
    LOCAL.with(|stack| {
        let depth = stack.depth.load(Ordering::Relaxed);
        if depth >= MAX_DEPTH {
            return SpanGuard { active: false };
        }
        stack.frames[depth].store(name_id, Ordering::Relaxed);
        // Publish the frame before the depth so the sampler never reads a
        // stale name at a visible depth.
        stack.depth.store(depth + 1, Ordering::Release);
        SpanGuard { active: true }
    })
}

/// RAII guard popping one frame.
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            LOCAL.with(|stack| {
                let depth = stack.depth.load(Ordering::Relaxed);
                debug_assert!(depth > 0, "span stack underflow");
                stack
                    .depth
                    .store(depth.saturating_sub(1), Ordering::Release);
            });
        }
    }
}

/// Bracket the enclosing scope with a named profiling span.
///
/// ```ignore
/// let _span = prof_span!("serve_kv_read");
/// ```
#[macro_export]
macro_rules! prof_span {
    ($name:expr) => {{
        static ID: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
        $crate::prof::enter(*ID.get_or_init(|| $crate::prof::intern($name)))
    }};
}

/// Aggregated samples: stack (as name ids, root first) → sample count.
pub struct Profile {
    counts: HashMap<Vec<u32>, u64>,
    /// Total samples taken, including ones with an empty stack.
    pub samples: u64,
    /// Sampling interval used.
    pub interval: Duration,
}

impl Profile {
    /// Render in collapsed format: `root;child;leaf count`, one line per
    /// distinct stack, sorted for reproducible file layout (counts are
    /// still nondeterministic — this is telemetry).
    pub fn collapsed(&self) -> String {
        let names = NAMES
            .get_or_init(|| Mutex::new(Vec::new()))
            .lock()
            .expect("prof names poisoned");
        let mut lines: Vec<String> = self
            .counts
            .iter()
            .map(|(stack, count)| {
                let path: Vec<&str> = stack
                    .iter()
                    .map(|&id| names.get(id as usize).map(|s| s.as_str()).unwrap_or("?"))
                    .collect();
                format!("{} {}", path.join(";"), count)
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }
}

/// Handle to the background sampler thread.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<Profile>,
}

/// Start sampling every registered thread's span stack at `interval`.
/// Also flips spans on ([`enable`]).
pub fn start_sampler(interval: Duration) -> Sampler {
    enable();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = std::thread::Builder::new()
        .name("prof-sampler".into())
        .spawn(move || {
            let mut counts: HashMap<Vec<u32>, u64> = HashMap::new();
            let mut samples = 0u64;
            let mut scratch: Vec<u32> = Vec::with_capacity(MAX_DEPTH);
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                samples += 1;
                let registry = REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
                let stacks = registry.lock().expect("prof registry poisoned");
                for stack in stacks.iter() {
                    let depth = stack.depth.load(Ordering::Acquire).min(MAX_DEPTH);
                    if depth == 0 {
                        continue;
                    }
                    scratch.clear();
                    for frame in &stack.frames[..depth] {
                        scratch.push(frame.load(Ordering::Relaxed));
                    }
                    *counts.entry(scratch.clone()).or_insert(0) += 1;
                }
            }
            Profile {
                counts,
                samples,
                interval,
            }
        })
        .expect("spawn prof sampler");
    Sampler { stop, handle }
}

impl Sampler {
    /// Stop sampling (and disable spans), returning the aggregate profile.
    pub fn stop(self) -> Profile {
        self.stop.store(true, Ordering::SeqCst);
        disable();
        self.handle.join().expect("prof sampler panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable/disable toggle is process-global; serialize these tests.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_inert() {
        let _gate = GATE.lock().unwrap();
        disable();
        let g = prof_span!("never");
        drop(g);
        LOCAL.with(|s| assert_eq!(s.depth.load(Ordering::Relaxed), 0));
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("alpha-test-span");
        let b = intern("alpha-test-span");
        let c = intern("beta-test-span");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sampler_captures_nested_stacks() {
        let _gate = GATE.lock().unwrap();
        let sampler = start_sampler(Duration::from_micros(200));
        {
            let _a = prof_span!("outer-span");
            let _b = prof_span!("inner-span");
            // Busy-wait long enough for several samples.
            let start = std::time::Instant::now();
            while start.elapsed() < Duration::from_millis(40) {
                std::hint::black_box(0u64);
            }
        }
        let profile = sampler.stop();
        assert!(profile.samples > 0);
        let collapsed = profile.collapsed();
        assert!(
            collapsed.contains("outer-span;inner-span"),
            "expected nested stack in:\n{collapsed}"
        );
    }

    #[test]
    fn guards_unwind_depth_even_when_toggled() {
        let _gate = GATE.lock().unwrap();
        enable();
        let g1 = prof_span!("t1");
        disable();
        // Guard opened while enabled must still pop.
        drop(g1);
        LOCAL.with(|s| assert_eq!(s.depth.load(Ordering::Relaxed), 0));
    }
}
