//! Simulated machines. A [`Node`] is one provisionable unit (a pod in the
//! paper's Kubernetes deployment): it has a kind (application server, remote
//! cache, SQL front-end, storage), a CPU meter, and a provisioned memory
//! size. The [`NodeRegistry`] owns all nodes in a deployment and can
//! aggregate per-tier resource usage, which is what the cost model bills.

use crate::cpu::{CpuCategory, CpuMeter};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier for a node within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The tier a node belongs to. Mirrors Figure 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Load generator / end client. Its CPU is not billed (the paper bills
    /// the service, not its callers), but traffic still traverses its links.
    Client,
    /// Application server (possibly embedding a linked cache).
    AppServer,
    /// Dedicated remote cache server (Memcached/Redis analogue).
    RemoteCache,
    /// SQL front-end pod (TiDB analogue): parsing, planning, txn layer.
    SqlFrontend,
    /// Storage pod (TiKV analogue): KV engine, block cache, Raft.
    StorageNode,
}

impl NodeKind {
    pub const fn label(self) -> &'static str {
        match self {
            NodeKind::Client => "client",
            NodeKind::AppServer => "app_server",
            NodeKind::RemoteCache => "remote_cache",
            NodeKind::SqlFrontend => "sql_frontend",
            NodeKind::StorageNode => "storage_node",
        }
    }

    /// Whether this node's resources are billed to the service under study.
    pub const fn billed(self) -> bool {
        !matches!(self, NodeKind::Client)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One provisionable machine in the deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub id: NodeId,
    pub kind: NodeKind,
    /// CPU meter accumulating busy time charged to this node.
    pub cpu: CpuMeter,
    /// Memory provisioned for cache / buffer purposes, in bytes. This is the
    /// quantity billed at the DRAM price.
    pub mem_provisioned_bytes: u64,
    /// Persistent storage provisioned, in bytes (only storage nodes normally
    /// set this; billed at the disk price).
    pub disk_provisioned_bytes: u64,
}

impl Node {
    pub fn new(id: NodeId, kind: NodeKind) -> Self {
        Node {
            id,
            kind,
            cpu: CpuMeter::new(),
            mem_provisioned_bytes: 0,
            disk_provisioned_bytes: 0,
        }
    }

    pub fn with_memory(mut self, bytes: u64) -> Self {
        self.mem_provisioned_bytes = bytes;
        self
    }

    pub fn with_disk(mut self, bytes: u64) -> Self {
        self.disk_provisioned_bytes = bytes;
        self
    }
}

/// Aggregated resource usage for a tier (all nodes of one kind).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TierUsage {
    pub node_count: usize,
    pub cpu: CpuMeter,
    pub mem_provisioned_bytes: u64,
    pub disk_provisioned_bytes: u64,
}

impl TierUsage {
    /// Steady-state cores used by the whole tier over `window`.
    pub fn cores(&self, window: SimDuration) -> f64 {
        self.cpu.cores_used(window)
    }

    /// Provisioned memory in GiB.
    pub fn mem_gib(&self) -> f64 {
        self.mem_provisioned_bytes as f64 / (1u64 << 30) as f64
    }

    /// Provisioned disk in GiB.
    pub fn disk_gib(&self) -> f64 {
        self.disk_provisioned_bytes as f64 / (1u64 << 30) as f64
    }
}

/// Owns every node in a deployment; hands out ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeRegistry {
    nodes: Vec<Node>,
}

impl NodeRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node of `kind`, returning its id.
    pub fn add(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(id, kind));
        id
    }

    /// Add a node with provisioned memory.
    pub fn add_with_memory(&mut self, kind: NodeKind, mem_bytes: u64) -> NodeId {
        let id = self.add(kind);
        self.nodes[id.0 as usize].mem_provisioned_bytes = mem_bytes;
        id
    }

    pub fn get(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub fn get_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// Charge CPU time on a node.
    pub fn charge(&mut self, id: NodeId, category: CpuCategory, amount: SimDuration) {
        self.get_mut(id).cpu.charge(category, amount);
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Ids of all nodes of a kind, in creation order.
    pub fn of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == kind)
            .map(|n| n.id)
            .collect()
    }

    /// Aggregate usage for one tier.
    pub fn tier_usage(&self, kind: NodeKind) -> TierUsage {
        let mut usage = TierUsage::default();
        for n in self.nodes.iter().filter(|n| n.kind == kind) {
            usage.node_count += 1;
            usage.cpu.merge(&n.cpu);
            usage.mem_provisioned_bytes += n.mem_provisioned_bytes;
            usage.disk_provisioned_bytes += n.disk_provisioned_bytes;
        }
        usage
    }

    /// Reset all CPU meters (between warmup and measurement phases).
    pub fn reset_cpu(&mut self) {
        for n in &mut self.nodes {
            n.cpu.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_sequential_ids() {
        let mut reg = NodeRegistry::new();
        let a = reg.add(NodeKind::AppServer);
        let b = reg.add(NodeKind::StorageNode);
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(a).kind, NodeKind::AppServer);
    }

    #[test]
    fn tier_usage_aggregates_cpu_and_memory() {
        let mut reg = NodeRegistry::new();
        let a1 = reg.add_with_memory(NodeKind::AppServer, 6 << 30);
        let a2 = reg.add_with_memory(NodeKind::AppServer, 6 << 30);
        reg.add_with_memory(NodeKind::StorageNode, 15 << 30);
        reg.charge(a1, CpuCategory::AppLogic, SimDuration::from_secs(1));
        reg.charge(a2, CpuCategory::AppLogic, SimDuration::from_secs(3));
        let tier = reg.tier_usage(NodeKind::AppServer);
        assert_eq!(tier.node_count, 2);
        assert!((tier.mem_gib() - 12.0).abs() < 1e-9);
        assert!((tier.cores(SimDuration::from_secs(2)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clients_are_not_billed() {
        assert!(!NodeKind::Client.billed());
        assert!(NodeKind::AppServer.billed());
        assert!(NodeKind::StorageNode.billed());
    }

    #[test]
    fn of_kind_preserves_creation_order() {
        let mut reg = NodeRegistry::new();
        let s1 = reg.add(NodeKind::StorageNode);
        reg.add(NodeKind::AppServer);
        let s2 = reg.add(NodeKind::StorageNode);
        assert_eq!(reg.of_kind(NodeKind::StorageNode), vec![s1, s2]);
    }

    #[test]
    fn reset_cpu_clears_meters_but_keeps_memory() {
        let mut reg = NodeRegistry::new();
        let a = reg.add_with_memory(NodeKind::RemoteCache, 1 << 30);
        reg.charge(a, CpuCategory::CacheOp, SimDuration::from_secs(5));
        reg.reset_cpu();
        assert_eq!(reg.get(a).cpu.total(), SimDuration::ZERO);
        assert_eq!(reg.get(a).mem_provisioned_bytes, 1 << 30);
    }
}
