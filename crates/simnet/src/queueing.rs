//! Analytic queueing: Erlang C and M/M/c waiting times.
//!
//! The experiment runner measures *service* latency; real deployments also
//! queue. The paper sidesteps queueing by provisioning to peak utilization
//! (§5.1) — this module quantifies what that provisioning buys: given the
//! measured offered load (steady-state cores) and a provisioned core count,
//! [`mmc_wait_time`] estimates the expected queueing delay a request would
//! see, and [`cores_for_wait_target`] inverts it (how many cores to stay
//! under a target delay). Reports use it to sanity-check VM sizing.

/// Probability an arriving job waits in an M/M/c queue (Erlang C formula).
///
/// * `servers` — number of cores `c`.
/// * `offered_load` — λ/µ in Erlangs (equivalently: steady-state busy
///   cores). Must be `< servers` for a stable queue.
///
/// Returns a probability in `[0, 1]`; 1.0 when the queue is unstable.
pub fn erlang_c(servers: u32, offered_load: f64) -> f64 {
    let c = servers as f64;
    let a = offered_load;
    if a <= 0.0 {
        return 0.0;
    }
    if a >= c || servers == 0 {
        return 1.0;
    }
    // Numerically stable iterative form of the Erlang B recurrence,
    // converted to Erlang C.
    let mut inv_b = 1.0f64; // 1 / B(0, a) = 1
    for k in 1..=servers {
        inv_b = 1.0 + (k as f64 / a) * inv_b;
    }
    let b = 1.0 / inv_b; // Erlang B blocking probability
    let rho = a / c;
    (b / (1.0 - rho + rho * b)).clamp(0.0, 1.0)
}

/// Expected waiting time (not including service) in an M/M/c queue, in
/// multiples of the mean service time. `f64::INFINITY` when unstable.
pub fn mmc_wait_time(servers: u32, offered_load: f64) -> f64 {
    let c = servers as f64;
    if offered_load >= c {
        return f64::INFINITY;
    }
    let p_wait = erlang_c(servers, offered_load);
    p_wait / (c - offered_load)
}

/// Smallest core count keeping the expected M/M/c wait below
/// `max_wait_service_times` mean service times under `offered_load`.
pub fn cores_for_wait_target(offered_load: f64, max_wait_service_times: f64) -> u32 {
    let mut servers = offered_load.ceil().max(1.0) as u32;
    while mmc_wait_time(servers, offered_load) > max_wait_service_times {
        servers += 1;
        if servers > 1_000_000 {
            break; // absurd loads: bail rather than loop forever
        }
    }
    servers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_c_matches_tabulated_values() {
        // Classic teletraffic table entries (±0.005).
        // c=1, a=0.5 → P(wait) = 0.5 (M/M/1: P = rho).
        assert!((erlang_c(1, 0.5) - 0.5).abs() < 1e-9);
        // c=2, a=1.0 → 1/3.
        assert!((erlang_c(2, 1.0) - 1.0 / 3.0).abs() < 1e-9);
        // c=10, a=8 → ≈ 0.409.
        assert!((erlang_c(10, 8.0) - 0.409).abs() < 0.005);
        // c=100, a=80 → 0.019646… (exact-arithmetic cross-check; also
        // exercises large-c numerical stability).
        assert!((erlang_c(100, 80.0) - 0.0196464).abs() < 1e-5);
    }

    #[test]
    fn boundary_behaviour() {
        assert_eq!(erlang_c(4, 0.0), 0.0);
        assert_eq!(erlang_c(4, 4.0), 1.0, "saturated queue always waits");
        assert_eq!(erlang_c(0, 1.0), 1.0);
        assert!(mmc_wait_time(4, 4.0).is_infinite());
        assert!(mmc_wait_time(4, 5.0).is_infinite());
    }

    #[test]
    fn mm1_wait_matches_closed_form() {
        // M/M/1: W_q = rho / (1 - rho) service times.
        for rho in [0.1, 0.5, 0.9] {
            let w = mmc_wait_time(1, rho);
            let expect = rho / (1.0 - rho);
            assert!((w - expect).abs() < 1e-9, "rho={rho}: {w} vs {expect}");
        }
    }

    #[test]
    fn wait_decreases_with_more_servers() {
        let load = 6.0;
        let mut prev = f64::INFINITY;
        for servers in 7..20 {
            let w = mmc_wait_time(servers, load);
            assert!(w < prev, "more servers must shorten the queue");
            prev = w;
        }
    }

    #[test]
    fn sizing_inverts_the_wait_formula() {
        for load in [1.5, 8.0, 40.0] {
            let servers = cores_for_wait_target(load, 0.1);
            assert!(mmc_wait_time(servers, load) <= 0.1);
            if servers > load.ceil() as u32 {
                assert!(mmc_wait_time(servers - 1, load) > 0.1, "not minimal at {load}");
            }
        }
    }

    #[test]
    fn pooling_beats_partitioning() {
        // A classic queueing fact the cost model benefits from: one pooled
        // 16-core tier waits less than two 8-core tiers at the same total
        // load — relevant to remote (shared) vs linked (partitioned) caches.
        let pooled = mmc_wait_time(16, 12.0);
        let partitioned = mmc_wait_time(8, 6.0);
        assert!(pooled < partitioned);
    }
}
