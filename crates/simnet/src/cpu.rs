//! Per-node CPU accounting.
//!
//! The paper's cost methodology (§5.1) measures the steady-state vCPU cores
//! each component consumes and multiplies by cloud unit prices. A
//! [`CpuMeter`] is the simulator's equivalent: every simulated operation
//! charges busy-time to the meter of the node it runs on, tagged with a
//! semantic [`CpuCategory`]. At the end of a run,
//! `cores = total_busy_time / sim_duration`, and the per-category split
//! reproduces the breakdowns the paper reports in §5.3 (e.g. "40–65% of
//! database CPU is connection management, query processing and planning").

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Semantic attribution for CPU time, mirroring the cost components the paper
/// discusses. Categories are deliberately coarse: they must survive being
/// summed across heterogeneous nodes and still mean something in a figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuCategory {
    /// Receiving requests from / sending responses to end clients.
    ClientComm,
    /// Marshalling and unmarshalling values (proto-style per-byte work).
    Serialization,
    /// RPC stack overhead between internal tiers (app ↔ cache ↔ storage).
    RpcStack,
    /// SQL front-end: connection handling, parsing, planning.
    SqlFrontend,
    /// Query execution inside the storage engine (row visits, filters, joins).
    QueryExec,
    /// Transaction-layer work: lease validation, version checks, MVCC reads.
    TxnLease,
    /// Key-value engine work: point lookups, block-cache accesses, writes.
    KvExec,
    /// Raft replication: log append, commit, follower apply.
    Replication,
    /// Cache server / cache library operation (hash, eviction, bookkeeping).
    CacheOp,
    /// Application business logic (rich-object assembly, permission checks).
    AppLogic,
    /// Anything else (timers, background jobs).
    Other,
}

impl CpuCategory {
    /// All categories, in display order.
    pub const ALL: [CpuCategory; 11] = [
        CpuCategory::ClientComm,
        CpuCategory::Serialization,
        CpuCategory::RpcStack,
        CpuCategory::SqlFrontend,
        CpuCategory::QueryExec,
        CpuCategory::TxnLease,
        CpuCategory::KvExec,
        CpuCategory::Replication,
        CpuCategory::CacheOp,
        CpuCategory::AppLogic,
        CpuCategory::Other,
    ];

    const fn index(self) -> usize {
        match self {
            CpuCategory::ClientComm => 0,
            CpuCategory::Serialization => 1,
            CpuCategory::RpcStack => 2,
            CpuCategory::SqlFrontend => 3,
            CpuCategory::QueryExec => 4,
            CpuCategory::TxnLease => 5,
            CpuCategory::KvExec => 6,
            CpuCategory::Replication => 7,
            CpuCategory::CacheOp => 8,
            CpuCategory::AppLogic => 9,
            CpuCategory::Other => 10,
        }
    }

    /// Short stable label used in figure output.
    pub const fn label(self) -> &'static str {
        match self {
            CpuCategory::ClientComm => "client_comm",
            CpuCategory::Serialization => "serialization",
            CpuCategory::RpcStack => "rpc_stack",
            CpuCategory::SqlFrontend => "sql_frontend",
            CpuCategory::QueryExec => "query_exec",
            CpuCategory::TxnLease => "txn_lease",
            CpuCategory::KvExec => "kv_exec",
            CpuCategory::Replication => "replication",
            CpuCategory::CacheOp => "cache_op",
            CpuCategory::AppLogic => "app_logic",
            CpuCategory::Other => "other",
        }
    }
}

impl fmt::Display for CpuCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulates CPU busy-time per category for one node.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CpuMeter {
    busy_nanos: [u64; CpuCategory::ALL.len()],
}

impl CpuMeter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `amount` of CPU time to `category`.
    pub fn charge(&mut self, category: CpuCategory, amount: SimDuration) {
        let slot = &mut self.busy_nanos[category.index()];
        *slot = slot.saturating_add(amount.as_nanos());
    }

    /// Total busy time across all categories.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos(self.busy_nanos.iter().fold(0u64, |a, &b| a.saturating_add(b)))
    }

    /// Busy time in one category.
    pub fn category(&self, category: CpuCategory) -> SimDuration {
        SimDuration::from_nanos(self.busy_nanos[category.index()])
    }

    /// Iterate `(category, busy)` pairs with non-zero busy time.
    pub fn breakdown(&self) -> impl Iterator<Item = (CpuCategory, SimDuration)> + '_ {
        CpuCategory::ALL
            .iter()
            .copied()
            .map(move |c| (c, self.category(c)))
            .filter(|(_, d)| *d > SimDuration::ZERO)
    }

    /// Steady-state cores implied by this meter over a run of `window`
    /// duration: `busy / window`. This is the paper's measured quantity.
    pub fn cores_used(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        self.total().as_nanos() as f64 / window.as_nanos() as f64
    }

    /// Fraction of busy time spent in `category` (0 if idle).
    pub fn fraction(&self, category: CpuCategory) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            return 0.0;
        }
        self.category(category).as_nanos() as f64 / total as f64
    }

    /// Merge another meter into this one (used to aggregate a tier of nodes).
    pub fn merge(&mut self, other: &CpuMeter) {
        for (slot, add) in self.busy_nanos.iter_mut().zip(other.busy_nanos.iter()) {
            *slot = slot.saturating_add(*add);
        }
    }

    /// Reset all counters to zero (used between warmup and measurement).
    pub fn reset(&mut self) {
        self.busy_nanos = Default::default();
    }

    /// Fold this meter into a collapsed-stack CPU profile: each non-zero
    /// category becomes one stack `frames[0];…;frames[n];{category}` with
    /// its busy nanoseconds as the weight. `frames` typically carries the
    /// architecture and tier, e.g. `["linked", "app"]`.
    pub fn fold_into(&self, profile: &mut telemetry::CpuProfile, frames: &[&str]) {
        for (category, busy) in self.breakdown() {
            let mut stack: Vec<&str> = Vec::with_capacity(frames.len() + 1);
            stack.extend_from_slice(frames);
            stack.push(category.label());
            profile.add(&stack, busy.as_nanos());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_category() {
        let mut m = CpuMeter::new();
        m.charge(CpuCategory::SqlFrontend, SimDuration::from_micros(45));
        m.charge(CpuCategory::SqlFrontend, SimDuration::from_micros(45));
        m.charge(CpuCategory::KvExec, SimDuration::from_micros(10));
        assert_eq!(
            m.category(CpuCategory::SqlFrontend),
            SimDuration::from_micros(90)
        );
        assert_eq!(m.total(), SimDuration::from_micros(100));
    }

    #[test]
    fn cores_used_matches_busy_over_window() {
        let mut m = CpuMeter::new();
        // 2 seconds of busy time over a 1 second window = 2 cores.
        m.charge(CpuCategory::AppLogic, SimDuration::from_secs(2));
        assert!((m.cores_used(SimDuration::from_secs(1)) - 2.0).abs() < 1e-12);
        assert_eq!(m.cores_used(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn fraction_sums_to_one_when_busy() {
        let mut m = CpuMeter::new();
        m.charge(CpuCategory::ClientComm, SimDuration::from_micros(30));
        m.charge(CpuCategory::Serialization, SimDuration::from_micros(70));
        let sum: f64 = CpuCategory::ALL.iter().map(|&c| m.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((m.fraction(CpuCategory::Serialization) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn idle_meter_reports_zero_fractions() {
        let m = CpuMeter::new();
        assert_eq!(m.fraction(CpuCategory::Other), 0.0);
        assert_eq!(m.breakdown().count(), 0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = CpuMeter::new();
        let mut b = CpuMeter::new();
        a.charge(CpuCategory::KvExec, SimDuration::from_micros(5));
        b.charge(CpuCategory::KvExec, SimDuration::from_micros(7));
        b.charge(CpuCategory::Replication, SimDuration::from_micros(3));
        a.merge(&b);
        assert_eq!(a.category(CpuCategory::KvExec), SimDuration::from_micros(12));
        assert_eq!(
            a.category(CpuCategory::Replication),
            SimDuration::from_micros(3)
        );
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut m = CpuMeter::new();
        m.charge(CpuCategory::Other, SimDuration::from_secs(1));
        m.reset();
        assert_eq!(m.total(), SimDuration::ZERO);
    }

    #[test]
    fn charge_saturates_at_max() {
        let mut m = CpuMeter::new();
        m.charge(CpuCategory::Other, SimDuration::from_nanos(u64::MAX));
        m.charge(CpuCategory::Other, SimDuration::from_nanos(u64::MAX));
        assert_eq!(m.category(CpuCategory::Other).as_nanos(), u64::MAX);
    }

    #[test]
    fn fold_into_profile_preserves_totals() {
        let mut m = CpuMeter::new();
        m.charge(CpuCategory::CacheOp, SimDuration::from_micros(40));
        m.charge(CpuCategory::KvExec, SimDuration::from_micros(60));
        let mut p = telemetry::CpuProfile::new();
        m.fold_into(&mut p, &["linked", "cache"]);
        assert_eq!(p.total(), m.total().as_nanos());
        assert_eq!(p.total_matching("linked;cache;cache_op"), 40_000);
        assert_eq!(
            p.to_collapsed(),
            "linked;cache;cache_op 40000\nlinked;cache;kv_exec 60000\n"
        );
    }
}
