//! Virtual time. All simulation time is kept in integer nanoseconds so that
//! event ordering is exact and runs are reproducible — no floating-point
//! drift, no wall-clock reads.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking, since fault-injected reordering can observe events whose
    /// logical send time is after the receive time being compared.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from a float quantity of seconds, rounding to nanoseconds.
    /// Negative and non-finite inputs clamp to zero: callers feed this from
    /// sampled distributions that may produce tiny negative values.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Construct from a float quantity of microseconds (the natural unit for
    /// CPU cost constants), rounding to nanoseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating multiplication by an integer count (e.g. per-row costs).
    pub fn saturating_mul(self, n: u64) -> Self {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(1_500_000);
        assert_eq!(t.as_micros(), 1_500);
        assert_eq!(t.as_millis(), 1);
        let t2 = t + SimDuration::from_millis(2);
        assert_eq!(t2.as_millis(), 3);
        assert_eq!(t2.since(t), SimDuration::from_millis(2));
    }

    #[test]
    fn since_saturates_instead_of_panicking() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn duration_from_float_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1_500)
        );
    }

    #[test]
    fn duration_from_micros_f64_rounds_to_nanos() {
        assert_eq!(SimDuration::from_micros_f64(0.5).as_nanos(), 500);
        assert_eq!(SimDuration::from_micros_f64(45.0).as_micros(), 45);
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        let d = SimDuration::from_nanos(u64::MAX);
        assert_eq!((d + d).as_nanos(), u64::MAX);
        assert_eq!(d.saturating_mul(3).as_nanos(), u64::MAX);
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn division_never_divides_by_zero() {
        assert_eq!(SimDuration::from_secs(1) / 0, SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
    }
}
