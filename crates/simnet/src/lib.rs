//! # simnet — deterministic discrete-event simulation kernel
//!
//! `simnet` is the substrate every experiment in this repository runs on. It
//! provides:
//!
//! * a virtual clock and event queue ([`Sim`]) with deterministic,
//!   seed-reproducible execution,
//! * per-node CPU meters ([`cpu::CpuMeter`]) that attribute busy time to
//!   semantic categories (serialization, SQL front-end work, replication, …),
//!   which is exactly the quantity the paper's cost model consumes,
//! * a network model ([`net::Network`]) with per-hop latency, per-byte wire
//!   cost, and fault injection (drops, extra delay, partitions, node
//!   crashes) used by the delayed-writes scenario of the paper's Figure 8,
//! * a time-scheduled fault engine ([`fault::FaultSchedule`]) that scripts
//!   crash/restart, partition and latency-spike windows deterministically,
//! * lightweight metrics ([`metrics`]) — counters and log-bucketed histograms.
//!
//! The kernel is generic over a user-supplied world type `W`; events are
//! boxed `FnOnce(&mut W, &mut Sim<W>)` closures. Nothing in the kernel uses
//! wall-clock time or ambient randomness: two runs with the same seed and the
//! same event insertion order produce byte-identical traces.
//!
//! ```
//! use simnet::{Sim, SimDuration};
//!
//! struct World { ticks: u32 }
//! let mut sim = Sim::new(42);
//! let mut world = World { ticks: 0 };
//! sim.schedule_in(SimDuration::from_millis(5), |w: &mut World, sim| {
//!     w.ticks += 1;
//!     assert_eq!(sim.now().as_millis(), 5);
//! });
//! sim.run(&mut world);
//! assert_eq!(world.ticks, 1);
//! ```

pub mod cpu;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod node;
pub mod prof;
pub mod queueing;
pub mod time;

pub use cpu::{CpuCategory, CpuMeter};
pub use engine::{EventId, Sim};
pub use fault::{FaultDriver, FaultEvent, FaultKind, FaultSchedule};
pub use metrics::{Counter, Histogram, MetricSet};
pub use net::{Delivery, FaultPlan, LinkClass, Network};
pub use queueing::{cores_for_wait_target, erlang_c, mmc_wait_time};
pub use node::{Node, NodeId, NodeKind, NodeRegistry};
pub use time::{SimDuration, SimTime};
