//! Lightweight metrics: counters and log-bucketed histograms.
//!
//! The histogram uses logarithmic buckets (HdrHistogram-style, base-2
//! exponent with linear sub-buckets) so it can absorb nanosecond-to-second
//! latencies with bounded error and O(1) recording. Quantile queries
//! interpolate within a bucket.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    pub fn get(&self) -> u64 {
        self.0
    }
}

const SUB_BUCKET_BITS: u32 = 5; // 32 linear sub-buckets per power of two
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// A representative sample attached to a histogram bucket: the largest
/// value recorded into that bucket together with the trace id that produced
/// it, so tail buckets can be walked back to concrete traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exemplar {
    pub value: u64,
    pub trace_id: u64,
}

/// Log-bucketed histogram of `u64` samples (we record nanoseconds or bytes).
/// Relative error per sample is bounded by `1 / SUB_BUCKETS ≈ 3.1%`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    counts: BTreeMap<u32, u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
    /// Per-bucket exemplars; only populated via
    /// [`Histogram::record_with_exemplar`], so plain recording stays
    /// byte-identical to the pre-exemplar histogram.
    exemplars: BTreeMap<u32, Exemplar>,
}

fn bucket_of(value: u64) -> u32 {
    if value < SUB_BUCKETS {
        return value as u32;
    }
    // Position of the highest set bit determines the exponent; the next
    // SUB_BUCKET_BITS bits select the linear sub-bucket.
    let exp = 63 - value.leading_zeros();
    let shift = exp - SUB_BUCKET_BITS;
    let sub = ((value >> shift) - SUB_BUCKETS) as u32;
    (exp - SUB_BUCKET_BITS + 1) * SUB_BUCKETS as u32 + sub
}

fn bucket_low(bucket: u32) -> u64 {
    let sb = SUB_BUCKETS as u32;
    if bucket < sb {
        return bucket as u64;
    }
    let tier = bucket / sb; // >= 1
    let sub = (bucket % sb) as u64;
    let shift = tier - 1;
    (SUB_BUCKETS + sub) << shift
}

fn bucket_high(bucket: u32) -> u64 {
    let sb = SUB_BUCKETS as u32;
    if bucket < sb {
        return bucket as u64;
    }
    let tier = bucket / sb;
    let shift = tier - 1;
    bucket_low(bucket) + (1u64 << shift) - 1
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            counts: BTreeMap::new(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            exemplars: BTreeMap::new(),
        }
    }

    pub fn record(&mut self, value: u64) {
        *self.counts.entry(bucket_of(value)).or_insert(0) += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a value and attach `trace_id` as the bucket's exemplar if this
    /// is the largest value the bucket has seen (strictly-greater keeps the
    /// first on ties, so replays are deterministic).
    pub fn record_with_exemplar(&mut self, value: u64, trace_id: u64) {
        self.record(value);
        let b = bucket_of(value);
        match self.exemplars.entry(b) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Exemplar { value, trace_id });
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                if value > e.get().value {
                    e.insert(Exemplar { value, trace_id });
                }
            }
        }
    }

    /// Fold another histogram into this one: bucket counts, totals and
    /// extrema all add, so merging per-shard histograms of a partitioned
    /// run yields exactly the histogram a single run over the union of
    /// samples would have produced. Exemplars keep the larger value per
    /// bucket (first on ties), matching `record_with_exemplar`.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (&bucket, &count) in &other.counts {
            *self.counts.entry(bucket).or_insert(0) += count;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&bucket, ex) in &other.exemplars {
            match self.exemplars.entry(bucket) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(*ex);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if ex.value > e.get().value {
                        e.insert(*ex);
                    }
                }
            }
        }
    }

    /// Bucket exemplars in ascending bucket (≈ value) order.
    pub fn exemplars(&self) -> impl Iterator<Item = &Exemplar> {
        self.exemplars.values()
    }

    /// Exemplars from buckets whose range reaches `threshold` or above —
    /// the concrete trace ids behind the tail of the distribution.
    pub fn exemplars_at_or_above(&self, threshold: u64) -> Vec<Exemplar> {
        self.exemplars
            .iter()
            .filter(|(&b, _)| bucket_high(b) >= threshold)
            .map(|(_, e)| *e)
            .collect()
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate quantile `q ∈ [0,1]` by linear interpolation within the
    /// containing bucket. Exact for values < 32 (unit buckets), and exact at
    /// the boundaries: `q = 0` returns the true minimum, `q = 1` the true
    /// maximum (both are tracked outside the buckets), and a single-sample
    /// histogram always answers with that sample's bucket floor = min = max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 || self.total == 1 {
            return self.max;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&bucket, &count) in &self.counts {
            if seen + count >= target {
                let into = (target - seen) as f64 / count as f64;
                let low = bucket_low(bucket) as f64;
                let high = bucket_high(bucket) as f64;
                let v = low + (high - low) * into;
                return (v.round() as u64).clamp(self.min(), self.max);
            }
            seen += count;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merge another histogram into this one. Colliding bucket exemplars
    /// keep the larger value (ties keep `self`'s), matching
    /// [`Histogram::record_with_exemplar`]'s rule so merge order cannot
    /// change the result.
    pub fn merge(&mut self, other: &Histogram) {
        for (&b, &c) in &other.counts {
            *self.counts.entry(b).or_insert(0) += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&b, e) in &other.exemplars {
            match self.exemplars.entry(b) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(*e);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if e.value > o.get().value {
                        o.insert(*e);
                    }
                }
            }
        }
    }

    /// The histogram of everything recorded *after* `earlier` was
    /// snapshotted, assuming `earlier` is a prefix of `self` (as when a
    /// runner clones the histogram every heartbeat). Counts and sums
    /// subtract exactly; min/max are re-derived from the surviving buckets'
    /// bounds (clamped to `self`'s true extremes), which is the same ≤3.1%
    /// bucket error the histogram already carries. Exemplars are not
    /// windowed — the cumulative histogram keeps those.
    pub fn since(&self, earlier: &Histogram) -> Histogram {
        let mut counts = BTreeMap::new();
        for (&b, &c) in &self.counts {
            let prev = earlier.counts.get(&b).copied().unwrap_or(0);
            if c > prev {
                counts.insert(b, c - prev);
            }
        }
        let total = self.total.saturating_sub(earlier.total);
        let (min, max) = if total == 0 || counts.is_empty() {
            (u64::MAX, 0)
        } else {
            let first = *counts.keys().next().unwrap();
            let last = *counts.keys().next_back().unwrap();
            (
                bucket_low(first).max(self.min),
                bucket_high(last).min(self.max),
            )
        };
        Histogram {
            counts,
            total,
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
            exemplars: BTreeMap::new(),
        }
    }

    /// Snapshot as a [`telemetry::Summary`] (p50/p90/p99/p999) for registry
    /// export.
    pub fn summary(&self) -> telemetry::Summary {
        telemetry::Summary {
            count: self.total,
            sum: self.sum as f64,
            min: self.min() as f64,
            max: self.max as f64,
            quantiles: vec![
                (0.5, self.quantile(0.5) as f64),
                (0.9, self.quantile(0.9) as f64),
                (0.99, self.quantile(0.99) as f64),
                (0.999, self.quantile(0.999) as f64),
            ],
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p99={} max={}",
            self.total,
            self.mean(),
            self.p50(),
            self.p99(),
            self.max
        )
    }
}

/// A named bag of counters and histograms, keyed by static strings.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricSet {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }

    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map(|c| c.get()).unwrap_or(0)
    }

    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Export every counter (as a Prometheus counter) and every histogram
    /// (as a summary) into `reg`. Metric names become `{prefix}{name}`;
    /// `labels` are attached to every series.
    pub fn export(&self, reg: &mut telemetry::Registry, prefix: &str, labels: &[(&str, &str)]) {
        for (name, value) in self.counters() {
            reg.set_counter(&format!("{prefix}{name}"), labels, value);
        }
        for (name, hist) in self.histograms() {
            if !hist.is_empty() {
                reg.set_summary(&format!("{prefix}{name}"), labels, hist.summary());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basic() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.count(), 32);
        // Median of 0..=31 is ~15/16; unit buckets make this exact ±1.
        let p50 = h.p50();
        assert!((15..=16).contains(&p50), "p50 was {p50}");
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            1 << 40,
        ] {
            let b = bucket_of(v);
            assert!(
                bucket_low(b) <= v && v <= bucket_high(b),
                "value {v} not within bucket {b}: [{}, {}]",
                bucket_low(b),
                bucket_high(b)
            );
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 17);
        }
        let p50 = h.p50() as f64;
        let exact = 5_000.0 * 17.0;
        assert!(
            (p50 - exact).abs() / exact < 0.05,
            "p50={p50} exact={exact}"
        );
        let p99 = h.p99() as f64;
        let exact99 = 9_900.0 * 17.0;
        assert!((p99 - exact99).abs() / exact99 < 0.05);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000);
    }

    #[test]
    fn metric_set_round_trips() {
        let mut m = MetricSet::new();
        m.counter("reads").add(3);
        m.histogram("latency").record(42);
        assert_eq!(m.counter_value("reads"), 3);
        assert_eq!(m.counter_value("missing"), 0);
        assert_eq!(m.get_histogram("latency").unwrap().count(), 1);
        assert_eq!(m.counters().count(), 1);
        assert_eq!(m.histograms().count(), 1);
    }

    #[test]
    fn mean_tracks_exact_sum() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(200);
        h.record(300);
        assert!((h.mean() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_boundaries_are_exact() {
        let mut h = Histogram::new();
        // Large, sparse values so bucket interpolation would be visibly
        // off without the exact boundary handling.
        for v in [1_000u64, 70_000, 1_000_003, 90_000_017] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1_000);
        assert_eq!(h.quantile(1.0), 90_000_017);
    }

    #[test]
    fn single_sample_histogram_is_exact_at_every_quantile() {
        let mut h = Histogram::new();
        h.record(123_457);
        for q in [0.0, 0.1, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 123_457, "q={q}");
        }
    }

    /// Property test against a sorted-vec oracle: for randomized inputs
    /// across several magnitudes, every quantile must be within the
    /// histogram's documented relative-error bound of the exact
    /// (nearest-rank) answer, and q=0 / q=1 must be exact.
    #[test]
    fn quantiles_match_sorted_vec_oracle() {
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            // xorshift64* — deterministic, dependency-free.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for case in 0..50 {
            let n = 1 + (next() % 2_000) as usize;
            // Mix magnitudes: unit-bucket values, mid-range, and huge.
            let mut samples: Vec<u64> = (0..n)
                .map(|_| match next() % 3 {
                    0 => next() % 32,
                    1 => next() % 1_000_000,
                    _ => next() % (1 << 40),
                })
                .collect();
            let mut h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            samples.sort_unstable();
            assert_eq!(h.quantile(0.0), samples[0], "case {case}: q=0 not min");
            assert_eq!(h.quantile(1.0), samples[n - 1], "case {case}: q=1 not max");
            // q→1 boundary: a quantile within one ulp-ish of 1 must land on
            // the true maximum (ceil-rank puts the target at rank n, and
            // interpolation in the top bucket clamps to max).
            assert_eq!(
                h.quantile(1.0 - 1e-9),
                samples[n - 1],
                "case {case}: q→1 not max"
            );
            for q in [0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
                let rank = ((q * n as f64).ceil().max(1.0) as usize).min(n) - 1;
                let exact = samples[rank];
                let got = h.quantile(q);
                // One sub-bucket of slack on top of the 1/32 relative bound
                // covers interpolation and rank rounding.
                let tol = (exact as f64 / SUB_BUCKETS as f64).max(1.0) * 2.0;
                assert!(
                    (got as f64 - exact as f64).abs() <= tol,
                    "case {case}: q={q} got={got} exact={exact} tol={tol}"
                );
            }
        }
    }

    #[test]
    fn summary_snapshot_matches_histogram() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record(i * 1_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1_000.0);
        assert_eq!(s.max, 100_000.0);
        assert_eq!(s.quantiles.len(), 4);
        assert_eq!(s.quantiles[0].0, 0.5);
        assert_eq!(s.quantiles[0].1, h.p50() as f64);
        assert_eq!(s.quantiles[3].0, 0.999);
        assert_eq!(s.quantiles[3].1, h.p999() as f64);
    }

    #[test]
    fn p999_sits_between_p99_and_max() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        let (p99, p999, max) = (h.p99(), h.p999(), h.max());
        assert!(p99 <= p999 && p999 <= max, "{p99} {p999} {max}");
        let exact = 9_990.0;
        assert!((p999 as f64 - exact).abs() / exact < 0.05, "p999={p999}");
    }

    #[test]
    fn exemplars_keep_bucket_maximum_deterministically() {
        // Sub-buckets at ~1000 are 16 wide (992..=1007), so these three
        // share one bucket.
        let mut h = Histogram::new();
        h.record_with_exemplar(1_000, 0xaaaa);
        h.record_with_exemplar(1_007, 0xbbbb); // same bucket, larger value
        h.record_with_exemplar(1_007, 0xcccc); // tie — first writer wins
        h.record_with_exemplar(5, 0xdddd);
        let tail = h.exemplars_at_or_above(900);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].value, 1_007);
        assert_eq!(tail[0].trace_id, 0xbbbb);
        assert_eq!(h.exemplars().count(), 2);
        // Plain record never creates exemplars (baseline byte-compat).
        let mut plain = Histogram::new();
        plain.record(1_000);
        assert_eq!(plain.exemplars().count(), 0);
        // Merge applies the same keep-max rule in either order.
        let mut a = Histogram::new();
        a.record_with_exemplar(1_000, 1);
        let mut b = Histogram::new();
        b.record_with_exemplar(1_007, 2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(
            ab.exemplars().collect::<Vec<_>>(),
            ba.exemplars().collect::<Vec<_>>()
        );
        assert_eq!(ab.exemplars().next().unwrap().trace_id, 2);
    }

    #[test]
    fn since_returns_the_window_delta() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let snap = h.clone();
        for v in [1_000u64, 2_000] {
            h.record(v);
        }
        let w = h.since(&snap);
        assert_eq!(w.count(), 2);
        assert_eq!(w.mean(), 1_500.0);
        // Window extremes come from bucket bounds, clamped to the true max.
        assert!(w.min() >= 960 && w.min() <= 1_000, "min={}", w.min());
        assert_eq!(w.max(), 2_000);
        assert!(w.p99() >= 1_900);
        // Empty window is safe.
        let empty = h.since(&h.clone());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.p99(), 0);
    }

    #[test]
    fn metric_set_exports_to_registry() {
        let mut m = MetricSet::new();
        m.counter("reads").add(7);
        m.histogram("latency_ns").record(500);
        m.histogram("empty_one"); // never recorded — must be skipped
        let mut reg = telemetry::Registry::new();
        m.export(&mut reg, "sim_", &[("arch", "linked")]);
        assert_eq!(
            reg.counter_value("sim_reads", &[("arch", "linked")]),
            Some(7)
        );
        let s = reg
            .summary_value("sim_latency_ns", &[("arch", "linked")])
            .unwrap();
        assert_eq!(s.count, 1);
        assert!(reg
            .summary_value("sim_empty_one", &[("arch", "linked")])
            .is_none());
        assert_eq!(reg.series_count(), 2);
    }
}
