//! Time-scheduled fault injection.
//!
//! [`crate::net::FaultPlan`] describes the network's *current* fault state:
//! which pairs are partitioned, the ambient drop probability, the congestion
//! delay. A [`FaultSchedule`] is the dynamic counterpart — an ordered script
//! of crash/restart, partition/heal, latency-spike and loss-window events
//! that a run replays against the network as virtual time advances. The
//! schedule itself contains no randomness; combined with the seeded kernel
//! RNG (which only probabilistic drops consume), the same seed and the same
//! schedule reproduce the exact same fault trace.
//!
//! Node-id conventions are owned by the embedding layer: the experiment
//! runner maps small ids to cache shards and offset ids to storage replicas.
//! This module only toggles liveness and link state on the [`Network`].

use crate::net::Network;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One kind of fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Node stops: every message to or from it is dropped until `Restart`.
    Crash { node: NodeId },
    /// Node comes back (cold — whatever state it held is the owner's
    /// problem; the network merely resumes delivering to it).
    Restart { node: NodeId },
    /// Begin a bidirectional partition between `a` and `b`.
    PartitionStart { a: NodeId, b: NodeId },
    /// Heal the partition between `a` and `b`.
    PartitionHeal { a: NodeId, b: NodeId },
    /// Congestion window: every message pays `extra` on top of link latency.
    LatencySpikeStart { extra: SimDuration },
    /// End of the congestion window.
    LatencySpikeEnd,
    /// Random-loss window: messages drop with probability `prob` (evaluated
    /// against the seeded RNG handed to `Network::send`).
    DropWindowStart { prob: f64 },
    /// End of the random-loss window.
    DropWindowEnd,
}

/// A fault transition pinned to a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    pub at: SimTime,
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Apply this transition to the network's fault state.
    pub fn apply_to(&self, net: &mut Network) {
        match self.kind {
            FaultKind::Crash { node } => net.set_node_down(node, true),
            FaultKind::Restart { node } => net.set_node_down(node, false),
            FaultKind::PartitionStart { a, b } => net.faults.partition(a, b),
            FaultKind::PartitionHeal { a, b } => net.faults.heal(a, b),
            FaultKind::LatencySpikeStart { extra } => net.faults.extra_delay = extra,
            FaultKind::LatencySpikeEnd => net.faults.extra_delay = SimDuration::ZERO,
            FaultKind::DropWindowStart { prob } => {
                net.faults.drop_prob = prob.clamp(0.0, 1.0)
            }
            FaultKind::DropWindowEnd => net.faults.drop_prob = 0.0,
        }
    }
}

/// An ordered script of fault events. Builder methods append in any order;
/// [`FaultDriver`] replays them sorted by time (stable, so same-time events
/// fire in insertion order — deterministic by construction).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Append an arbitrary event.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) -> &mut Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Crash `node` at `at` (stays down until an explicit restart).
    pub fn crash(&mut self, at: SimTime, node: NodeId) -> &mut Self {
        self.push(at, FaultKind::Crash { node })
    }

    /// Restart `node` at `at`.
    pub fn restart(&mut self, at: SimTime, node: NodeId) -> &mut Self {
        self.push(at, FaultKind::Restart { node })
    }

    /// Crash `node` at `at` and restart it `downtime` later.
    pub fn crash_for(&mut self, at: SimTime, node: NodeId, downtime: SimDuration) -> &mut Self {
        self.crash(at, node);
        self.restart(at + downtime, node)
    }

    /// Crash `node` every `period` starting at `first_at`, each outage
    /// lasting `downtime`, until (exclusive) `until`. `downtime` should be
    /// shorter than `period` or the outages will overlap.
    pub fn periodic_crashes(
        &mut self,
        node: NodeId,
        first_at: SimTime,
        period: SimDuration,
        downtime: SimDuration,
        until: SimTime,
    ) -> &mut Self {
        let mut at = first_at;
        while at < until {
            self.crash_for(at, node, downtime);
            at += period;
        }
        self
    }

    /// Partition `a`↔`b` during `[from, until)`.
    pub fn partition_window(
        &mut self,
        from: SimTime,
        until: SimTime,
        a: NodeId,
        b: NodeId,
    ) -> &mut Self {
        self.push(from, FaultKind::PartitionStart { a, b });
        self.push(until, FaultKind::PartitionHeal { a, b })
    }

    /// Add `extra` latency to every message during `[from, until)`.
    pub fn latency_spike(
        &mut self,
        from: SimTime,
        until: SimTime,
        extra: SimDuration,
    ) -> &mut Self {
        self.push(from, FaultKind::LatencySpikeStart { extra });
        self.push(until, FaultKind::LatencySpikeEnd)
    }

    /// Drop messages with probability `prob` during `[from, until)`.
    pub fn drop_window(&mut self, from: SimTime, until: SimTime, prob: f64) -> &mut Self {
        self.push(from, FaultKind::DropWindowStart { prob });
        self.push(until, FaultKind::DropWindowEnd)
    }

    /// Events sorted by time, stable in insertion order for ties.
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at);
        evs
    }
}

/// Replays a [`FaultSchedule`] as time advances: call [`FaultDriver::due`]
/// with the current virtual time and apply whatever it hands back.
#[derive(Debug, Clone)]
pub struct FaultDriver {
    events: Vec<FaultEvent>,
    next: usize,
}

impl FaultDriver {
    pub fn new(schedule: &FaultSchedule) -> Self {
        FaultDriver {
            events: schedule.sorted(),
            next: 0,
        }
    }

    /// Time of the next unfired event, if any.
    pub fn peek_next_at(&self) -> Option<SimTime> {
        self.events.get(self.next).map(|e| e.at)
    }

    /// Number of events not yet fired.
    pub fn pending(&self) -> usize {
        self.events.len() - self.next
    }

    /// All events due at or before `now`, in order. Each event is returned
    /// exactly once across the driver's lifetime.
    pub fn due(&mut self, now: SimTime) -> &[FaultEvent] {
        let start = self.next;
        while self.next < self.events.len() && self.events[self.next].at <= now {
            self.next += 1;
        }
        &self.events[start..self.next]
    }

    /// Convenience: pop due events and apply them straight to `net`.
    /// Returns how many fired.
    pub fn apply_due(&mut self, net: &mut Network, now: SimTime) -> usize {
        let start = self.next;
        while self.next < self.events.len() && self.events[self.next].at <= now {
            self.events[self.next].apply_to(net);
            self.next += 1;
        }
        self.next - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Delivery;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn schedule_sorts_stably_by_time() {
        let mut s = FaultSchedule::new();
        s.restart(t(20), NodeId(1));
        s.crash(t(10), NodeId(1));
        s.crash(t(10), NodeId(2)); // same time, later insertion
        let evs = s.sorted();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, FaultKind::Crash { node: NodeId(1) });
        assert_eq!(evs[1].kind, FaultKind::Crash { node: NodeId(2) });
        assert_eq!(evs[2].kind, FaultKind::Restart { node: NodeId(1) });
    }

    #[test]
    fn crash_for_emits_paired_events() {
        let mut s = FaultSchedule::new();
        s.crash_for(t(5), NodeId(7), SimDuration::from_millis(3));
        let evs = s.sorted();
        assert_eq!(evs[0].at, t(5));
        assert_eq!(evs[1].at, t(8));
        assert_eq!(evs[1].kind, FaultKind::Restart { node: NodeId(7) });
    }

    #[test]
    fn periodic_crashes_cover_the_window() {
        let mut s = FaultSchedule::new();
        s.periodic_crashes(
            NodeId(0),
            t(10),
            SimDuration::from_millis(100),
            SimDuration::from_millis(20),
            t(310),
        );
        // Crashes at 10, 110, 210 (310 is exclusive) → 3 crash+restart pairs.
        assert_eq!(s.len(), 6);
        let crashes: Vec<_> = s
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Crash { .. }))
            .map(|e| e.at)
            .collect();
        assert_eq!(crashes, vec![t(10), t(110), t(210)]);
    }

    #[test]
    fn driver_fires_each_event_exactly_once() {
        let mut s = FaultSchedule::new();
        s.crash_for(t(10), NodeId(1), SimDuration::from_millis(10));
        let mut d = FaultDriver::new(&s);
        assert_eq!(d.pending(), 2);
        assert_eq!(d.due(t(5)).len(), 0);
        assert_eq!(d.due(t(10)).len(), 1);
        assert_eq!(d.due(t(10)).len(), 0, "no refire at the same instant");
        assert_eq!(d.due(t(50)).len(), 1);
        assert_eq!(d.pending(), 0);
        assert_eq!(d.peek_next_at(), None);
    }

    #[test]
    fn crash_window_drops_traffic_then_heals() {
        let mut s = FaultSchedule::new();
        s.crash_for(t(10), NodeId(1), SimDuration::from_millis(10));
        let mut d = FaultDriver::new(&s);
        let mut net = Network::new();
        let mut rng = StdRng::seed_from_u64(1);

        d.apply_due(&mut net, t(9));
        assert!(matches!(
            net.send(&mut rng, NodeId(0), NodeId(1), 8),
            Delivery::After(_)
        ));

        d.apply_due(&mut net, t(10));
        assert_eq!(net.send(&mut rng, NodeId(0), NodeId(1), 8), Delivery::Dropped);
        assert_eq!(net.send(&mut rng, NodeId(1), NodeId(0), 8), Delivery::Dropped);

        d.apply_due(&mut net, t(20));
        assert!(matches!(
            net.send(&mut rng, NodeId(0), NodeId(1), 8),
            Delivery::After(_)
        ));
        assert_eq!(net.dropped, 2);
        assert_eq!(net.delivered, 2);
    }

    #[test]
    fn latency_spike_and_drop_windows_toggle_fault_plan() {
        let mut s = FaultSchedule::new();
        s.latency_spike(t(0), t(10), SimDuration::from_millis(5));
        s.drop_window(t(0), t(10), 0.25);
        let mut d = FaultDriver::new(&s);
        let mut net = Network::new();
        d.apply_due(&mut net, t(0));
        assert_eq!(net.faults.extra_delay, SimDuration::from_millis(5));
        assert!((net.faults.drop_prob - 0.25).abs() < 1e-12);
        d.apply_due(&mut net, t(10));
        assert_eq!(net.faults.extra_delay, SimDuration::ZERO);
        assert_eq!(net.faults.drop_prob, 0.0);
    }

    #[test]
    fn partition_window_heals_on_schedule() {
        let mut s = FaultSchedule::new();
        s.partition_window(t(1), t(2), NodeId(3), NodeId(4));
        let mut d = FaultDriver::new(&s);
        let mut net = Network::new();
        d.apply_due(&mut net, t(1));
        assert!(net.faults.is_partitioned(NodeId(3), NodeId(4)));
        assert!(net.faults.is_partitioned(NodeId(4), NodeId(3)));
        d.apply_due(&mut net, t(2));
        assert!(!net.faults.is_partitioned(NodeId(3), NodeId(4)));
    }
}
