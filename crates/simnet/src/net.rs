//! Network model with fault injection.
//!
//! The paper's deployments are intra-datacenter: application servers, cache
//! servers and storage pods connected by a low-latency fabric. We model each
//! hop with a base propagation latency per link class plus a serialization
//! (wire) delay proportional to message size, and we support fault injection
//! — random drops, deterministic extra delay for selected messages, and
//! pairwise partitions. Fault injection is what lets the Figure 8
//! delayed-writes scenario reproduce deterministically.

use crate::metrics::MetricSet;
use crate::node::NodeId;
use crate::time::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Coarse link classification. Latencies follow typical intra-DC numbers;
/// they are configurable because the paper's cost results depend on CPU, not
/// latency, but we also report latency distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Same machine (linked cache access path) — no network at all.
    Local,
    /// Same rack / same zone pod-to-pod hop.
    SameZone,
    /// Cross-zone hop.
    CrossZone,
}

/// Static description of link performance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way propagation + switching latency.
    pub base_latency: SimDuration,
    /// Sustained bandwidth in bytes per second (wire delay = size / bw).
    pub bandwidth_bytes_per_sec: u64,
}

impl LinkSpec {
    /// Total one-way delivery time for a message of `bytes`.
    pub fn delivery_time(&self, bytes: u64) -> SimDuration {
        let wire = if self.bandwidth_bytes_per_sec == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64)
        };
        self.base_latency + wire
    }
}

/// Fault-injection plan. All probabilities are evaluated against the kernel
/// RNG, so a seeded run replays the same faults.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that any message is silently dropped.
    pub drop_prob: f64,
    /// Extra delay added to every message (e.g. to model congestion).
    pub extra_delay: SimDuration,
    /// Ordered pairs (from, to) that cannot currently communicate.
    pub partitions: HashSet<(NodeId, NodeId)>,
}

impl FaultPlan {
    /// Partition traffic in both directions between `a` and `b`.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert((a, b));
        self.partitions.insert((b, a));
    }

    /// Heal a bidirectional partition.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&(a, b));
        self.partitions.remove(&(b, a));
    }

    pub fn is_partitioned(&self, from: NodeId, to: NodeId) -> bool {
        self.partitions.contains(&(from, to))
    }
}

/// The outcome of attempting to send one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Message arrives after this one-way delay.
    After(SimDuration),
    /// Message is lost (drop or partition).
    Dropped,
}

/// Topology + faults. Placement is expressed as a function from node pairs to
/// link classes, registered per deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    local: LinkSpec,
    same_zone: LinkSpec,
    cross_zone: LinkSpec,
    pub faults: FaultPlan,
    /// Nodes colocated in the same zone group; pairs within a group use
    /// `SameZone`, across groups `CrossZone`. Node ids absent from any group
    /// are treated as being in zone 0.
    zone_of: Vec<u32>,
    /// Liveness per node id: a crashed node neither sends nor receives.
    /// Ids beyond the vector are up (the common case — nothing crashed).
    node_down: Vec<bool>,
    /// Messages delivered / dropped, for reporting.
    pub delivered: u64,
    pub dropped: u64,
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl Network {
    /// A network with typical intra-DC parameters: 25 µs same-zone one-way,
    /// 250 µs cross-zone, 10 Gbps effective per-flow bandwidth.
    pub fn new() -> Self {
        Network {
            local: LinkSpec {
                base_latency: SimDuration::ZERO,
                bandwidth_bytes_per_sec: 0,
            },
            same_zone: LinkSpec {
                base_latency: SimDuration::from_micros(25),
                bandwidth_bytes_per_sec: 1_250_000_000,
            },
            cross_zone: LinkSpec {
                base_latency: SimDuration::from_micros(250),
                bandwidth_bytes_per_sec: 1_250_000_000,
            },
            faults: FaultPlan::default(),
            zone_of: Vec::new(),
            node_down: Vec::new(),
            delivered: 0,
            dropped: 0,
        }
    }

    /// Override a link class spec.
    pub fn set_link(&mut self, class: LinkClass, spec: LinkSpec) {
        match class {
            LinkClass::Local => self.local = spec,
            LinkClass::SameZone => self.same_zone = spec,
            LinkClass::CrossZone => self.cross_zone = spec,
        }
    }

    pub fn link(&self, class: LinkClass) -> LinkSpec {
        match class {
            LinkClass::Local => self.local,
            LinkClass::SameZone => self.same_zone,
            LinkClass::CrossZone => self.cross_zone,
        }
    }

    /// Assign `node` to a zone (default zone is 0).
    pub fn place_in_zone(&mut self, node: NodeId, zone: u32) {
        let idx = node.0 as usize;
        if self.zone_of.len() <= idx {
            self.zone_of.resize(idx + 1, 0);
        }
        self.zone_of[idx] = zone;
    }

    pub fn zone(&self, node: NodeId) -> u32 {
        self.zone_of.get(node.0 as usize).copied().unwrap_or(0)
    }

    /// Classify the link between two nodes.
    pub fn classify(&self, from: NodeId, to: NodeId) -> LinkClass {
        if from == to {
            LinkClass::Local
        } else if self.zone(from) == self.zone(to) {
            LinkClass::SameZone
        } else {
            LinkClass::CrossZone
        }
    }

    /// Mark a node crashed (`down = true`) or restarted (`down = false`).
    /// While down, every message to or from it is dropped.
    pub fn set_node_down(&mut self, node: NodeId, down: bool) {
        let idx = node.0 as usize;
        if self.node_down.len() <= idx {
            if !down {
                return; // already implicitly up
            }
            self.node_down.resize(idx + 1, false);
        }
        self.node_down[idx] = down;
    }

    pub fn is_node_up(&self, node: NodeId) -> bool {
        !self.node_down.get(node.0 as usize).copied().unwrap_or(false)
    }

    /// Decide the fate of one message of `bytes` from `from` to `to`,
    /// consuming randomness from `rng`. Updates delivery counters.
    pub fn send(
        &mut self,
        rng: &mut impl Rng,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> Delivery {
        if !self.is_node_up(from) || !self.is_node_up(to) {
            self.dropped += 1;
            return Delivery::Dropped;
        }
        if self.faults.is_partitioned(from, to) {
            self.dropped += 1;
            return Delivery::Dropped;
        }
        if self.faults.drop_prob > 0.0 && rng.gen_bool(self.faults.drop_prob.clamp(0.0, 1.0)) {
            self.dropped += 1;
            return Delivery::Dropped;
        }
        let class = self.classify(from, to);
        let delay = self.link(class).delivery_time(bytes) + self.faults.extra_delay;
        self.delivered += 1;
        Delivery::After(delay)
    }

    /// Pure latency query (no faults, no counters) — used by cost paths that
    /// only need to know how long a hop takes.
    pub fn one_way_latency(&self, from: NodeId, to: NodeId, bytes: u64) -> SimDuration {
        self.link(self.classify(from, to)).delivery_time(bytes)
    }

    /// Zero the delivery counters (e.g. at the warmup/measurement boundary).
    pub fn reset_counters(&mut self) {
        self.delivered = 0;
        self.dropped = 0;
    }

    /// Publish the delivery counters into a metrics registry.
    pub fn export_metrics(&self, metrics: &mut MetricSet) {
        metrics.counter("net_delivered").add(self.delivered);
        metrics.counter("net_dropped").add(self.dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn delivery_time_includes_wire_delay() {
        let spec = LinkSpec {
            base_latency: SimDuration::from_micros(25),
            bandwidth_bytes_per_sec: 1_000_000_000, // 1 GB/s
        };
        // 1 MB at 1 GB/s = 1 ms wire + 25 us base.
        let d = spec.delivery_time(1_000_000);
        assert_eq!(d.as_micros(), 1_025);
    }

    #[test]
    fn zero_bandwidth_means_no_wire_delay() {
        let spec = LinkSpec {
            base_latency: SimDuration::from_micros(5),
            bandwidth_bytes_per_sec: 0,
        };
        assert_eq!(spec.delivery_time(u64::MAX).as_micros(), 5);
    }

    #[test]
    fn same_node_is_local_and_free() {
        let net = Network::new();
        let n = NodeId(3);
        assert_eq!(net.classify(n, n), LinkClass::Local);
        assert_eq!(net.one_way_latency(n, n, 1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn zones_determine_link_class() {
        let mut net = Network::new();
        net.place_in_zone(NodeId(0), 0);
        net.place_in_zone(NodeId(1), 0);
        net.place_in_zone(NodeId(2), 1);
        assert_eq!(net.classify(NodeId(0), NodeId(1)), LinkClass::SameZone);
        assert_eq!(net.classify(NodeId(0), NodeId(2)), LinkClass::CrossZone);
        assert!(net.one_way_latency(NodeId(0), NodeId(2), 0)
            > net.one_way_latency(NodeId(0), NodeId(1), 0));
    }

    #[test]
    fn partition_drops_both_directions_until_healed() {
        let mut net = Network::new();
        let (a, b) = (NodeId(0), NodeId(1));
        net.faults.partition(a, b);
        assert_eq!(net.send(&mut rng(), a, b, 10), Delivery::Dropped);
        assert_eq!(net.send(&mut rng(), b, a, 10), Delivery::Dropped);
        net.faults.heal(a, b);
        assert!(matches!(net.send(&mut rng(), a, b, 10), Delivery::After(_)));
        assert_eq!(net.dropped, 2);
        assert_eq!(net.delivered, 1);
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let mut net = Network::new();
        net.faults.drop_prob = 1.0;
        for _ in 0..10 {
            assert_eq!(net.send(&mut rng(), NodeId(0), NodeId(1), 1), Delivery::Dropped);
        }
    }

    #[test]
    fn crashed_node_neither_sends_nor_receives() {
        let mut net = Network::new();
        let (a, b) = (NodeId(0), NodeId(5));
        assert!(net.is_node_up(b));
        net.set_node_down(b, true);
        assert!(!net.is_node_up(b));
        assert_eq!(net.send(&mut rng(), a, b, 10), Delivery::Dropped);
        assert_eq!(net.send(&mut rng(), b, a, 10), Delivery::Dropped);
        net.set_node_down(b, false);
        assert!(matches!(net.send(&mut rng(), a, b, 10), Delivery::After(_)));
        // Restarting an id never marked down is a no-op.
        net.set_node_down(NodeId(1_000), false);
        assert!(net.is_node_up(NodeId(1_000)));
    }

    #[test]
    fn delivery_counters_export_and_reset() {
        let mut net = Network::new();
        net.set_node_down(NodeId(1), true);
        let _ = net.send(&mut rng(), NodeId(0), NodeId(1), 1);
        let _ = net.send(&mut rng(), NodeId(0), NodeId(2), 1);
        let mut m = crate::metrics::MetricSet::new();
        net.export_metrics(&mut m);
        assert_eq!(m.counter_value("net_delivered"), 1);
        assert_eq!(m.counter_value("net_dropped"), 1);
        net.reset_counters();
        assert_eq!(net.delivered, 0);
        assert_eq!(net.dropped, 0);
    }

    #[test]
    fn extra_delay_is_added_to_every_message() {
        let mut net = Network::new();
        net.faults.extra_delay = SimDuration::from_millis(7);
        match net.send(&mut rng(), NodeId(0), NodeId(1), 0) {
            Delivery::After(d) => assert!(d >= SimDuration::from_millis(7)),
            Delivery::Dropped => panic!("should deliver"),
        }
    }
}
