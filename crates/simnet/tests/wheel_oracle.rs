//! Differential test: the hierarchical-timer-wheel kernel vs a straight
//! `BinaryHeap` oracle.
//!
//! The wheel rewrite is a pure speed play — its contract is *bit-identical
//! behavior* to the old heap-based engine: events pop in exact `(time, seq)`
//! order, scheduling in the past clamps to now, `run_until` stops at the
//! deadline and advances the clock to it, and cancels report liveness
//! truthfully. This test drives both implementations with the same
//! splitmix64-derived operation stream — schedules (with deliberate ties and
//! beyond-horizon times to force overflow promotion), cancels, reschedules,
//! and partial `run_until`s — and asserts the execution logs, clocks, and
//! pending counts match at every step.

use simnet::{Sim, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Reference model: the old engine, minus the closure machinery. A min-heap
/// of `(at, seq, tag)` with tombstone cancellation.
#[derive(Default)]
struct Oracle {
    clock: u64,
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    cancelled: std::collections::HashSet<u64>,
    next_seq: u64,
    live: usize,
}

impl Oracle {
    fn schedule(&mut self, at: u64, tag: u64) -> u64 {
        let at = at.max(self.clock);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, tag)));
        self.live += 1;
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        let pending = self
            .heap
            .iter()
            .any(|Reverse((_, s, _))| *s == seq && !self.cancelled.contains(s));
        if pending {
            self.cancelled.insert(seq);
            self.live -= 1;
        }
        pending
    }

    fn run_until(&mut self, deadline: u64, log: &mut Vec<(u64, u64)>) {
        while let Some(Reverse((at, seq, tag))) = self.heap.peek().copied() {
            if at > deadline {
                break;
            }
            self.heap.pop();
            if self.cancelled.remove(&seq) {
                continue;
            }
            self.clock = at;
            self.live -= 1;
            log.push((at, tag));
        }
        if deadline != u64::MAX {
            self.clock = self.clock.max(deadline);
        }
    }
}

/// Drive both engines with one op stream; panic on the first divergence.
fn differential_run(seed: u64, ops: usize) {
    let mut rng = seed;
    let mut sim: Sim<Vec<(u64, u64)>> = Sim::new(seed);
    let mut sim_log: Vec<(u64, u64)> = Vec::new();
    let mut oracle = Oracle::default();
    let mut oracle_log: Vec<(u64, u64)> = Vec::new();
    // tag -> (oracle seq, sim handle); tags double as event identities.
    let mut handles: HashMap<u64, (u64, simnet::EventId)> = HashMap::new();
    let mut live_tags: Vec<u64> = Vec::new();
    let mut next_tag = 0u64;

    // Delay palette. Coarse quantization forces (time, seq) ties; the large
    // entries exceed the wheel's 64^6 ns ≈ 68.7 s horizon to exercise the
    // overflow heap and its promotion path.
    const DELAYS: [u64; 12] = [
        0,
        0,
        1,
        7,
        64,
        4_096,
        262_144,
        16_777_216,
        1_000_000_000,
        68_719_476_736, // exactly 64^6: first tick past the horizon
        100_000_000_000,
        400_000_000_000,
    ];

    let schedule = |sim: &mut Sim<Vec<(u64, u64)>>,
                        oracle: &mut Oracle,
                        handles: &mut HashMap<u64, (u64, simnet::EventId)>,
                        live_tags: &mut Vec<u64>,
                        next_tag: &mut u64,
                        rng: &mut u64| {
        let delay = DELAYS[(splitmix64(rng) % DELAYS.len() as u64) as usize];
        let at = oracle.clock.saturating_add(delay);
        let tag = *next_tag;
        *next_tag += 1;
        let id = sim.schedule_at(
            SimTime::from_nanos(at),
            move |log: &mut Vec<(u64, u64)>, s| {
                log.push((s.now().as_nanos(), tag));
            },
        );
        let seq = oracle.schedule(at, tag);
        handles.insert(tag, (seq, id));
        live_tags.push(tag);
    };

    for _ in 0..ops {
        match splitmix64(&mut rng) % 100 {
            // Schedule (possibly several, to pile up ties).
            0..=49 => {
                let n = 1 + splitmix64(&mut rng) % 3;
                for _ in 0..n {
                    schedule(
                        &mut sim,
                        &mut oracle,
                        &mut handles,
                        &mut live_tags,
                        &mut next_tag,
                        &mut rng,
                    );
                }
            }
            // Cancel a random (possibly already-fired) event.
            50..=64 => {
                if !live_tags.is_empty() {
                    let i = (splitmix64(&mut rng) % live_tags.len() as u64) as usize;
                    let tag = live_tags.swap_remove(i);
                    let (seq, id) = handles[&tag];
                    let a = sim.cancel(id);
                    let b = oracle.cancel(seq);
                    assert_eq!(a, b, "cancel liveness diverged for tag {tag}");
                }
            }
            // Reschedule: cancel + schedule afresh.
            65..=74 => {
                if !live_tags.is_empty() {
                    let i = (splitmix64(&mut rng) % live_tags.len() as u64) as usize;
                    let tag = live_tags.swap_remove(i);
                    let (seq, id) = handles[&tag];
                    let a = sim.cancel(id);
                    let b = oracle.cancel(seq);
                    assert_eq!(a, b, "reschedule-cancel diverged for tag {tag}");
                    schedule(
                        &mut sim,
                        &mut oracle,
                        &mut handles,
                        &mut live_tags,
                        &mut next_tag,
                        &mut rng,
                    );
                }
            }
            // Partial run: deadline a random distance ahead (sometimes 0,
            // sometimes far enough to cross the horizon).
            _ => {
                let span = DELAYS[(splitmix64(&mut rng) % DELAYS.len() as u64) as usize];
                let deadline = oracle.clock.saturating_add(span);
                sim.run_until(&mut sim_log, SimTime::from_nanos(deadline));
                oracle.run_until(deadline, &mut oracle_log);
                assert_eq!(
                    sim.now().as_nanos(),
                    oracle.clock,
                    "clock diverged after run_until({deadline})"
                );
                assert_eq!(
                    sim_log, oracle_log,
                    "logs diverged after run_until({deadline})"
                );
                assert_eq!(sim.pending(), oracle.live, "pending diverged");
                live_tags.retain(|t| sim_log.iter().all(|&(_, fired)| fired != *t));
            }
        }
    }

    // Drain both to completion.
    sim.run(&mut sim_log);
    oracle.run_until(u64::MAX, &mut oracle_log);
    assert_eq!(sim_log, oracle_log, "final logs diverged (seed {seed})");
    assert_eq!(sim.pending(), 0);
    assert_eq!(oracle.live, 0);
    assert_eq!(sim.now().as_nanos(), oracle.clock, "final clocks diverged");
}

#[test]
fn wheel_matches_heap_oracle_across_seeds() {
    for seed in 0..32 {
        differential_run(seed, 400);
    }
}

#[test]
fn wheel_matches_heap_oracle_long_run() {
    differential_run(0xD1FF_5EED, 5_000);
}

#[test]
fn tie_storm_pops_in_insertion_order() {
    // 1000 events on 4 instants, interleaved: order must be (time, seq).
    let mut sim: Sim<Vec<(u64, u64)>> = Sim::new(9);
    let mut oracle = Oracle::default();
    let (mut sim_log, mut oracle_log) = (Vec::new(), Vec::new());
    for tag in 0..1000u64 {
        let at = (tag % 4) * 1_000;
        sim.schedule_at(
            SimTime::from_nanos(at),
            move |log: &mut Vec<(u64, u64)>, s| {
                log.push((s.now().as_nanos(), tag));
            },
        );
        oracle.schedule(at, tag);
    }
    sim.run(&mut sim_log);
    oracle.run_until(u64::MAX, &mut oracle_log);
    assert_eq!(sim_log, oracle_log);
}

#[test]
fn overflow_promotion_preserves_order_across_horizon_batches() {
    // Schedule far-future events first (all overflow), then near ones;
    // interleave instants around multiples of the horizon so promotion
    // happens in several batches.
    const HORIZON: u64 = 68_719_476_736;
    let mut sim: Sim<Vec<(u64, u64)>> = Sim::new(11);
    let mut oracle = Oracle::default();
    let (mut sim_log, mut oracle_log) = (Vec::new(), Vec::new());
    let mut tag = 0u64;
    for mult in [5u64, 2, 7, 1, 3, 2, 5] {
        for off in [0u64, 1, 63, 64, 4_095] {
            let at = mult * HORIZON + off;
            let t = tag;
            tag += 1;
            sim.schedule_at(
                SimTime::from_nanos(at),
                move |log: &mut Vec<(u64, u64)>, s| {
                    log.push((s.now().as_nanos(), t));
                },
            );
            oracle.schedule(at, t);
        }
    }
    sim.run(&mut sim_log);
    oracle.run_until(u64::MAX, &mut oracle_log);
    assert_eq!(sim_log, oracle_log);
}
