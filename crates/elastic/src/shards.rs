//! SHARDS: spatially-sampled miss-ratio curves in bounded memory.
//!
//! Mattson stack-distance processing ([`cachekit::mrc::StackDistance`])
//! yields the exact LRU miss-ratio curve but tracks every distinct key —
//! unbounded state for an online profiler sitting on a cache's request
//! path. SHARDS (Waldspurger et al., FAST '15) fixes this with *spatial
//! sampling*: only keys whose stable hash satisfies
//! `hash(key) mod P < T` are tracked, an unbiased per-key coin with rate
//! `R = T / P`. Each sampled access's stack distance — measured within the
//! sampled substream — estimates `R ×` the true distance, so distances are
//! scaled by `1/R` and each access contributes weight `1/R` to the
//! histogram.
//!
//! Two mechanisms keep memory bounded regardless of the key universe:
//!
//! * **rate adaptation** (SHARDS-max): when the tracked-key set exceeds
//!   its budget, halve `T` and evict every tracked key whose hash lands
//!   above the new threshold. The substream thins itself as the working
//!   set grows.
//! * **timestamp compaction**: the Fenwick tree is indexed by access
//!   timestamps, which grow without bound; periodically renumber live
//!   keys (preserving order) so the tree's span stays proportional to the
//!   key budget.
//!
//! Determinism: hashing uses `cachekit::ring::stable_hash`, adaptation and
//! compaction trigger at exact counts, and no RNG is involved — the same
//! key stream always yields the same curve.

use cachekit::ring::stable_hash;
use cachekit::MissRatioCurve;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Hash-space modulus `P`. Rates are expressed as `T / P`; 1 << 24 gives
/// ~6e-8 rate resolution, plenty for rates down to 1e-3.
const MODULUS: u64 = 1 << 24;

/// Configuration for a [`ShardsProfiler`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardsConfig {
    /// Initial sampling rate `R` in `(0, 1]`. 1.0 starts exact and lets
    /// rate adaptation thin the stream; small rates start cheap.
    pub sampling_rate: f64,
    /// Tracked-key budget: when exceeded, the rate halves and over-
    /// threshold keys are evicted. Memory is O(this), not O(keys).
    pub max_tracked_keys: usize,
}

impl Default for ShardsConfig {
    fn default() -> Self {
        ShardsConfig {
            sampling_rate: 1.0,
            max_tracked_keys: 16_384,
        }
    }
}

/// Fenwick tree over sampled-access timestamps (same scheme as
/// `cachekit::mrc`, private there; this copy additionally supports the
/// removals that rate adaptation and compaction need).
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn with_capacity(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1] }
    }

    fn capacity(&self) -> usize {
        self.tree.len().saturating_sub(1)
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        debug_assert!(i >= 1 && i <= self.capacity(), "fenwick index {i}");
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of marks in `[1, i]`.
    fn prefix(&self, mut i: usize) -> u64 {
        i = i.min(self.capacity());
        let mut s: i64 = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        debug_assert!(s >= 0);
        s as u64
    }
}

/// Streaming SHARDS profiler. Feed it every request key via
/// [`ShardsProfiler::observe`]; read the live curve with
/// [`ShardsProfiler::curve`].
#[derive(Debug, Clone)]
pub struct ShardsProfiler {
    threshold: u64,
    max_tracked: usize,
    /// key hash → (timestamp of last access, hash mod P).
    last_access: HashMap<u64, (usize, u64)>,
    fenwick: Fenwick,
    clock: usize,
    /// scaled stack distance → total weight (1/R per access). BTreeMap so
    /// curve construction iterates distances in deterministic order.
    histogram: BTreeMap<u64, f64>,
    cold_weight: f64,
    total_weight: f64,
    raw_accesses: u64,
    sampled_accesses: u64,
    rate_adaptations: u64,
}

impl ShardsProfiler {
    pub fn new(cfg: ShardsConfig) -> Self {
        let rate = cfg.sampling_rate.clamp(1e-6, 1.0);
        let threshold = ((rate * MODULUS as f64).round() as u64).clamp(1, MODULUS);
        let max_tracked = cfg.max_tracked_keys.max(64);
        ShardsProfiler {
            threshold,
            max_tracked,
            last_access: HashMap::new(),
            fenwick: Fenwick::with_capacity(Self::span_for(max_tracked)),
            clock: 0,
            histogram: BTreeMap::new(),
            cold_weight: 0.0,
            total_weight: 0.0,
            raw_accesses: 0,
            sampled_accesses: 0,
            rate_adaptations: 0,
        }
    }

    /// Timestamp span before compaction: 8× the key budget keeps
    /// compactions rare (≥ 7/8 of the span between them) at O(budget) memory.
    fn span_for(max_tracked: usize) -> usize {
        (max_tracked * 8).max(2_048)
    }

    /// Current sampling rate `R = T / P`.
    pub fn rate(&self) -> f64 {
        self.threshold as f64 / MODULUS as f64
    }

    /// Keys currently tracked (bounded by the configured budget).
    pub fn tracked_keys(&self) -> usize {
        self.last_access.len()
    }

    /// All keys offered, sampled or not.
    pub fn raw_accesses(&self) -> u64 {
        self.raw_accesses
    }

    /// Accesses that passed the sampling filter.
    pub fn sampled_accesses(&self) -> u64 {
        self.sampled_accesses
    }

    /// How many times the rate halved to stay within the key budget.
    pub fn rate_adaptations(&self) -> u64 {
        self.rate_adaptations
    }

    /// Estimated distinct keys in the full stream (scaled cold misses).
    pub fn estimated_unique_keys(&self) -> f64 {
        self.cold_weight
    }

    /// Record one access.
    pub fn observe(&mut self, key: &[u8]) {
        self.observe_hashed(stable_hash(key));
    }

    /// Record one access by pre-computed `stable_hash` (callers that
    /// already hash for routing can skip the second hash).
    pub fn observe_hashed(&mut self, hash: u64) {
        self.raw_accesses += 1;
        let hmod = hash % MODULUS;
        if hmod >= self.threshold {
            return;
        }
        self.sampled_accesses += 1;
        let scale = 1.0 / self.rate();
        if self.clock + 1 > self.fenwick.capacity() {
            self.compact();
        }
        self.clock += 1;
        let t = self.clock;
        match self.last_access.insert(hash, (t, hmod)) {
            None => {
                self.fenwick.add(t, 1);
                self.cold_weight += scale;
            }
            Some((prev, _)) => {
                let between = self.fenwick.prefix(t - 1) - self.fenwick.prefix(prev);
                let distance = between + 1;
                self.fenwick.add(prev, -1);
                self.fenwick.add(t, 1);
                let scaled = ((distance as f64) * scale).round().max(1.0) as u64;
                *self.histogram.entry(scaled).or_insert(0.0) += scale;
            }
        }
        self.total_weight += scale;
        // Halving may not shed enough keys if survivors cluster under the
        // new threshold, so repeat until the budget holds.
        while self.last_access.len() > self.max_tracked && self.threshold > 1 {
            self.adapt_rate();
        }
    }

    /// Halve the threshold and evict tracked keys above it (SHARDS-max).
    fn adapt_rate(&mut self) {
        self.threshold = (self.threshold / 2).max(1);
        self.rate_adaptations += 1;
        let threshold = self.threshold;
        let mut evicted: Vec<(u64, usize)> = self
            .last_access
            .iter()
            .filter(|&(_, &(_, hmod))| hmod >= threshold)
            .map(|(&h, &(t, _))| (h, t))
            .collect();
        // Deterministic removal order (HashMap iteration order is not).
        evicted.sort_unstable_by_key(|&(_, t)| t);
        for (h, t) in evicted {
            self.last_access.remove(&h);
            self.fenwick.add(t, -1);
        }
    }

    /// Renumber live keys 1..n in timestamp order and rebuild the Fenwick
    /// tree, so the timestamp span stays bounded by `span_for`.
    fn compact(&mut self) {
        let mut live: Vec<(usize, u64)> = self
            .last_access
            .iter()
            .map(|(&h, &(t, _))| (t, h))
            .collect();
        live.sort_unstable();
        let mut fresh = Fenwick::with_capacity(Self::span_for(self.max_tracked));
        for (rank, &(_, h)) in live.iter().enumerate() {
            let nt = rank + 1;
            let entry = self.last_access.get_mut(&h).expect("live key");
            entry.0 = nt;
            fresh.add(nt, 1);
        }
        self.clock = live.len();
        self.fenwick = fresh;
    }

    /// The live miss-ratio curve over cache sizes in entries, in the same
    /// shape `StackDistance::curve` produces. Weighted by sampling scale,
    /// so curves from different rates estimate the same function.
    pub fn curve(&self) -> MissRatioCurve {
        let mut points = Vec::with_capacity(self.histogram.len() + 1);
        points.push((0u64, 1.0));
        let reuse_total: f64 = self.histogram.values().sum();
        let mut within = 0.0;
        for (&d, &w) in &self.histogram {
            within += w;
            let misses = self.cold_weight + (reuse_total - within);
            let ratio = if self.total_weight == 0.0 {
                0.0
            } else {
                misses / self.total_weight
            };
            points.push((d, ratio));
        }
        if points.len() == 1 {
            // No reuse observed: every access is a cold miss at any size.
            points.push((1, 1.0));
        }
        MissRatioCurve { points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekit::StackDistance;

    fn key(i: u64) -> Vec<u8> {
        format!("key-{i}").into_bytes()
    }

    #[test]
    fn rate_one_matches_exact_mattson_curve() {
        let mut sh = ShardsProfiler::new(ShardsConfig::default());
        let mut sd = StackDistance::new();
        for i in 0..30_000u64 {
            let k = cachekit::ring::splitmix64(i) % 500;
            sh.observe(&key(k));
            sd.access(k);
        }
        assert_eq!(sh.rate(), 1.0, "budget not exceeded: no adaptation");
        let live = sh.curve();
        let exact = sd.curve();
        for entries in [0u64, 1, 10, 50, 100, 250, 500, 1_000] {
            let a = live.miss_ratio(entries);
            let b = exact.miss_ratio(entries);
            assert!((a - b).abs() < 1e-9, "entries={entries}: {a} vs {b}");
        }
    }

    #[test]
    fn curve_is_a_non_increasing_step_function() {
        let mut sh = ShardsProfiler::new(ShardsConfig {
            sampling_rate: 0.3,
            ..ShardsConfig::default()
        });
        for i in 0..50_000u64 {
            sh.observe(&key(cachekit::ring::splitmix64(i) % 2_000));
        }
        let curve = sh.curve();
        for w in curve.points.windows(2) {
            assert!(w[0].0 < w[1].0, "entries strictly increasing");
            assert!(w[0].1 >= w[1].1 - 1e-12, "miss ratio non-increasing");
        }
        assert_eq!(curve.points[0], (0, 1.0));
    }

    #[test]
    fn adaptation_keeps_tracked_keys_bounded() {
        let budget = 256;
        let mut sh = ShardsProfiler::new(ShardsConfig {
            sampling_rate: 1.0,
            max_tracked_keys: budget,
        });
        for i in 0..200_000u64 {
            sh.observe(&key(i % 20_000));
        }
        assert!(sh.tracked_keys() <= budget, "{} keys", sh.tracked_keys());
        assert!(sh.rate() < 1.0, "rate must have adapted down");
        assert!(sh.rate_adaptations() > 0);
        // Unique-key estimate stays in the right ballpark after adaptation.
        let est = sh.estimated_unique_keys();
        assert!(
            (10_000.0..40_000.0).contains(&est),
            "estimated {est} unique keys, expected ≈20k"
        );
    }

    #[test]
    fn compaction_preserves_distances() {
        // A tiny budget forces many compactions; distances across the
        // compaction boundary must still be exact for an un-thinned stream.
        let mut sh = ShardsProfiler::new(ShardsConfig {
            sampling_rate: 1.0,
            max_tracked_keys: 64,
        });
        let mut sd = StackDistance::new();
        // 40 distinct keys cycled: fits the budget, but the clock wraps
        // the 8×64-entry span many times over 30_000 accesses.
        for i in 0..30_000u64 {
            let k = cachekit::ring::splitmix64(i) % 40;
            sh.observe(&key(k));
            sd.access(k);
        }
        assert_eq!(sh.rate(), 1.0);
        let live = sh.curve();
        let exact = sd.curve();
        for entries in [1u64, 5, 10, 20, 40, 80] {
            let a = live.miss_ratio(entries);
            let b = exact.miss_ratio(entries);
            assert!((a - b).abs() < 1e-9, "entries={entries}: {a} vs {b}");
        }
    }

    #[test]
    fn sampled_fraction_tracks_the_rate() {
        let mut sh = ShardsProfiler::new(ShardsConfig {
            sampling_rate: 0.25,
            // Budget above the expected ~25k sampled keys, so the rate
            // never adapts and the hash filter alone sets the fraction.
            max_tracked_keys: 64 << 10,
        });
        for i in 0..100_000u64 {
            sh.observe(&key(i)); // all distinct: pure hash-rate measurement
        }
        let frac = sh.sampled_accesses() as f64 / sh.raw_accesses() as f64;
        assert!((frac - 0.25).abs() < 0.01, "sampled fraction {frac}");
    }

    #[test]
    fn profiler_is_deterministic() {
        let run = || {
            let mut sh = ShardsProfiler::new(ShardsConfig {
                sampling_rate: 0.5,
                max_tracked_keys: 128,
            });
            for i in 0..50_000u64 {
                sh.observe(&key(cachekit::ring::splitmix64(i) % 5_000));
            }
            (format!("{:?}", sh.curve().points), sh.rate(), sh.tracked_keys())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_reuse_stream_misses_everywhere() {
        let mut sh = ShardsProfiler::new(ShardsConfig::default());
        for i in 0..1_000u64 {
            sh.observe(&key(i));
        }
        let curve = sh.curve();
        assert_eq!(curve.miss_ratio(1_000_000), 1.0);
    }
}
