//! The periodic decision loop gluing profiler to planner.
//!
//! A deployment embeds one [`ElasticController`] per cache tier, feeds it
//! every request key ([`ElasticController::observe`]) and calls
//! [`ElasticController::maybe_decide`] from its heartbeat. On each elapsed
//! decision interval the controller measures the window's request rate,
//! asks the planner for a (hysteresis-damped) plan, and returns it for the
//! caller to apply — the controller itself never touches a cache, which
//! keeps it trivially testable and the deployment in charge of migration
//! accounting.
//!
//! Disabled by default: `ElasticConfig::default().enabled()` is false and
//! a disabled controller's methods are no-ops, so embedding it in every
//! deployment costs nothing and perturbs no baseline experiment.

use crate::planner::{plan, Plan, PlannerConfig};
use crate::shards::{ShardsConfig, ShardsProfiler};
use costmodel::Pricing;
use serde::{Deserialize, Serialize};

/// Elastic provisioning configuration; `decision_interval_secs == 0`
/// (the default) disables the whole control plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ElasticConfig {
    /// Simulated seconds between provisioning decisions. 0 = disabled.
    pub decision_interval_secs: f64,
    pub profiler: ShardsConfig,
    pub planner: PlannerConfig,
}

impl ElasticConfig {
    pub fn enabled(&self) -> bool {
        self.decision_interval_secs > 0.0
    }

    /// An enabled config with the given cadence and size bounds, other
    /// knobs at their defaults.
    pub fn with_interval(decision_interval_secs: f64) -> Self {
        ElasticConfig {
            decision_interval_secs,
            ..ElasticConfig::default()
        }
    }
}

/// Streaming profiler + periodic planner. See module docs.
#[derive(Debug, Clone)]
pub struct ElasticController {
    cfg: ElasticConfig,
    profiler: ShardsProfiler,
    current: Option<Plan>,
    window_start_secs: Option<f64>,
    window_requests: u64,
    decisions: u64,
    plan_changes: u64,
}

impl ElasticController {
    pub fn new(cfg: ElasticConfig) -> Self {
        ElasticController {
            profiler: ShardsProfiler::new(cfg.profiler),
            cfg,
            current: None,
            window_start_secs: None,
            window_requests: 0,
            decisions: 0,
            plan_changes: 0,
        }
    }

    pub fn config(&self) -> &ElasticConfig {
        &self.cfg
    }

    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// The profiler, for telemetry (rate, tracked keys, curve).
    pub fn profiler(&self) -> &ShardsProfiler {
        &self.profiler
    }

    /// The most recent plan, if any decision has fired yet.
    pub fn current_plan(&self) -> Option<&Plan> {
        self.current.as_ref()
    }

    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decisions that changed the target capacity.
    pub fn plan_changes(&self) -> u64 {
        self.plan_changes
    }

    /// Feed one request key. No-op when disabled.
    pub fn observe(&mut self, key: &[u8]) {
        if !self.cfg.enabled() {
            return;
        }
        self.profiler.observe(key);
        self.window_requests += 1;
    }

    /// [`ElasticController::observe`] by precomputed `stable_hash(key)` —
    /// callers that route by interned keys already hold the hash.
    pub fn observe_hashed(&mut self, hash: u64) {
        if !self.cfg.enabled() {
            return;
        }
        self.profiler.observe_hashed(hash);
        self.window_requests += 1;
    }

    /// Run a decision if a full interval has elapsed since the last one.
    /// Returns the (possibly unchanged) plan when a decision fires.
    pub fn maybe_decide(&mut self, now_secs: f64, pricing: &Pricing) -> Option<Plan> {
        if !self.cfg.enabled() {
            return None;
        }
        let start = match self.window_start_secs {
            None => {
                // First tick opens the measurement window; no decision yet.
                self.window_start_secs = Some(now_secs);
                return None;
            }
            Some(s) => s,
        };
        let elapsed = now_secs - start;
        if elapsed < self.cfg.decision_interval_secs {
            return None;
        }
        let rps = self.window_requests as f64 / elapsed.max(1e-9);
        let next = plan(
            &self.profiler.curve(),
            rps,
            &self.cfg.planner,
            pricing,
            self.current.as_ref(),
        );
        self.decisions += 1;
        if self.current.map(|p| p.cache_bytes) != Some(next.cache_bytes) {
            self.plan_changes += 1;
        }
        self.current = Some(next);
        self.window_start_secs = Some(now_secs);
        self.window_requests = 0;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_cold_key(i: u64) -> Vec<u8> {
        // 90% of traffic over 32 hot keys, the rest over 4096 cold ones.
        let r = cachekit::ring::splitmix64(i);
        let k = if r % 10 < 9 { r % 32 } else { 32 + (r / 16) % 4_096 };
        format!("key-{k}").into_bytes()
    }

    fn enabled_cfg() -> ElasticConfig {
        ElasticConfig {
            decision_interval_secs: 10.0,
            profiler: ShardsConfig::default(),
            planner: PlannerConfig {
                min_cache_bytes: 16 << 10,
                max_cache_bytes: 64 << 20,
                mean_entry_bytes: 1_024,
                ..PlannerConfig::default()
            },
        }
    }

    #[test]
    fn default_config_is_disabled_and_inert() {
        let cfg = ElasticConfig::default();
        assert!(!cfg.enabled());
        let mut c = ElasticController::new(cfg);
        c.observe(b"k");
        assert_eq!(c.profiler().raw_accesses(), 0, "disabled observe is a no-op");
        assert_eq!(c.maybe_decide(1_000.0, &Pricing::default()), None);
        assert_eq!(c.decisions(), 0);
    }

    #[test]
    fn decisions_fire_on_the_interval_and_track_load() {
        let mut c = ElasticController::new(enabled_cfg());
        let pricing = Pricing::default();
        assert_eq!(c.maybe_decide(0.0, &pricing), None, "first tick only opens window");
        for i in 0..20_000u64 {
            c.observe(&hot_cold_key(i));
        }
        assert_eq!(c.maybe_decide(5.0, &pricing), None, "interval not elapsed");
        let first = c.maybe_decide(10.0, &pricing).expect("decision fires");
        assert!(first.cache_bytes > 0);
        assert_eq!(c.decisions(), 1);
        // A much quieter second window should cost less.
        for i in 0..2_000u64 {
            c.observe(&hot_cold_key(i));
        }
        let second = c.maybe_decide(20.0, &pricing).expect("second decision");
        assert!(second.monthly_dollars < first.monthly_dollars);
    }

    #[test]
    fn steady_load_does_not_flap_the_plan() {
        let mut c = ElasticController::new(enabled_cfg());
        let pricing = Pricing::default();
        c.maybe_decide(0.0, &pricing);
        let mut i = 0u64;
        let mut sizes = Vec::new();
        for round in 1..=8 {
            for _ in 0..10_000 {
                c.observe(&hot_cold_key(i));
                i += 1;
            }
            let p = c.maybe_decide(round as f64 * 10.0, &pricing).expect("decision");
            sizes.push(p.cache_bytes);
        }
        // Early rounds may step as the curve's cold tail fills in, but the
        // hysteresis must hold the size still once converged — and never
        // oscillate back and forth between two sizes.
        let tail: Vec<u64> = sizes[sizes.len() - 4..].to_vec();
        assert!(
            tail.windows(2).all(|w| w[0] == w[1]),
            "plan flapped under steady load: {sizes:?}"
        );
        assert!(c.plan_changes() <= 3, "{} changes: {sizes:?}", c.plan_changes());
        // Collapse runs; a size reappearing after a different one is an
        // A→B→A oscillation the hysteresis exists to prevent.
        let mut runs = sizes.clone();
        runs.dedup();
        let mut uniq = runs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(runs.len(), uniq.len(), "oscillation: {sizes:?}");
    }

    #[test]
    fn controller_is_deterministic() {
        let run = || {
            let mut c = ElasticController::new(enabled_cfg());
            let pricing = Pricing::default();
            c.maybe_decide(0.0, &pricing);
            let mut out = Vec::new();
            for round in 1..=4 {
                for i in 0..5_000u64 {
                    c.observe(&hot_cold_key(round * 100_000 + i));
                }
                out.push(c.maybe_decide(round as f64 * 10.0, &pricing));
            }
            format!("{out:?}")
        };
        assert_eq!(run(), run());
    }
}
