//! Dollar-minimizing capacity planning from a live miss-ratio curve.
//!
//! Given the profiler's curve, the current request rate and `costmodel`
//! pricing, the planner searches a geometric grid of candidate cache sizes
//! and prices each one the way the paper prices a tier:
//!
//! ```text
//! monthly(s) = P_cpu · (rps · cpu_us(s) · 1e-6) / U_target
//!            + P_mem · s / 1 GiB
//! cpu_us(s)  = hit_cpu_us + MR(s) · miss_cpu_us
//! ```
//!
//! `miss_cpu_us` is the marginal CPU of going to storage (RPC + SQL +
//! assembly, ≈ hundreds of µs per miss per the §5 breakdowns), which is
//! what makes small caches expensive even though DRAM is the line item
//! being trimmed. Two guards keep the optimum usable:
//!
//! * a **hit-ratio floor**: candidates whose predicted miss ratio exceeds
//!   the best candidate's by more than `max_miss_ratio_delta` are
//!   discarded, bounding user-visible degradation (the acceptance bar is
//!   2 points);
//! * **hysteresis**: a new plan replaces the incumbent only if it saves at
//!   least `hysteresis_fraction` of the incumbent's cost at current load —
//!   re-priced each round, so a stale incumbent is still re-evaluated —
//!   absorbing curve noise that would otherwise flap the tier.

use cachekit::MissRatioCurve;
use costmodel::Pricing;
use serde::{Deserialize, Serialize};

/// Planner knobs. Defaults suit the simulator's small deployments; real
/// deployments would scale `min/max_cache_bytes` and `bytes_per_shard`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Smallest cache the planner may pick (bytes, total across shards).
    pub min_cache_bytes: u64,
    /// Largest cache the planner may pick; also the reference point for
    /// the hit-ratio floor.
    pub max_cache_bytes: u64,
    /// Candidate sizes on the geometric grid between min and max.
    pub candidate_steps: usize,
    /// Mean entry footprint (value + overhead) converting bytes → entries
    /// for MRC lookups.
    pub mean_entry_bytes: u64,
    /// Baseline CPU per request (µs) independent of cache size.
    pub hit_cpu_us: f64,
    /// Marginal CPU per miss (µs): the storage round trip a hit avoids.
    pub miss_cpu_us: f64,
    /// Max allowed miss-ratio excess over the largest candidate's.
    pub max_miss_ratio_delta: f64,
    /// Minimum relative saving before the plan switches (0.05 = 5%).
    pub hysteresis_fraction: f64,
    /// Preferred bytes per shard; shard count = ceil(size / this).
    pub bytes_per_shard: u64,
    /// Fleet sizing: provisioned cores = used cores / this.
    pub target_utilization: f64,
    /// vCPUs per VM for the reported VM count.
    pub vcpus_per_node: f64,
    /// SSD victim tier the planner may add behind the DRAM cache: entries
    /// that would miss DRAM but fit in DRAM+SSD pay `ssd_hit_cpu_us`
    /// instead of the full storage round trip, billed at
    /// `Pricing::ssd_gb_month`. 0 (the default) disables the spill
    /// dimension and keeps every plan bit-identical to the DRAM-only
    /// planner.
    pub max_ssd_bytes: u64,
    /// CPU per SSD hit (µs): NVMe read + checksum + copy. Matches
    /// `costmodel::ssd::SsdTier::default` (25 µs).
    pub ssd_hit_cpu_us: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            min_cache_bytes: 64 << 10,
            max_cache_bytes: 6 << 30,
            candidate_steps: 24,
            mean_entry_bytes: 1_088, // 1 KiB value + 64 B entry overhead
            hit_cpu_us: 60.0,
            miss_cpu_us: 250.0,
            max_miss_ratio_delta: 0.02,
            hysteresis_fraction: 0.05,
            bytes_per_shard: 2 << 30,
            target_utilization: 0.7,
            vcpus_per_node: 8.0,
            max_ssd_bytes: 0,
            ssd_hit_cpu_us: 25.0,
        }
    }
}

/// One provisioning decision: what the cache tier should look like.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Total cache capacity across shards.
    pub cache_bytes: u64,
    /// Shard count at `bytes_per_shard` granularity.
    pub shards: u32,
    /// Capacity per shard (`cache_bytes` rounded up to a shard multiple).
    pub per_shard_bytes: u64,
    /// VMs needed for the projected CPU at target utilization.
    pub vms: u32,
    /// Predicted miss ratio at this size, from the live curve. With an SSD
    /// spill this is the *full* miss ratio past DRAM+SSD.
    pub predicted_miss_ratio: f64,
    /// Projected monthly dollars (compute + cache memory + SSD) at current
    /// load.
    pub monthly_dollars: f64,
    /// SSD spill capacity behind the DRAM tier (0 unless the planner's
    /// `max_ssd_bytes` dimension is enabled and flash pays for itself).
    pub ssd_bytes: u64,
}

/// Price one (DRAM, SSD) candidate at the given load.
fn price(
    curve: &MissRatioCurve,
    rps: f64,
    cache_bytes: u64,
    ssd_bytes: u64,
    cfg: &PlannerConfig,
    pricing: &Pricing,
) -> Plan {
    let entries = cache_bytes / cfg.mean_entry_bytes.max(1);
    let mr_dram = curve.miss_ratio(entries);
    let both_entries = (cache_bytes + ssd_bytes) / cfg.mean_entry_bytes.max(1);
    let mr = curve.miss_ratio(both_entries);
    // Requests that miss DRAM but land in the spill pay the flash path
    // instead of the storage round trip.
    let ssd_hits = (mr_dram - mr).max(0.0);
    let cpu_us = cfg.hit_cpu_us + ssd_hits * cfg.ssd_hit_cpu_us + mr * cfg.miss_cpu_us;
    let used_cores = rps * cpu_us * 1e-6;
    let provisioned_cores = used_cores / cfg.target_utilization.max(1e-6);
    let shards = cache_bytes.div_ceil(cfg.bytes_per_shard.max(1)).max(1) as u32;
    let per_shard_bytes = cache_bytes.div_ceil(shards as u64);
    let vms = (provisioned_cores / cfg.vcpus_per_node.max(1.0)).ceil().max(1.0) as u32;
    let monthly = provisioned_cores * pricing.cpu_core_month
        + (cache_bytes as f64 / (1u64 << 30) as f64) * pricing.mem_gb_month
        + (ssd_bytes as f64 / (1u64 << 30) as f64) * pricing.ssd_gb_month;
    Plan {
        cache_bytes,
        shards,
        per_shard_bytes,
        vms,
        predicted_miss_ratio: mr,
        monthly_dollars: monthly,
        ssd_bytes,
    }
}

/// The geometric candidate grid from min to max, deduplicated ascending.
fn candidates(cfg: &PlannerConfig) -> Vec<u64> {
    let min = cfg.min_cache_bytes.max(1);
    let max = cfg.max_cache_bytes.max(min);
    let steps = cfg.candidate_steps.max(2);
    let ratio = (max as f64 / min as f64).ln() / (steps - 1) as f64;
    let mut sizes: Vec<u64> = (0..steps)
        .map(|i| ((min as f64) * (ratio * i as f64).exp()).round() as u64)
        .collect();
    sizes.push(max);
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// SSD spill candidates: just `{0}` when the dimension is off, else 0 plus
/// a coarse geometric grid up to the cap.
fn ssd_candidates(cfg: &PlannerConfig) -> Vec<u64> {
    if cfg.max_ssd_bytes == 0 {
        return vec![0];
    }
    let mut sizes = vec![0u64];
    let mut s = cfg.min_cache_bytes.max(1);
    while s < cfg.max_ssd_bytes {
        sizes.push(s);
        s = s.saturating_mul(4);
    }
    sizes.push(cfg.max_ssd_bytes);
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// Pick the dollar-minimizing plan subject to the hit-ratio floor, with
/// hysteresis against `prev`. Pure and deterministic. When `max_ssd_bytes`
/// is set the search runs over the (DRAM, SSD) grid, trading DRAM dollars
/// against SSD dollars against miss CPU three ways.
pub fn plan(
    curve: &MissRatioCurve,
    rps: f64,
    cfg: &PlannerConfig,
    pricing: &Pricing,
    prev: Option<&Plan>,
) -> Plan {
    let sizes = candidates(cfg);
    let spills = ssd_candidates(cfg);
    // The floor reference stays the largest DRAM-only candidate, so adding
    // the SSD dimension never *relaxes* the degradation bound.
    let reference =
        price(curve, rps, *sizes.last().expect("non-empty grid"), 0, cfg, pricing);
    let floor = reference.predicted_miss_ratio + cfg.max_miss_ratio_delta;
    let mut best = reference;
    for &s in &sizes {
        for &f in &spills {
            let p = price(curve, rps, s, f, cfg, pricing);
            if p.predicted_miss_ratio > floor {
                continue;
            }
            // Strict `<` keeps the smaller size on ties (grid is ascending).
            if p.monthly_dollars < best.monthly_dollars {
                best = p;
            }
        }
    }
    if let Some(prev) = prev {
        // Re-price the incumbent at current load and keep it unless the
        // challenger clears the hysteresis margin.
        let incumbent = price(curve, rps, prev.cache_bytes, prev.ssd_bytes, cfg, pricing);
        let margin = incumbent.monthly_dollars * (1.0 - cfg.hysteresis_fraction);
        if (best.cache_bytes, best.ssd_bytes)
            != (incumbent.cache_bytes, incumbent.ssd_bytes)
            && best.monthly_dollars >= margin
        {
            return incumbent;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic curve: miss ratio falls geometrically with entries and
    /// flattens at `floor` beyond `knee` entries.
    fn curve(knee: u64, floor: f64) -> MissRatioCurve {
        let mut points = vec![(0u64, 1.0)];
        let mut e = 1u64;
        while e < knee {
            let frac = e as f64 / knee as f64;
            points.push((e, (1.0 - frac).max(floor)));
            e *= 2;
        }
        points.push((knee, floor));
        MissRatioCurve { points }
    }

    fn cfg() -> PlannerConfig {
        PlannerConfig {
            min_cache_bytes: 1 << 20,
            max_cache_bytes: 1 << 30,
            mean_entry_bytes: 1_024,
            ..PlannerConfig::default()
        }
    }

    #[test]
    fn planner_prefers_the_knee_over_max_capacity() {
        // Beyond the knee extra GBs buy no hits; the planner must not pay
        // for them. Knee at 64Ki entries = 64 MiB of 1 KiB entries.
        let c = curve(64 << 10, 0.05);
        let p = plan(&c, 100_000.0, &cfg(), &Pricing::default(), None);
        assert!(p.cache_bytes < (1 << 30), "picked max: {}", p.cache_bytes);
        assert!(p.cache_bytes >= (32 << 20), "starved: {}", p.cache_bytes);
        assert!(p.predicted_miss_ratio <= 0.05 + 0.02 + 1e-12);
    }

    #[test]
    fn hit_ratio_floor_binds_when_cpu_is_cheap() {
        // With a negligible miss penalty the dollar optimum would be a
        // near-zero cache; the floor must keep misses within delta of the
        // best candidate.
        let c = curve(64 << 10, 0.05);
        let mut k = cfg();
        k.miss_cpu_us = 1e-3;
        let p = plan(&c, 100_000.0, &k, &Pricing::default(), None);
        let reference = c.miss_ratio(k.max_cache_bytes / k.mean_entry_bytes);
        assert!(
            p.predicted_miss_ratio <= reference + k.max_miss_ratio_delta + 1e-12,
            "floor violated: {} vs ref {}",
            p.predicted_miss_ratio,
            reference
        );
    }

    #[test]
    fn hysteresis_keeps_the_incumbent_on_small_savings() {
        let c = curve(64 << 10, 0.05);
        let k = cfg();
        let pricing = Pricing::default();
        let first = plan(&c, 100_000.0, &k, &pricing, None);
        // Tiny load change: the optimum barely moves, so the incumbent
        // must stick even if a neighboring grid point now edges it out.
        let second = plan(&c, 100_500.0, &k, &pricing, Some(&first));
        assert_eq!(second.cache_bytes, first.cache_bytes, "plan flapped");
        // A big demand collapse clears the margin and the plan moves.
        let third = plan(&c, 1_000.0, &k, &pricing, Some(&second));
        assert!(third.monthly_dollars < second.monthly_dollars);
    }

    #[test]
    fn shards_and_vms_follow_the_size_and_load() {
        let c = curve(1 << 20, 0.01);
        let mut k = cfg();
        k.max_cache_bytes = 8 << 30;
        k.bytes_per_shard = 1 << 30;
        let p = plan(&c, 2_000_000.0, &k, &Pricing::default(), None);
        assert_eq!(p.shards as u64, p.cache_bytes.div_ceil(1 << 30));
        assert!(p.per_shard_bytes * p.shards as u64 >= p.cache_bytes);
        // 2M rps at ≥60 µs/req is ≥120 used cores → ≥22 VMs at 0.7×8.
        assert!(p.vms >= 20, "vms={}", p.vms);
    }

    #[test]
    fn plan_is_deterministic() {
        let c = curve(64 << 10, 0.05);
        let k = cfg();
        let a = plan(&c, 123_456.0, &k, &Pricing::default(), None);
        let b = plan(&c, 123_456.0, &k, &Pricing::default(), None);
        assert_eq!(a, b);
    }

    #[test]
    fn lower_load_means_lower_dollars() {
        let c = curve(64 << 10, 0.05);
        let k = cfg();
        let hi = plan(&c, 200_000.0, &k, &Pricing::default(), None);
        let lo = plan(&c, 20_000.0, &k, &Pricing::default(), None);
        assert!(lo.monthly_dollars < hi.monthly_dollars);
    }

    #[test]
    fn ssd_dimension_off_by_default_plans_carry_no_spill() {
        let c = curve(64 << 10, 0.05);
        let k = cfg();
        assert_eq!(k.max_ssd_bytes, 0);
        let p = plan(&c, 100_000.0, &k, &Pricing::default(), None);
        assert_eq!(p.ssd_bytes, 0);
        let again = plan(&c, 100_000.0, &k, &Pricing::default(), Some(&p));
        assert_eq!(again.ssd_bytes, 0);
    }

    #[test]
    fn cheap_ssd_displaces_dram_for_the_tail() {
        // A wide working set (1 GiB of 1 KiB entries to reach the knee) at
        // low load: memory dollars dominate CPU dollars, so serving the
        // tail from $0.08/GB flash at +25 µs/hit beats $2/GB DRAM.
        let c = curve(1 << 20, 0.05);
        let mut k = cfg();
        k.max_ssd_bytes = 4 << 30;
        let pricing = Pricing::default();
        let with_ssd = plan(&c, 1_000.0, &k, &pricing, None);
        let mut dram_only = k;
        dram_only.max_ssd_bytes = 0;
        let baseline = plan(&c, 1_000.0, &dram_only, &pricing, None);
        assert!(with_ssd.ssd_bytes > 0, "spill unused: {with_ssd:?}");
        assert!(
            with_ssd.monthly_dollars < baseline.monthly_dollars,
            "flash did not pay: {} vs {}",
            with_ssd.monthly_dollars,
            baseline.monthly_dollars
        );
        // The degradation bound still references the DRAM-only maximum.
        let reference = c.miss_ratio(k.max_cache_bytes / k.mean_entry_bytes);
        assert!(with_ssd.predicted_miss_ratio <= reference + k.max_miss_ratio_delta + 1e-12);
    }

    #[test]
    fn overpriced_ssd_stays_unused() {
        let c = curve(1 << 20, 0.05);
        let mut k = cfg();
        k.max_ssd_bytes = 4 << 30;
        // Flash priced above DRAM: every nonzero spill strictly loses.
        let pricing = Pricing {
            ssd_gb_month: 10.0,
            ..Pricing::default()
        };
        let p = plan(&c, 1_000.0, &k, &pricing, None);
        let mut dram_only = k;
        dram_only.max_ssd_bytes = 0;
        assert_eq!(p, plan(&c, 1_000.0, &dram_only, &pricing, None));
    }
}
