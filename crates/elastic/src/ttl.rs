//! Cost-aware TTL control plane — the dual of capacity planning.
//!
//! The MRC planner (this crate's other half) fixes a byte budget and lets
//! eviction pick what stays. Carra et al. ("Elastic Provisioning of Cloud
//! Caches: a Cost-aware TTL Approach") observe the dual knob: fix the *age*
//! at which entries expire and let memory follow. A TTL of T keeps exactly
//! the entries referenced within the last T seconds, so choosing T trades
//! DRAM $/GB·month against miss-CPU $ the same way choosing a capacity
//! does — but it adapts to working-set *churn* for free (dead keys drain
//! after T regardless of capacity) and gives per-tenant isolation that a
//! shared byte budget can't (one tenant's TTL never displaces another's
//! entries).
//!
//! Three pieces, mirroring profiler/planner/controller:
//!
//! * [`AgeHistogram`] — a streaming estimate of hit-ratio-vs-TTL without
//!   storing evicted keys: hash-sample keys SHARDS-style, record the
//!   inter-reference age of each sampled access into log-spaced buckets
//!   (weighted by the inverse sampling rate), and keep enough byte-weighted
//!   moments to also estimate mean resident bytes at any candidate TTL.
//! * [`plan_ttl`] — sweep candidate TTLs (the histogram's bucket edges),
//!   price each one as `P_cpu·miss-CPU + P_mem·resident-GB`, apply the
//!   planner's hit-ratio-floor and hysteresis guards.
//! * [`TtlController`] — the periodic decision loop a deployment embeds,
//!   one per tenant; hands the adopted TTL back for the caller to push
//!   into live caches via `Cache::set_default_ttl`.
//!
//! Deterministic throughout: no RNG, no wall clock. Disabled by default —
//! `TtlConfig::default().enabled()` is false and a disabled controller is
//! inert, so embedding it perturbs no baseline experiment.

use cachekit::fxhash::FxHashMap;
use costmodel::Pricing;
use serde::{Deserialize, Serialize};

/// Log-spaced age buckets: bucket `i` holds inter-reference ages in
/// `(MIN_AGE·2^{i-1}, MIN_AGE·2^i]` (bucket 0: `[0, MIN_AGE]`), with
/// MIN_AGE = 1 ms. 48 buckets reach ~4 500 years — effectively "never".
const AGE_BUCKETS: usize = 48;
const MIN_AGE_NANOS: u64 = 1_000_000;

/// SHARDS-style sampling modulus; the threshold starts at `P` (track
/// everything) and halves whenever the tracked map outgrows its budget.
const SAMPLE_MODULUS: u64 = 1 << 24;

fn bucket_of(age_nanos: u64) -> usize {
    let a = age_nanos / MIN_AGE_NANOS;
    if a == 0 {
        0
    } else {
        (64 - a.leading_zeros() as usize).min(AGE_BUCKETS - 1)
    }
}

/// Upper age edge of bucket `i`, in nanoseconds.
fn bucket_edge_nanos(i: usize) -> u64 {
    MIN_AGE_NANOS.saturating_mul(1u64 << i.min(40))
}

/// Histogram knobs; part of [`TtlConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgeHistogramConfig {
    /// Cap on sampled keys tracked for last-seen times; the sampling rate
    /// halves (SHARDS) whenever the map would outgrow this.
    pub max_tracked_keys: usize,
    /// Per-decision multiplier on accumulated history (0..1). Lower values
    /// forget faster, which is what lets the plane chase working-set churn;
    /// 1.0 never forgets.
    pub history_decay: f64,
}

impl Default for AgeHistogramConfig {
    fn default() -> Self {
        AgeHistogramConfig { max_tracked_keys: 16_384, history_decay: 0.5 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct AgeBucket {
    /// Weighted reference count (weight = inverse sampling rate).
    w: f64,
    /// Weighted bytes: Σ weight·entry_bytes.
    wb: f64,
    /// Weighted byte·seconds: Σ weight·entry_bytes·age_secs (exact within
    /// the bucket — binning only coarsens the ≤T classification).
    wba: f64,
}

#[derive(Debug, Clone, Copy)]
struct Tracked {
    last_seen_nanos: u64,
    bytes: u64,
}

/// Streaming inter-reference age histogram over a hash-sampled key stream.
/// See module docs for what it estimates and how.
#[derive(Debug, Clone)]
pub struct AgeHistogram {
    cfg: AgeHistogramConfig,
    threshold: u64,
    tracked: FxHashMap<u64, Tracked>,
    buckets: [AgeBucket; AGE_BUCKETS],
    /// Weighted first-touch references (cold: no TTL makes these hit).
    cold_w: f64,
    /// Observation span accumulated into the closed buckets, decayed in
    /// lockstep with them so byte·sec / span stays consistent.
    span_nanos: f64,
    span_start_nanos: Option<u64>,
    raw_accesses: u64,
}

impl AgeHistogram {
    pub fn new(cfg: AgeHistogramConfig) -> Self {
        AgeHistogram {
            cfg,
            threshold: SAMPLE_MODULUS,
            tracked: FxHashMap::default(),
            buckets: [AgeBucket::default(); AGE_BUCKETS],
            cold_w: 0.0,
            span_nanos: 0.0,
            span_start_nanos: None,
            raw_accesses: 0,
        }
    }

    /// Current inverse sampling rate (1 = every key tracked).
    pub fn rate_inverse(&self) -> f64 {
        SAMPLE_MODULUS as f64 / self.threshold as f64
    }

    pub fn raw_accesses(&self) -> u64 {
        self.raw_accesses
    }

    pub fn tracked_keys(&self) -> usize {
        self.tracked.len()
    }

    /// Record one access to the key with stable hash `hash`, carrying
    /// `bytes` of cache charge, at virtual time `now_nanos`.
    pub fn observe(&mut self, hash: u64, bytes: u64, now_nanos: u64) {
        self.raw_accesses += 1;
        if self.span_start_nanos.is_none() {
            self.span_start_nanos = Some(now_nanos);
        }
        if hash % SAMPLE_MODULUS >= self.threshold {
            return;
        }
        let weight = self.rate_inverse();
        match self.tracked.get_mut(&hash) {
            Some(t) => {
                let age = now_nanos.saturating_sub(t.last_seen_nanos);
                let b = self.buckets.get_mut(bucket_of(age)).expect("bucket in range");
                b.w += weight;
                b.wb += weight * t.bytes as f64;
                b.wba += weight * t.bytes as f64 * (age as f64 * 1e-9);
                t.last_seen_nanos = now_nanos;
                t.bytes = bytes;
            }
            None => {
                self.cold_w += weight;
                self.tracked.insert(hash, Tracked { last_seen_nanos: now_nanos, bytes });
                if self.tracked.len() > self.cfg.max_tracked_keys {
                    self.halve_rate();
                }
            }
        }
    }

    fn halve_rate(&mut self) {
        self.threshold = (self.threshold / 2).max(1);
        let t = self.threshold;
        self.tracked.retain(|h, _| h % SAMPLE_MODULUS < t);
    }

    /// Fold the elapsed window into the decayed history. Called by the
    /// controller once per decision with the window's span.
    fn roll_window(&mut self, window_nanos: f64) {
        self.span_nanos += window_nanos;
        let d = self.cfg.history_decay.clamp(0.0, 1.0);
        if d < 1.0 {
            for b in &mut self.buckets {
                b.w *= d;
                b.wb *= d;
                b.wba *= d;
            }
            self.cold_w *= d;
            self.span_nanos *= d;
        }
    }

    /// Candidate TTLs worth pricing: the bucket edges, in seconds.
    pub fn candidate_ttls_secs(min_secs: f64, max_secs: f64) -> Vec<f64> {
        (0..AGE_BUCKETS)
            .map(|i| bucket_edge_nanos(i) as f64 * 1e-9)
            .filter(|&t| t >= min_secs && t <= max_secs)
            .collect()
    }

    /// Estimated hit ratio if every entry expired `ttl_secs` after its last
    /// write/reference: the weighted fraction of inter-reference ages ≤ TTL
    /// (first touches can never hit, at any TTL).
    pub fn hit_ratio(&self, ttl_secs: f64) -> f64 {
        let ttl_nanos = (ttl_secs * 1e9) as u64;
        let mut hit = 0.0;
        let mut total = self.cold_w;
        for (i, b) in self.buckets.iter().enumerate() {
            total += b.w;
            if bucket_edge_nanos(i) <= ttl_nanos {
                hit += b.w;
            }
        }
        if total <= 0.0 {
            0.0
        } else {
            hit / total
        }
    }

    /// Estimated mean resident bytes at this TTL: each reference keeps its
    /// entry resident for `min(age-to-next-reference, TTL)`; open intervals
    /// (each tracked key's latest access) contribute a full TTL each. The
    /// byte·seconds are averaged over the observed span.
    pub fn mean_resident_bytes(&self, ttl_secs: f64) -> f64 {
        let ttl_nanos = (ttl_secs * 1e9) as u64;
        let mut byte_secs = 0.0;
        for (i, b) in self.buckets.iter().enumerate() {
            if bucket_edge_nanos(i) <= ttl_nanos {
                byte_secs += b.wba;
            } else {
                byte_secs += ttl_secs * b.wb;
            }
        }
        let open_wb: f64 = {
            let w = self.rate_inverse();
            self.tracked.values().map(|t| w * t.bytes as f64).sum()
        };
        byte_secs += ttl_secs * open_wb;
        let span_secs = self.span_nanos * 1e-9;
        if span_secs <= 0.0 {
            0.0
        } else {
            byte_secs / span_secs
        }
    }
}

/// TTL control-plane configuration; `decision_interval_secs == 0` (the
/// default) disables the whole plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TtlConfig {
    /// Simulated seconds between TTL decisions. 0 = disabled.
    pub decision_interval_secs: f64,
    /// Shortest TTL the planner may adopt (seconds).
    pub min_ttl_secs: f64,
    /// Longest TTL the planner may adopt (seconds).
    pub max_ttl_secs: f64,
    /// Baseline CPU per request (µs) independent of the TTL.
    pub hit_cpu_us: f64,
    /// Marginal CPU per miss (µs): the storage round trip a hit avoids.
    pub miss_cpu_us: f64,
    /// Max allowed hit-ratio shortfall vs the longest candidate TTL —
    /// the same degradation bound the capacity planner enforces.
    pub max_miss_ratio_delta: f64,
    /// Minimum relative saving before the adopted TTL switches.
    pub hysteresis_fraction: f64,
    /// Fleet sizing: provisioned cores = used cores / this.
    pub target_utilization: f64,
    pub histogram: AgeHistogramConfig,
}

impl Default for TtlConfig {
    fn default() -> Self {
        TtlConfig {
            decision_interval_secs: 0.0,
            min_ttl_secs: 0.004,
            max_ttl_secs: 7.0 * 86_400.0,
            hit_cpu_us: 60.0,
            miss_cpu_us: 250.0,
            max_miss_ratio_delta: 0.02,
            hysteresis_fraction: 0.05,
            target_utilization: 0.7,
            histogram: AgeHistogramConfig::default(),
        }
    }
}

impl TtlConfig {
    pub fn enabled(&self) -> bool {
        self.decision_interval_secs > 0.0
    }

    /// An enabled config with the given cadence, other knobs default.
    pub fn with_interval(decision_interval_secs: f64) -> Self {
        TtlConfig { decision_interval_secs, ..TtlConfig::default() }
    }
}

/// One TTL decision: the age entries should live to, and what the
/// histogram predicts that buys.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TtlPlan {
    /// The adopted TTL, in seconds.
    pub ttl_secs: f64,
    /// Predicted hit ratio at this TTL, from the age histogram.
    pub predicted_hit_ratio: f64,
    /// Predicted mean resident bytes at this TTL.
    pub predicted_resident_bytes: f64,
    /// Projected monthly dollars (compute + resident memory) at current
    /// load.
    pub monthly_dollars: f64,
}

/// Price one candidate TTL at the given load.
fn price_ttl(hist: &AgeHistogram, rps: f64, ttl_secs: f64, cfg: &TtlConfig, pricing: &Pricing) -> TtlPlan {
    let hit = hist.hit_ratio(ttl_secs);
    let resident = hist.mean_resident_bytes(ttl_secs);
    let cpu_us = cfg.hit_cpu_us + (1.0 - hit) * cfg.miss_cpu_us;
    let provisioned_cores = rps * cpu_us * 1e-6 / cfg.target_utilization.max(1e-6);
    let monthly = provisioned_cores * pricing.cpu_core_month
        + resident / (1u64 << 30) as f64 * pricing.mem_gb_month;
    TtlPlan {
        ttl_secs,
        predicted_hit_ratio: hit,
        predicted_resident_bytes: resident,
        monthly_dollars: monthly,
    }
}

/// Pick the dollar-minimizing TTL subject to the hit-ratio floor, with
/// hysteresis against `prev`. Pure and deterministic — the TTL dual of
/// [`crate::planner::plan`].
pub fn plan_ttl(
    hist: &AgeHistogram,
    rps: f64,
    cfg: &TtlConfig,
    pricing: &Pricing,
    prev: Option<&TtlPlan>,
) -> TtlPlan {
    let mut ttls = AgeHistogram::candidate_ttls_secs(cfg.min_ttl_secs, cfg.max_ttl_secs);
    if ttls.is_empty() {
        ttls.push(cfg.max_ttl_secs.max(cfg.min_ttl_secs));
    }
    let reference = price_ttl(hist, rps, *ttls.last().expect("non-empty"), cfg, pricing);
    let floor = reference.predicted_hit_ratio - cfg.max_miss_ratio_delta;
    let mut best = reference;
    for &t in &ttls {
        let p = price_ttl(hist, rps, t, cfg, pricing);
        if p.predicted_hit_ratio < floor {
            continue;
        }
        // Strict `<` keeps the shorter TTL on ties (grid is ascending).
        if p.monthly_dollars < best.monthly_dollars {
            best = p;
        }
    }
    if let Some(prev) = prev {
        // Re-price the incumbent at current load; keep it unless the
        // challenger clears the hysteresis margin.
        let incumbent = price_ttl(hist, rps, prev.ttl_secs, cfg, pricing);
        let margin = incumbent.monthly_dollars * (1.0 - cfg.hysteresis_fraction);
        if best.ttl_secs != incumbent.ttl_secs && best.monthly_dollars >= margin {
            return incumbent;
        }
    }
    best
}

/// Streaming histogram + periodic TTL planner. One per cache (or per
/// tenant); the deployment feeds it every access and applies the TTLs it
/// returns. Mirrors [`crate::ElasticController`].
#[derive(Debug, Clone)]
pub struct TtlController {
    cfg: TtlConfig,
    hist: AgeHistogram,
    current: Option<TtlPlan>,
    window_start_secs: Option<f64>,
    window_requests: u64,
    decisions: u64,
    ttl_changes: u64,
}

impl TtlController {
    pub fn new(cfg: TtlConfig) -> Self {
        TtlController {
            hist: AgeHistogram::new(cfg.histogram),
            cfg,
            current: None,
            window_start_secs: None,
            window_requests: 0,
            decisions: 0,
            ttl_changes: 0,
        }
    }

    pub fn config(&self) -> &TtlConfig {
        &self.cfg
    }

    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    pub fn histogram(&self) -> &AgeHistogram {
        &self.hist
    }

    /// The most recent plan, if any decision has fired yet.
    pub fn current_plan(&self) -> Option<&TtlPlan> {
        self.current.as_ref()
    }

    /// The adopted TTL in nanoseconds, for `Cache::set_default_ttl`.
    pub fn current_ttl_nanos(&self) -> Option<u64> {
        self.current.map(|p| (p.ttl_secs * 1e9) as u64)
    }

    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decisions that changed the adopted TTL.
    pub fn ttl_changes(&self) -> u64 {
        self.ttl_changes
    }

    /// Feed one access by stable key hash. No-op when disabled.
    pub fn observe_hashed(&mut self, hash: u64, bytes: u64, now_nanos: u64) {
        if !self.cfg.enabled() {
            return;
        }
        self.hist.observe(hash, bytes, now_nanos);
        self.window_requests += 1;
    }

    /// Run a decision if a full interval has elapsed since the last one.
    /// Returns the (possibly unchanged) plan when a decision fires.
    pub fn maybe_decide(&mut self, now_secs: f64, pricing: &Pricing) -> Option<TtlPlan> {
        if !self.cfg.enabled() {
            return None;
        }
        let start = match self.window_start_secs {
            None => {
                // First tick opens the measurement window; no decision yet.
                self.window_start_secs = Some(now_secs);
                return None;
            }
            Some(s) => s,
        };
        let elapsed = now_secs - start;
        if elapsed < self.cfg.decision_interval_secs {
            return None;
        }
        let rps = self.window_requests as f64 / elapsed.max(1e-9);
        self.hist.roll_window(elapsed * 1e9);
        let next = plan_ttl(&self.hist, rps, &self.cfg, pricing, self.current.as_ref());
        self.decisions += 1;
        if self.current.map(|p| p.ttl_secs) != Some(next.ttl_secs) {
            self.ttl_changes += 1;
        }
        self.current = Some(next);
        self.window_start_secs = Some(now_secs);
        self.window_requests = 0;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekit::ring::splitmix64;

    const SEC: u64 = 1_000_000_000;

    fn enabled_cfg() -> TtlConfig {
        TtlConfig::with_interval(10.0)
    }

    /// Feed `keys` keys round-robin so every key is re-referenced every
    /// `gap_secs`, for `rounds` rounds. Returns the final virtual time.
    fn round_robin(h: &mut AgeHistogram, keys: u64, gap_secs: f64, rounds: u64, bytes: u64) -> u64 {
        let gap = (gap_secs * 1e9) as u64;
        let step = gap / keys;
        let mut now = 0u64;
        for r in 0..rounds {
            for k in 0..keys {
                now = r * gap + k * step;
                h.observe(splitmix64(k ^ 0x9e37), bytes, now);
            }
        }
        now
    }

    #[test]
    fn default_config_is_disabled_and_inert() {
        let cfg = TtlConfig::default();
        assert!(!cfg.enabled());
        let mut c = TtlController::new(cfg);
        c.observe_hashed(7, 100, 0);
        assert_eq!(c.histogram().raw_accesses(), 0, "disabled observe is a no-op");
        assert_eq!(c.maybe_decide(1_000.0, &Pricing::default()), None);
        assert_eq!(c.decisions(), 0);
        assert_eq!(c.current_ttl_nanos(), None);
    }

    #[test]
    fn histogram_separates_ages_around_the_ttl() {
        // Keys re-referenced every 1 s: a 2 s TTL catches every
        // re-reference, a 0.25 s TTL catches none.
        let mut h = AgeHistogram::new(AgeHistogramConfig::default());
        round_robin(&mut h, 64, 1.0, 20, 1_000);
        assert!(h.hit_ratio(2.0) > 0.9, "long TTL must hit: {}", h.hit_ratio(2.0));
        assert!(h.hit_ratio(0.25) < 0.05, "short TTL must miss: {}", h.hit_ratio(0.25));
    }

    #[test]
    fn resident_bytes_scale_with_ttl_until_the_reference_gap() {
        let mut h = AgeHistogram::new(AgeHistogramConfig::default());
        h.span_nanos = 0.0;
        let end = round_robin(&mut h, 64, 1.0, 40, 1_000);
        h.roll_window(end as f64);
        // Below the 1 s gap residency grows ~linearly with TTL; past it
        // every key is always resident and the curve flattens near the
        // full working set (64 keys × 1 000 B).
        let r_short = h.mean_resident_bytes(0.125);
        let r_gap = h.mean_resident_bytes(1.1);
        let r_long = h.mean_resident_bytes(600.0);
        assert!(r_short < r_gap, "residency must grow with TTL: {r_short} vs {r_gap}");
        assert!(r_gap > 30_000.0 && r_gap < 130_000.0, "~working set at the gap: {r_gap}");
        // Long TTLs can't exceed span-average bounds by much: still ~WS
        // plus the open-interval tail.
        assert!(r_long >= r_gap, "{r_long} vs {r_gap}");
    }

    #[test]
    fn expensive_memory_adopts_short_ttls_expensive_misses_long_ones() {
        let run = |pricing: &Pricing, miss_cpu_us: f64| {
            let mut cfg = enabled_cfg();
            cfg.miss_cpu_us = miss_cpu_us;
            // Hit floor off so pure economics decide.
            cfg.max_miss_ratio_delta = 1.0;
            let mut h = AgeHistogram::new(cfg.histogram);
            let end = round_robin(&mut h, 64, 1.0, 40, 1_000_000);
            h.roll_window(end as f64);
            plan_ttl(&h, 10_000.0, &cfg, pricing, None)
        };
        // DRAM at 1000× list price, nearly-free misses → expire fast.
        let dear_mem = run(&Pricing::default().with_memory_multiplier(1_000.0), 1e-3);
        // Free-ish DRAM, dear misses → keep entries past the 1 s gap.
        let dear_miss = run(&Pricing { mem_gb_month: 1e-6, ..Pricing::default() }, 500.0);
        assert!(
            dear_mem.ttl_secs < 1.0,
            "dear DRAM must pick a sub-gap TTL: {}",
            dear_mem.ttl_secs
        );
        assert!(
            dear_miss.ttl_secs >= 1.0,
            "dear misses must keep entries across the gap: {}",
            dear_miss.ttl_secs
        );
        assert!(dear_miss.predicted_hit_ratio > 0.9);
    }

    #[test]
    fn decisions_fire_on_the_interval_and_steady_load_does_not_flap() {
        let mut c = TtlController::new(enabled_cfg());
        let pricing = Pricing::default();
        assert_eq!(c.maybe_decide(0.0, &pricing), None, "first tick only opens window");
        let mut ttls = Vec::new();
        for round in 1..=8u64 {
            for i in 0..10_000u64 {
                // ~1 s re-reference gap across 1 000 keys within the round.
                let now = (round - 1) * 10 * SEC + i * SEC / 1_000;
                c.observe_hashed(splitmix64(i % 1_000), 1_024, now);
            }
            assert_eq!(
                c.maybe_decide(round as f64 * 10.0 - 5.0, &pricing),
                None,
                "interval not elapsed"
            );
            let p = c.maybe_decide(round as f64 * 10.0, &pricing).expect("decision fires");
            ttls.push(p.ttl_secs);
        }
        assert_eq!(c.decisions(), 8);
        let tail = &ttls[ttls.len() - 4..];
        assert!(
            tail.windows(2).all(|w| w[0] == w[1]),
            "TTL flapped under steady load: {ttls:?}"
        );
        assert!(c.ttl_changes() <= 3, "{} changes: {ttls:?}", c.ttl_changes());
    }

    #[test]
    fn churn_with_decay_shrinks_residency_estimates() {
        // A working set that rotates: without decay the histogram would
        // keep pricing dead epochs' long tails forever.
        let cfg = AgeHistogramConfig {
            history_decay: 0.3,
            ..Default::default()
        };
        let mut h = AgeHistogram::new(cfg);
        let mut now = 0u64;
        for epoch in 0..6u64 {
            for r in 0..20u64 {
                for k in 0..64u64 {
                    now = epoch * 20 * SEC + r * SEC + k * SEC / 64;
                    h.observe(splitmix64(epoch * 1_000 + k), 1_000, now);
                }
            }
            h.roll_window(20.0 * 1e9);
        }
        let _ = now;
        // At a 2 s TTL only the live epoch is resident: ~64 KB, not 6×.
        let r = h.mean_resident_bytes(2.0);
        assert!(r < 200_000.0, "dead epochs still resident: {r}");
        assert!(h.hit_ratio(2.0) > 0.8, "live epoch must still hit");
    }

    #[test]
    fn sampling_rate_halves_under_key_pressure_and_stays_bounded() {
        let cfg = AgeHistogramConfig {
            max_tracked_keys: 256,
            ..Default::default()
        };
        let mut h = AgeHistogram::new(cfg);
        for i in 0..100_000u64 {
            h.observe(splitmix64(i), 100, i * 1_000);
        }
        assert!(h.tracked_keys() <= 256, "{} tracked", h.tracked_keys());
        assert!(h.rate_inverse() > 1.0, "rate never halved");
    }

    #[test]
    fn controller_is_deterministic() {
        let run = || {
            let mut c = TtlController::new(enabled_cfg());
            let pricing = Pricing::default();
            c.maybe_decide(0.0, &pricing);
            let mut out = Vec::new();
            for round in 1..=4u64 {
                for i in 0..5_000u64 {
                    let now = (round - 1) * 10 * SEC + i * 2 * SEC / 1_000;
                    c.observe_hashed(splitmix64(i % 700), 512, now);
                }
                out.push(c.maybe_decide(round as f64 * 10.0, &pricing));
            }
            format!("{out:?}")
        };
        assert_eq!(run(), run());
    }
}
