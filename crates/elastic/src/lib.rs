//! # elastic — online MRC profiling and cost-aware cache provisioning
//!
//! The paper prices distributed caches under *static* provisioning: every
//! tier is sized for peak demand and billed around the clock. This crate
//! supplies the missing control plane that turns those prices into a
//! function of live load:
//!
//! * [`shards::ShardsProfiler`] — a streaming, bounded-memory miss-ratio
//!   -curve estimator using SHARDS spatial sampling (Waldspurger et al.,
//!   FAST '15): track only keys whose stable hash falls under a threshold,
//!   measure Mattson stack distances within the sampled stream, and scale
//!   distances and weights by the inverse sampling rate. Validated against
//!   `cachekit::mrc::StackDistance` as the exact oracle.
//! * [`planner`] — combines the live curve with `costmodel` pricing to
//!   pick the dollar-minimizing cache size / shard count / VM count,
//!   subject to a hit-ratio floor and switching-cost hysteresis so the
//!   plan doesn't flap.
//! * [`controller::ElasticController`] — the periodic decision loop a
//!   deployment embeds: observe every request, re-plan on a fixed
//!   simulated-time cadence, and hand resize actions back to the caller.
//!
//! Everything here is deterministic: no RNG, no wall clock — decisions are
//! pure functions of the observed key stream and simulated time, which is
//! what lets the experiment harness assert byte-identical reports across
//! parallel sweep workers.

pub mod controller;
pub mod planner;
pub mod shards;
pub mod ttl;

pub use controller::{ElasticConfig, ElasticController};
pub use planner::{plan, Plan, PlannerConfig};
pub use shards::{ShardsConfig, ShardsProfiler};
pub use ttl::{plan_ttl, AgeHistogram, TtlConfig, TtlController, TtlPlan};
