//! SHARDS profiler vs exact Mattson oracle.
//!
//! The profiler's whole claim is that a spatially-sampled substream
//! estimates the full stream's miss-ratio curve. This suite feeds the
//! same deterministic traces to [`elastic::ShardsProfiler`] at several
//! sampling rates and to [`cachekit::StackDistance`] (the exact oracle),
//! then compares the curves pointwise at a spread of cache sizes.
//!
//! Tolerances follow the SHARDS paper's findings: error grows as the rate
//! falls, and we probe rates down to 1% on Zipf-like and scan traces.
//! Like `cachekit`'s oracle tests, a deterministic driver always runs and
//! a `proptest!` block adds exploration when the real crate is available
//! (the offline stub swallows it).

// The offline `proptest` stub swallows `proptest!` blocks, leaving the
// strategy helpers (and some imports) unreferenced in offline builds.
#![allow(dead_code, unused_imports)]
use cachekit::ring::splitmix64;
use cachekit::StackDistance;
use elastic::{ShardsConfig, ShardsProfiler};
use proptest::prelude::*;

fn key_bytes(k: u64) -> Vec<u8> {
    format!("key-{k}").into_bytes()
}

/// Zipf-ish trace via inverse-power mapping of a uniform draw: heavily
/// skewed toward low key ids, like cache workloads.
fn skewed_trace(seed: u64, universe: u64, len: usize) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            let r = splitmix64(state_mix(&mut state));
            let u = (r >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            // rank ∝ u^3 concentrates ~50% of draws on ~12% of keys.
            ((u * u * u) * universe as f64) as u64
        })
        .collect()
}

fn state_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    *state
}

/// Max |sampled - exact| miss-ratio difference over probe sizes.
fn max_curve_error(trace: &[u64], rate: f64, probes: &[u64]) -> f64 {
    let mut profiler = ShardsProfiler::new(ShardsConfig {
        sampling_rate: rate,
        max_tracked_keys: 64 << 10,
    });
    let mut oracle = StackDistance::new();
    for &k in trace {
        profiler.observe(&key_bytes(k));
        oracle.access(k);
    }
    let live = profiler.curve();
    let exact = oracle.curve();
    probes
        .iter()
        .map(|&c| (live.miss_ratio(c) - exact.miss_ratio(c)).abs())
        .fold(0.0, f64::max)
}

const PROBES: &[u64] = &[1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 1 << 20];

#[test]
fn full_rate_is_exact() {
    let trace = skewed_trace(0xE1A5, 5_000, 60_000);
    let err = max_curve_error(&trace, 1.0, PROBES);
    assert!(err < 1e-9, "rate 1.0 must reproduce Mattson exactly: {err}");
}

#[test]
fn sampled_curves_stay_within_tolerance_across_rates() {
    // SHARDS reports *mean* absolute error well under 0.02 at 1% sampling;
    // we check the *max* over probes including very small caches, where
    // distance quantization (multiples of 1/R) dominates — hence looser
    // bounds that still tighten as the rate rises.
    let cases = [(0.5, 0.05), (0.25, 0.05), (0.1, 0.06), (0.01, 0.10)];
    for seed in [0xA11CE, 0xB0B, 0xC0FFEE] {
        let trace = skewed_trace(seed, 20_000, 120_000);
        for &(rate, tol) in &cases {
            let err = max_curve_error(&trace, rate, PROBES);
            assert!(
                err < tol,
                "seed={seed:#x} rate={rate}: max curve error {err} > {tol}"
            );
        }
    }
}

#[test]
fn cyclic_scan_curve_survives_sampling() {
    // LRU's worst case: a cyclic scan has a curve that is a step at the
    // working-set size. Sampling must preserve the cliff's location.
    let n = 2_000u64;
    let trace: Vec<u64> = (0..12 * n).map(|i| i % n).collect();
    for rate in [1.0, 0.25, 0.1] {
        let mut profiler = ShardsProfiler::new(ShardsConfig {
            sampling_rate: rate,
            max_tracked_keys: 64 << 10,
        });
        for &k in &trace {
            profiler.observe(&key_bytes(k));
        }
        let curve = profiler.curve();
        assert!(
            curve.miss_ratio(n / 2) > 0.9,
            "rate={rate}: below the cliff everything misses"
        );
        assert!(
            curve.miss_ratio(2 * n) < 0.2,
            "rate={rate}: above the cliff the scan hits"
        );
    }
}

#[test]
fn adapted_profiler_still_tracks_the_oracle() {
    // Force heavy rate adaptation with a tiny key budget: the curve must
    // stay a usable estimate even after several halvings.
    let trace = skewed_trace(0xD00D, 30_000, 150_000);
    let mut profiler = ShardsProfiler::new(ShardsConfig {
        sampling_rate: 1.0,
        max_tracked_keys: 2_048,
    });
    let mut oracle = StackDistance::new();
    for &k in &trace {
        profiler.observe(&key_bytes(k));
        oracle.access(k);
    }
    assert!(profiler.rate_adaptations() > 0, "budget must have forced adaptation");
    let live = profiler.curve();
    let exact = oracle.curve();
    for &c in PROBES {
        let err = (live.miss_ratio(c) - exact.miss_ratio(c)).abs();
        assert!(err < 0.08, "entries={c}: error {err} after adaptation");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exploratory driver (no-op under the offline proptest stub): any
    /// seed/universe at 25% sampling stays within loose tolerance.
    #[test]
    fn sampled_curve_tracks_oracle(
        seed in 0u64..1_000,
        universe in 500u64..8_000,
    ) {
        let trace = skewed_trace(seed, universe, 60_000);
        let err = max_curve_error(&trace, 0.25, PROBES);
        prop_assert!(err < 0.06, "err={err}");
    }
}
