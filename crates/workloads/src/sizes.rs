//! Per-key value-size models.
//!
//! A key's size must be a *stable* property of the key — the same key always
//! has (roughly) the same value size across reads, writes and runs — or
//! byte accounting between cache fills and later hits would disagree. Sizes
//! are therefore derived deterministically from `(distribution, key,
//! stream seed)` rather than drawn fresh per access.

use cachekit::ring::splitmix64;
use serde::{Deserialize, Serialize};

/// A value-size distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SizeDist {
    /// Every value is exactly this size (the synthetic sweeps).
    Fixed(u64),
    /// Uniform in `[lo, hi]`.
    Uniform { lo: u64, hi: u64 },
    /// Log-normal parameterized by median and sigma (of the underlying
    /// normal). Matches heavy-tailed production size distributions; the
    /// Unity Catalog trace uses median ≈ 23 KB.
    LogNormal { median: u64, sigma: f64 },
    /// Discrete mixture: `(size, weight)` pairs (weights need not sum to 1).
    /// Used to match published trace percentiles (e.g. Meta's ~10 B median).
    Discrete(Vec<(u64, f64)>),
}

impl SizeDist {
    /// The deterministic size of `key` under this distribution. `seed`
    /// decorrelates size assignment across experiments.
    pub fn size_of(&self, key: u64, seed: u64) -> u64 {
        let h = splitmix64(key ^ splitmix64(seed ^ 0xC0FFEE));
        match self {
            SizeDist::Fixed(s) => *s,
            SizeDist::Uniform { lo, hi } => {
                let span = hi.saturating_sub(*lo) + 1;
                lo + h % span
            }
            SizeDist::LogNormal { median, sigma } => {
                let z = standard_normal(h);
                let v = (*median as f64) * (sigma * z).exp();
                (v.round() as u64).max(1)
            }
            SizeDist::Discrete(items) => {
                let total: f64 = items.iter().map(|(_, w)| w).sum();
                let mut point = (h as f64 / u64::MAX as f64) * total;
                for (size, w) in items {
                    if point < *w {
                        return *size;
                    }
                    point -= w;
                }
                items.last().map(|(s, _)| *s).unwrap_or(1)
            }
        }
    }

    /// Mean size estimated over a keyspace of `n` keys (used for converting
    /// byte capacities to entry counts in the analytic model).
    pub fn mean_over_keys(&self, n: u64, seed: u64) -> f64 {
        let sample = n.clamp(1, 10_000);
        let total: u64 = (0..sample)
            .map(|i| self.size_of(i * n.max(1) / sample, seed))
            .sum();
        total as f64 / sample as f64
    }
}

/// Map a uniform u64 to a standard normal via Box–Muller on two derived
/// uniforms (deterministic — no RNG state).
fn standard_normal(h: u64) -> f64 {
    let u1 = ((splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
    let u2 = (splitmix64(h ^ 0xABCD_EF01) >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_deterministic_per_key() {
        let d = SizeDist::LogNormal { median: 23_000, sigma: 1.5 };
        for key in [0u64, 1, 99, 12345] {
            assert_eq!(d.size_of(key, 7), d.size_of(key, 7));
        }
        // but differ across seeds
        assert_ne!(d.size_of(1, 7), d.size_of(1, 8));
    }

    #[test]
    fn fixed_is_fixed() {
        let d = SizeDist::Fixed(1024);
        assert_eq!(d.size_of(0, 0), 1024);
        assert_eq!(d.size_of(u64::MAX, 9), 1024);
        assert_eq!(d.mean_over_keys(100, 0), 1024.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let d = SizeDist::Uniform { lo: 10, hi: 20 };
        for key in 0..1000 {
            let s = d.size_of(key, 3);
            assert!((10..=20).contains(&s));
        }
    }

    #[test]
    fn lognormal_median_is_close() {
        let d = SizeDist::LogNormal { median: 23_000, sigma: 1.5 };
        let mut sizes: Vec<u64> = (0..20_001).map(|k| d.size_of(k, 1)).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2] as f64;
        assert!(
            (median - 23_000.0).abs() / 23_000.0 < 0.1,
            "median {median} too far from 23000"
        );
        // heavy tail: p99 well above median
        let p99 = sizes[(sizes.len() as f64 * 0.99) as usize] as f64;
        assert!(p99 > 10.0 * median, "p99 {p99} not heavy-tailed");
    }

    #[test]
    fn discrete_mixture_respects_weights() {
        let d = SizeDist::Discrete(vec![(10, 0.9), (1000, 0.1)]);
        let small = (0..10_000).filter(|&k| d.size_of(k, 2) == 10).count();
        let frac = small as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.03, "small fraction {frac}");
    }

    #[test]
    fn discrete_empty_defaults_to_one() {
        let d = SizeDist::Discrete(vec![]);
        assert_eq!(d.size_of(5, 5), 1);
    }

    #[test]
    fn mean_over_keys_reflects_distribution() {
        let d = SizeDist::Discrete(vec![(100, 0.5), (300, 0.5)]);
        let mean = d.mean_over_keys(10_000, 4);
        assert!((mean - 200.0).abs() < 20.0, "mean {mean}");
    }
}
