//! Multi-tenant request mixes and the TTL study's two stress schedules.
//!
//! A shared cache serves many services at once; the paper prices the cache
//! as one tier, but *tuning* it per tenant is where TTL control earns its
//! keep — one tenant's churn or write storm shouldn't cost another tenant
//! its hit ratio. This module supplies the workload side of that story:
//!
//! * [`TenantMix`] — a weighted set of [`TenantSpec`]s, each with its own
//!   key space (namespaced ids), Zipf skew, read mix, and optionally a
//!   churn or storm schedule. A [`TenantPicker`] chooses the tenant of
//!   each request deterministically from a dedicated xorshift stream, so
//!   adding a tenant dimension never perturbs the per-tenant request
//!   sequences themselves.
//! * [`ChurnSchedule`] — daily working-set rotation: a pure function of
//!   simulated time to a churn epoch; the workload re-scrambles its
//!   rank→key mapping each epoch ("dashboards over the last T minutes").
//! * [`StormSchedule`] — write-heavy invalidation storms: periodic bursts
//!   during which the tenant's read ratio drops to a configured value,
//!   invalidating its working set at high rate.
//!
//! Like [`crate::diurnal`], schedules are pure functions of
//! `(config, time)` — no RNG — so every run is byte-stable across workers.

use crate::kv::KvWorkloadConfig;
use serde::{Deserialize, Serialize};

/// Bits reserved for the per-tenant key id; tenant ids live above them.
/// Key spaces up to 2^40 keys per tenant — far beyond any experiment.
const TENANT_KEY_BITS: u32 = 40;

/// Namespace a tenant-local key id into the shared key space.
pub fn namespaced_key(tenant: usize, key: u64) -> u64 {
    debug_assert!(key < 1u64 << TENANT_KEY_BITS);
    ((tenant as u64) << TENANT_KEY_BITS) | key
}

/// Recover the tenant id from a namespaced key.
pub fn tenant_of_key(key: u64) -> usize {
    (key >> TENANT_KEY_BITS) as usize
}

/// Daily working-set rotation: every `period_secs` the tenant's hot set
/// moves to a fresh region of its key space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    /// Seconds between hot-set rotations.
    pub period_secs: f64,
}

impl ChurnSchedule {
    /// The churn epoch at `t_secs`: a pure, monotone function of time.
    pub fn epoch(&self, t_secs: f64) -> u64 {
        if self.period_secs <= 0.0 {
            0
        } else {
            (t_secs / self.period_secs).floor().max(0.0) as u64
        }
    }
}

/// Periodic write-heavy invalidation storms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StormSchedule {
    /// Seconds between storm onsets.
    pub period_secs: f64,
    /// Storm duration from each onset (must be < `period_secs`).
    pub burst_secs: f64,
    /// Read ratio *during* the storm (e.g. 0.2 = 80% writes); outside the
    /// storm the tenant's configured read ratio applies.
    pub storm_read_ratio: f64,
}

impl StormSchedule {
    /// The read-ratio override at `t_secs`, if a storm is in progress.
    pub fn read_ratio_at(&self, t_secs: f64) -> Option<f64> {
        if self.period_secs <= 0.0 || self.burst_secs <= 0.0 {
            return None;
        }
        let phase = t_secs.rem_euclid(self.period_secs);
        (phase < self.burst_secs).then_some(self.storm_read_ratio.clamp(0.0, 1.0))
    }
}

/// One tenant: a weight in the shared request stream, its own workload
/// parameters, and optional churn/storm stress schedules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Short name for reports and metric labels.
    pub label: String,
    /// Relative share of the shared request stream.
    pub weight: f64,
    /// The tenant's private workload (its `keys` are tenant-local ids).
    pub workload: KvWorkloadConfig,
    pub churn: Option<ChurnSchedule>,
    pub storm: Option<StormSchedule>,
}

impl TenantSpec {
    pub fn new(label: &str, weight: f64, workload: KvWorkloadConfig) -> Self {
        TenantSpec {
            label: label.to_string(),
            weight,
            workload,
            churn: None,
            storm: None,
        }
    }

    pub fn with_churn(mut self, period_secs: f64) -> Self {
        self.churn = Some(ChurnSchedule { period_secs });
        self
    }

    pub fn with_storm(mut self, period_secs: f64, burst_secs: f64, storm_read_ratio: f64) -> Self {
        self.storm = Some(StormSchedule { period_secs, burst_secs, storm_read_ratio });
        self
    }
}

/// A weighted set of tenants sharing one cache deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantMix {
    pub tenants: Vec<TenantSpec>,
    /// Seed for the tenant-of-request picker (independent of each
    /// tenant's own workload seed).
    pub select_seed: u64,
}

impl TenantMix {
    pub fn new(tenants: Vec<TenantSpec>, select_seed: u64) -> Self {
        TenantMix { tenants, select_seed }
    }

    pub fn picker(&self) -> TenantPicker {
        let total: f64 = self.tenants.iter().map(|t| t.weight.max(0.0)).sum();
        let mut cumulative = Vec::with_capacity(self.tenants.len());
        let mut acc = 0.0;
        for t in &self.tenants {
            acc += t.weight.max(0.0) / total.max(1e-12);
            cumulative.push(acc);
        }
        TenantPicker { cumulative, state: self.select_seed | 1 }
    }
}

/// Deterministic weighted tenant selection (xorshift64*, its own stream).
#[derive(Debug, Clone)]
pub struct TenantPicker {
    cumulative: Vec<f64>,
    state: u64,
}

impl TenantPicker {
    /// The tenant index of the next request.
    pub fn pick(&mut self) -> usize {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        let u = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
        self.cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cumulative.len().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(label: &str, weight: f64) -> TenantSpec {
        TenantSpec::new(label, weight, KvWorkloadConfig::paper_synthetic(0.9, 1_024, 7))
    }

    #[test]
    fn namespacing_round_trips_and_separates_tenants() {
        for tenant in [0usize, 1, 5, 200] {
            for key in [0u64, 1, 99_999, (1 << 40) - 1] {
                let ns = namespaced_key(tenant, key);
                assert_eq!(tenant_of_key(ns), tenant);
                assert_eq!(ns & ((1 << 40) - 1), key);
            }
        }
        assert_ne!(namespaced_key(0, 42), namespaced_key(1, 42));
    }

    #[test]
    fn churn_epochs_advance_daily() {
        let c = ChurnSchedule { period_secs: 86_400.0 };
        assert_eq!(c.epoch(0.0), 0);
        assert_eq!(c.epoch(86_399.0), 0);
        assert_eq!(c.epoch(86_400.0), 1);
        assert_eq!(c.epoch(10.0 * 86_400.0 + 1.0), 10);
        let degenerate = ChurnSchedule { period_secs: 0.0 };
        assert_eq!(degenerate.epoch(1e9), 0, "zero period never rotates");
    }

    #[test]
    fn storms_are_periodic_bursts() {
        let s = StormSchedule { period_secs: 100.0, burst_secs: 10.0, storm_read_ratio: 0.2 };
        assert_eq!(s.read_ratio_at(0.0), Some(0.2), "storm at each onset");
        assert_eq!(s.read_ratio_at(9.9), Some(0.2));
        assert_eq!(s.read_ratio_at(10.0), None, "quiet after the burst");
        assert_eq!(s.read_ratio_at(99.0), None);
        assert_eq!(s.read_ratio_at(205.0), Some(0.2), "every period");
        let off = StormSchedule { period_secs: 0.0, burst_secs: 10.0, storm_read_ratio: 0.2 };
        assert_eq!(off.read_ratio_at(5.0), None);
    }

    #[test]
    fn picker_respects_weights_and_is_deterministic() {
        let mix = TenantMix::new(vec![spec("a", 3.0), spec("b", 1.0)], 42);
        let draw = |mix: &TenantMix, n: usize| -> Vec<usize> {
            let mut p = mix.picker();
            (0..n).map(|_| p.pick()).collect()
        };
        let picks = draw(&mix, 40_000);
        assert_eq!(picks, draw(&mix, 40_000), "picker must be deterministic");
        let a = picks.iter().filter(|&&t| t == 0).count() as f64 / picks.len() as f64;
        assert!((a - 0.75).abs() < 0.01, "tenant a share {a}, want 0.75");
    }

    #[test]
    fn picker_handles_single_tenant_and_zero_weights() {
        let mut solo = TenantMix::new(vec![spec("only", 1.0)], 1).picker();
        assert!((0..100).all(|_| solo.pick() == 0));
        let mut skewed = TenantMix::new(vec![spec("z", 0.0), spec("all", 2.0)], 1).picker();
        assert!((0..1_000).all(|_| skewed.pick() == 1), "zero-weight tenant never picked");
    }
}
