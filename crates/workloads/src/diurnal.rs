//! Diurnal load modulation.
//!
//! Datacenter services see strongly periodic demand: Meta's and Twitter's
//! published cache traces both show a daily swing of 2–4x between trough
//! and peak (plus occasional phase shifts when a region fails over or a
//! product launches). Static provisioning must buy the peak; an elastic
//! controller only pays for the integral. This module provides the demand
//! signal for that comparison: a deterministic multiplier over simulated
//! time that the experiment loop applies to its base request rate.
//!
//! Two shapes are supported and composable:
//!
//! * a **sinusoid** — smooth day/night swing between a trough and 1.0
//!   (the peak), with a configurable period and phase, and
//! * an **explicit phase table** — piecewise-constant multipliers keyed by
//!   start time, for step events (failover doubling traffic, a launch
//!   spike) that a sinusoid can't express.
//!
//! Everything is a pure function of `(config, time)` — no RNG is drawn —
//! so a schedule is trivially deterministic and byte-stable across runs
//! and across parallel sweep workers.

use serde::{Deserialize, Serialize};

/// A deterministic demand schedule: multiplier in `(0, 1]` over sim time.
///
/// The multiplier scales a base (peak) request rate, so 1.0 means "peak
/// demand" and the configured trough is the quietest point of the cycle.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct DiurnalSchedule {
    /// Cycle length in simulated seconds (86_400 = one day).
    pub period_secs: f64,
    /// Demand at the quietest point, as a fraction of peak (0 < trough ≤ 1).
    pub trough: f64,
    /// Fraction of the period by which the cycle is shifted. 0.0 starts at
    /// peak; 0.5 starts at trough.
    pub phase: f64,
    /// Piecewise-constant extra multipliers: `(start_secs, multiplier)`,
    /// sorted by start time; each applies from its start until the next
    /// entry (the last applies forever). Empty = no phase shifts.
    pub phases: Vec<(f64, f64)>,
}

impl Default for DiurnalSchedule {
    fn default() -> Self {
        DiurnalSchedule {
            period_secs: 86_400.0,
            trough: 0.25,
            phase: 0.0,
            phases: Vec::new(),
        }
    }
}

impl DiurnalSchedule {
    /// A plain day/night sinusoid with the given trough fraction.
    pub fn sinusoid(period_secs: f64, trough: f64) -> Self {
        DiurnalSchedule {
            period_secs,
            trough,
            ..DiurnalSchedule::default()
        }
    }

    /// A schedule driven purely by an explicit phase table (flat sinusoid).
    pub fn phase_table(phases: Vec<(f64, f64)>) -> Self {
        DiurnalSchedule {
            trough: 1.0,
            phases,
            ..DiurnalSchedule::default()
        }
    }

    /// The demand multiplier at `t_secs` of simulated time: the sinusoid
    /// value times the active phase-table multiplier, clamped to stay
    /// strictly positive so a request rate never collapses to zero.
    pub fn multiplier(&self, t_secs: f64) -> f64 {
        let base = if self.period_secs > 0.0 && self.trough < 1.0 {
            let trough = self.trough.clamp(0.0, 1.0);
            // Cosine swing: 1.0 at phase 0, `trough` half a period later.
            let angle = std::f64::consts::TAU * (t_secs / self.period_secs + self.phase);
            let mid = (1.0 + trough) / 2.0;
            let amp = (1.0 - trough) / 2.0;
            mid + amp * angle.cos()
        } else {
            1.0
        };
        let shift = self
            .phases
            .iter()
            .take_while(|&&(start, _)| start <= t_secs)
            .last()
            .map(|&(_, m)| m)
            .unwrap_or(1.0);
        (base * shift).max(1e-6)
    }

    /// Mean multiplier over one full period, by midpoint sampling — the
    /// ratio of elastic to static-peak demand volume. Phase-table shifts
    /// are included over `[0, period_secs)`.
    pub fn mean_multiplier(&self) -> f64 {
        const SAMPLES: usize = 4_096;
        let dt = self.period_secs / SAMPLES as f64;
        (0..SAMPLES)
            .map(|i| self.multiplier((i as f64 + 0.5) * dt))
            .sum::<f64>()
            / SAMPLES as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_and_trough_land_where_configured() {
        let s = DiurnalSchedule::sinusoid(86_400.0, 0.25);
        assert!((s.multiplier(0.0) - 1.0).abs() < 1e-12, "peak at t=0");
        assert!(
            (s.multiplier(43_200.0) - 0.25).abs() < 1e-12,
            "trough half a period in"
        );
        assert!((s.multiplier(86_400.0) - 1.0).abs() < 1e-9, "periodic");
    }

    #[test]
    fn phase_rotates_the_cycle() {
        let mut s = DiurnalSchedule::sinusoid(86_400.0, 0.25);
        s.phase = 0.5;
        assert!((s.multiplier(0.0) - 0.25).abs() < 1e-12, "starts at trough");
        assert!((s.multiplier(43_200.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiplier_stays_within_trough_and_peak() {
        let s = DiurnalSchedule::sinusoid(3_600.0, 0.4);
        for i in 0..1_000 {
            let m = s.multiplier(i as f64 * 7.3);
            assert!((0.4..=1.0 + 1e-12).contains(&m), "m={m} at i={i}");
        }
    }

    #[test]
    fn phase_table_is_piecewise_constant_with_last_entry_sticky() {
        let s = DiurnalSchedule::phase_table(vec![(100.0, 2.0), (200.0, 0.5)]);
        assert_eq!(s.multiplier(0.0), 1.0, "before the first entry");
        assert_eq!(s.multiplier(100.0), 2.0, "inclusive start");
        assert_eq!(s.multiplier(199.9), 2.0);
        assert_eq!(s.multiplier(200.0), 0.5);
        assert_eq!(s.multiplier(1e9), 0.5, "last entry applies forever");
    }

    #[test]
    fn phase_table_composes_with_the_sinusoid() {
        let mut s = DiurnalSchedule::sinusoid(86_400.0, 0.25);
        s.phases = vec![(43_200.0, 2.0)];
        assert!((s.multiplier(0.0) - 1.0).abs() < 1e-12);
        // At the trough the 2x failover shift applies on top.
        assert!((s.multiplier(43_200.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_multiplier_matches_closed_form_for_pure_sinusoid() {
        // Mean of mid + amp·cos over a period is mid = (1 + trough) / 2.
        let s = DiurnalSchedule::sinusoid(86_400.0, 0.25);
        assert!((s.mean_multiplier() - 0.625).abs() < 1e-3);
    }

    #[test]
    fn schedule_is_a_pure_function_of_time() {
        let s = DiurnalSchedule::default();
        let a: Vec<f64> = (0..100).map(|i| s.multiplier(i as f64 * 911.0)).collect();
        let b: Vec<f64> = (0..100).map(|i| s.multiplier(i as f64 * 911.0)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_configs_stay_positive() {
        let flat = DiurnalSchedule::sinusoid(0.0, 0.25);
        assert_eq!(flat.multiplier(123.0), 1.0, "zero period = flat");
        let zeroed = DiurnalSchedule::phase_table(vec![(0.0, 0.0)]);
        assert!(zeroed.multiplier(10.0) > 0.0, "clamped above zero");
    }
}
