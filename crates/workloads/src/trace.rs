//! Trace capture and replay.
//!
//! The paper evaluates on production traces we cannot redistribute; this
//! module closes the gap for users who *have* such traces: a newline-
//! delimited JSON record format (`{"op":"r","k":123,"b":1024}`), writers
//! and readers, and capture from any generator. A replayed trace drives
//! the same experiment runner as the synthetic generators
//! (`dcache::experiment::run_trace_experiment`).

use crate::kv::{KvOp, KvRequest, KvWorkload};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One trace record. Field names are kept to one byte so large traces stay
/// compact (`op` is `"r"` or `"w"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// `"r"` for read, `"w"` for write.
    pub op: char,
    /// Key id.
    pub k: u64,
    /// Value size in bytes.
    pub b: u64,
}

impl TraceRecord {
    pub fn from_request(r: &KvRequest) -> Self {
        TraceRecord {
            op: match r.op {
                KvOp::Read => 'r',
                KvOp::Write => 'w',
            },
            k: r.key,
            b: r.value_bytes,
        }
    }

    pub fn to_request(self) -> Result<KvRequest, TraceError> {
        let op = match self.op {
            'r' => KvOp::Read,
            'w' => KvOp::Write,
            other => return Err(TraceError::BadOp(other)),
        };
        Ok(KvRequest {
            op,
            key: self.k,
            value_bytes: self.b,
        })
    }
}

/// Trace IO errors.
#[derive(Debug)]
pub enum TraceError {
    Io(std::io::Error),
    Parse { line: usize, message: String },
    BadOp(char),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error on line {line}: {message}")
            }
            TraceError::BadOp(c) => write!(f, "bad op {c:?} (expected 'r' or 'w')"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Capture `n` requests from a generator into a trace.
pub fn capture(workload: &mut KvWorkload, n: usize) -> Vec<TraceRecord> {
    (0..n)
        .map(|_| TraceRecord::from_request(&workload.next_request()))
        .collect()
}

/// Write records as JSON lines.
///
/// The record is flat enough that the codec is hand-rolled (like
/// `bench::golden`'s canonical JSON): trace capture and replay then work —
/// and round-trip byte-for-byte — in every build of this repo, with no
/// serializer behind them to drift.
pub fn write_jsonl<W: Write>(records: &[TraceRecord], mut w: W) -> Result<(), TraceError> {
    for r in records {
        writeln!(w, "{{\"op\":\"{}\",\"k\":{},\"b\":{}}}", r.op, r.k, r.b)?;
    }
    Ok(())
}

/// Parse one `{"op":"r","k":123,"b":1024}` line. Fields may come in any
/// order and carry arbitrary whitespace, but all three must be present
/// exactly once and nothing else may appear.
fn parse_record(s: &str) -> Result<TraceRecord, String> {
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or("expected a JSON object")?;
    let (mut op, mut k, mut b) = (None::<char>, None::<u64>, None::<u64>);
    for field in inner.split(',') {
        let (key, value) = field.split_once(':').ok_or("expected \"key\": value")?;
        let key = key.trim().strip_prefix('"').and_then(|t| t.strip_suffix('"'));
        let value = value.trim();
        match key {
            Some("op") => {
                let c = value
                    .strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"'))
                    .filter(|t| t.chars().count() == 1)
                    .ok_or("\"op\" must be a one-character string")?;
                if op.replace(c.chars().next().unwrap()).is_some() {
                    return Err("duplicate field \"op\"".into());
                }
            }
            Some(name @ ("k" | "b")) => {
                let n: u64 = value.parse().map_err(|_| format!("\"{name}\" must be a u64"))?;
                let slot = if name == "k" { &mut k } else { &mut b };
                if slot.replace(n).is_some() {
                    return Err(format!("duplicate field \"{name}\""));
                }
            }
            _ => return Err(format!("unexpected field {}", field.trim())),
        }
    }
    match (op, k, b) {
        (Some(op), Some(k), Some(b)) => Ok(TraceRecord { op, k, b }),
        _ => Err("missing field (need \"op\", \"k\", \"b\")".into()),
    }
}

/// Read JSON-lines records; blank lines are skipped, malformed lines error
/// with their line number.
pub fn read_jsonl<R: BufRead>(r: R) -> Result<Vec<TraceRecord>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let record = parse_record(trimmed).map_err(|message| TraceError::Parse {
            line: i + 1,
            message,
        })?;
        // Validate op eagerly so replay can't fail later.
        record.to_request()?;
        out.push(record);
    }
    Ok(out)
}

/// Aggregate statistics of a trace, mirroring how §5.2 characterizes its
/// workloads (read ratio, value-size percentiles, distinct keys).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceStats {
    pub requests: usize,
    pub distinct_keys: usize,
    pub read_ratio: f64,
    pub median_value_bytes: u64,
    pub p99_value_bytes: u64,
    pub total_read_bytes: u64,
}

pub fn stats(records: &[TraceRecord]) -> TraceStats {
    let mut keys = std::collections::HashSet::new();
    let mut sizes: Vec<u64> = Vec::with_capacity(records.len());
    let mut reads = 0usize;
    let mut total_read_bytes = 0u64;
    for r in records {
        keys.insert(r.k);
        sizes.push(r.b);
        if r.op == 'r' {
            reads += 1;
            total_read_bytes += r.b;
        }
    }
    sizes.sort_unstable();
    let pct = |q: f64| -> u64 {
        if sizes.is_empty() {
            0
        } else {
            sizes[((sizes.len() - 1) as f64 * q) as usize]
        }
    };
    TraceStats {
        requests: records.len(),
        distinct_keys: keys.len(),
        read_ratio: if records.is_empty() {
            0.0
        } else {
            reads as f64 / records.len() as f64
        },
        median_value_bytes: pct(0.5),
        p99_value_bytes: pct(0.99),
        total_read_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvWorkloadConfig;

    fn sample_trace() -> Vec<TraceRecord> {
        let mut wl = KvWorkloadConfig::paper_synthetic(0.8, 512, 5).build();
        capture(&mut wl, 500)
    }

    #[test]
    fn jsonl_round_trips() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&trace, &mut buf).unwrap();
        let parsed = read_jsonl(&buf[..]).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn requests_round_trip_through_records() {
        let mut wl = KvWorkloadConfig::paper_synthetic(0.5, 100, 1).build();
        for _ in 0..50 {
            let req = wl.next_request();
            let rec = TraceRecord::from_request(&req);
            assert_eq!(rec.to_request().unwrap(), req);
        }
    }

    #[test]
    fn malformed_lines_report_position() {
        let input = b"{\"op\":\"r\",\"k\":1,\"b\":2}\n\nnot json\n";
        match read_jsonl(&input[..]) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn bad_ops_are_rejected() {
        let input = b"{\"op\":\"x\",\"k\":1,\"b\":2}\n";
        assert!(matches!(read_jsonl(&input[..]), Err(TraceError::BadOp('x'))));
    }

    #[test]
    fn stats_match_generator_parameters() {
        let trace = sample_trace();
        let st = stats(&trace);
        assert_eq!(st.requests, 500);
        assert!((st.read_ratio - 0.8).abs() < 0.08, "read ratio {}", st.read_ratio);
        assert_eq!(st.median_value_bytes, 512);
        assert!(st.distinct_keys > 50);
    }

    #[test]
    fn empty_trace_stats_are_zeroed() {
        let st = stats(&[]);
        assert_eq!(st.requests, 0);
        assert_eq!(st.read_ratio, 0.0);
        assert_eq!(st.median_value_bytes, 0);
    }
}
