//! O(1) Zipfian sampling (Gray et al., SIGMOD '94) with key scrambling.
//!
//! `sample` draws a *rank* in `[0, n)` where rank 0 is the hottest;
//! `sample_key` additionally scrambles ranks into key ids with a stable
//! 64-bit mix, so key ids carry no popularity information (hot keys are
//! spread uniformly over the keyspace, as in YCSB's "scrambled zipfian").

use cachekit::ring::splitmix64;
use rand::Rng;

/// Zipf(α) sampler over `n` items.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    alpha: f64,
    zeta_n: f64,
    theta_denom: f64, // 1 - alpha, cached
    eta: f64,
}

impl ZipfSampler {
    /// Build a sampler. `alpha` must be positive and ≠ 1 is handled via the
    /// generalized-harmonic formulation (α = 1 works too).
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "zipf over empty keyspace");
        assert!(alpha > 0.0, "alpha must be positive");
        let zeta_n = Self::zeta(n, alpha);
        let zeta_2 = Self::zeta(2.min(n), alpha);
        let theta_denom = 1.0 - alpha;
        let eta = if (theta_denom).abs() < 1e-12 {
            0.0 // unused in the α≈1 branch
        } else {
            (1.0 - (2.0 / n as f64).powf(theta_denom)) / (1.0 - zeta_2 / zeta_n)
        };
        ZipfSampler {
            n,
            alpha,
            zeta_n,
            theta_denom,
            eta,
        }
    }

    /// Generalized harmonic number H_{n,α}. O(n) once at construction; for
    /// the 100K–10M keyspaces here that is microseconds.
    fn zeta(n: u64, alpha: f64) -> f64 {
        (1..=n).map(|i| (i as f64).powf(-alpha)).sum()
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draw a rank in `[0, n)`; rank 0 is most popular.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.alpha) {
            return 1;
        }
        if self.theta_denom.abs() < 1e-12 {
            // α = 1: invert the harmonic CDF approximately.
            let rank = (self.n as f64).powf(u * self.zeta_n / self.zeta_n.max(1e-300));
            // fall through to the clamped generic formula below when odd
            let r = rank as u64;
            return r.min(self.n - 1);
        }
        let rank = (self.n as f64) * (self.eta * u - self.eta + 1.0).powf(1.0 / self.theta_denom);
        (rank as u64).min(self.n - 1)
    }

    /// Draw a scrambled key id in `[0, n)`.
    pub fn sample_key(&self, rng: &mut impl Rng) -> u64 {
        scramble(self.sample(rng), self.n)
    }

    /// The exact probability of a given rank (for analytic cross-checks).
    pub fn rank_probability(&self, rank: u64) -> f64 {
        ((rank + 1) as f64).powf(-self.alpha) / self.zeta_n
    }

    /// Access to ζ(2,α)/ζ(n,α) internals for tests.
    pub fn head_mass(&self, top: u64) -> f64 {
        (1..=top.min(self.n))
            .map(|i| (i as f64).powf(-self.alpha))
            .sum::<f64>()
            / self.zeta_n
    }
}

/// Bijective-ish scramble of a rank into a key id in `[0, n)`. (Hash then
/// mod; collisions merely permute popularity among keys, preserving the
/// overall popularity *distribution*, which is what the experiments need.)
pub fn scramble(rank: u64, n: u64) -> u64 {
    splitmix64(rank.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0x1234_5678)) % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(alpha: f64, n: u64, draws: usize) -> Vec<u64> {
        let z = ZipfSampler::new(n, alpha);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let counts = frequencies(1.2, 1000, 200_000);
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[100]);
    }

    #[test]
    fn empirical_matches_analytic_head_mass() {
        let n = 10_000u64;
        let z = ZipfSampler::new(n, 1.2);
        let counts = frequencies(1.2, n, 400_000);
        let head_total: u64 = counts[..100].iter().sum();
        let empirical = head_total as f64 / 400_000.0;
        let analytic = z.head_mass(100);
        assert!(
            (empirical - analytic).abs() < 0.02,
            "head mass: empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn alpha_controls_skew() {
        let steep = frequencies(1.4, 1000, 100_000);
        let flat = frequencies(0.6, 1000, 100_000);
        let head = |c: &[u64]| c[..10].iter().sum::<u64>() as f64 / 100_000.0;
        assert!(head(&steep) > head(&flat) + 0.2);
    }

    #[test]
    fn samples_stay_in_range() {
        for alpha in [0.5, 0.99, 1.0, 1.2, 2.0] {
            let z = ZipfSampler::new(100, alpha);
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..10_000 {
                assert!(z.sample(&mut rng) < 100);
                assert!(z.sample_key(&mut rng) < 100);
            }
        }
    }

    #[test]
    fn single_key_space_always_samples_zero() {
        let z = ZipfSampler::new(1, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn scramble_spreads_hot_ranks() {
        let n = 10_000;
        let hot: Vec<u64> = (0..10).map(|r| scramble(r, n)).collect();
        // Hot keys should not be clustered in id space.
        let min = *hot.iter().min().unwrap();
        let max = *hot.iter().max().unwrap();
        assert!(max - min > n / 4, "hot keys clustered: {hot:?}");
        // And scrambling is deterministic.
        assert_eq!(scramble(5, n), scramble(5, n));
    }

    #[test]
    fn rank_probabilities_normalize() {
        let z = ZipfSampler::new(500, 1.2);
        let total: f64 = (0..500).map(|r| z.rank_probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_seed_same_stream() {
        let z = ZipfSampler::new(1000, 1.2);
        let draw = |seed| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| z.sample_key(&mut rng)).collect()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }
}
