//! # workloads — trace generators for the cost study
//!
//! The paper evaluates on three workload families (§5.2); this crate
//! synthesizes all of them, deterministically from a seed:
//!
//! * [`kv`] — the synthetic workload: 100K keys, Zipf(α=1.2) popularity,
//!   read ratio swept 50–99%, value size swept 1 KB–1 MB.
//! * [`meta`] — a synthesizer matching the published statistics of the Meta
//!   / CacheLib traces: ≈30% writes, ≈10-byte median values with a heavy
//!   tail.
//! * [`twitter`] — Twitter-cluster-like parameters (230 B median, mixed
//!   read/write), used by ablations.
//! * [`sessions`] — the §2.3 session-state service: lifecycle-heavy,
//!   read-your-writes-critical traffic where staleness is a correctness
//!   bug (the consistent-cache motivation).
//! * [`unity`] — the Unity Catalog model: a hierarchical namespace
//!   (metastore → catalog → schema → table) with principals, privileges,
//!   constraints, columns and lineage; `getTable` expands to 8 SQL
//!   statements exactly as §5.2 describes, and the trace reproduces the
//!   Figure 3 distributions (≈23 KB median values, Zipfian table
//!   popularity, ≈93% reads).
//!
//! [`diurnal`] modulates any of them over simulated time (day/night
//! sinusoid plus explicit phase shifts) for the elastic-provisioning study,
//! [`tenants`] composes weighted multi-tenant KV mixes with working-set
//! churn and invalidation-storm schedules for the TTL control plane,
//! [`zipf`] provides the O(1) scrambled-Zipfian sampler underneath,
//! [`sizes`] the per-key deterministic value-size model, and [`trace`]
//! capture/replay so real production traces can drive the experiments.

pub mod diurnal;
pub mod kv;
pub mod meta;
pub mod sessions;
pub mod sizes;
pub mod tenants;
pub mod trace;
pub mod twitter;
pub mod unity;
pub mod zipf;

pub use diurnal::DiurnalSchedule;
pub use kv::{KvOp, KvRequest, KvWorkload, KvWorkloadConfig};
pub use tenants::{ChurnSchedule, StormSchedule, TenantMix, TenantPicker, TenantSpec};
pub use sessions::{SessionOp, SessionWorkload, SessionWorkloadConfig};
pub use trace::{TraceRecord, TraceStats};
pub use sizes::SizeDist;
pub use zipf::ZipfSampler;
