//! Twitter-cluster-style workload (Yang et al., TOS '21): median value
//! ≈230 B and mixed read/write patterns. Used by the ablation benches as a
//! third production-shaped point between Meta's tiny values and Unity
//! Catalog's large objects.

use crate::kv::KvWorkloadConfig;
use crate::sizes::SizeDist;

/// Size mixture with ≈230 B median and a moderate tail.
pub fn twitter_size_dist() -> SizeDist {
    SizeDist::Discrete(vec![
        (60, 0.25),
        (230, 0.40),
        (700, 0.20),
        (2_048, 0.10),
        (16_384, 0.05),
    ])
}

/// A representative Twitter-like cluster: skewed, moderately write-heavy.
pub fn twitter_workload(seed: u64) -> KvWorkloadConfig {
    KvWorkloadConfig {
        keys: 500_000,
        alpha: 1.0,
        read_ratio: 0.80,
        sizes: twitter_size_dist(),
        seed,
        churn_period: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_in_the_230b_regime() {
        let mut sizes: Vec<u64> = (0..20_000u64)
            .map(|k| twitter_size_dist().size_of(k, 3))
            .collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!((100..=700).contains(&median), "median {median}");
    }

    #[test]
    fn workload_builds_and_streams() {
        let reqs: Vec<_> = twitter_workload(1).build().take(100).collect();
        assert_eq!(reqs.len(), 100);
        assert!(reqs.iter().all(|r| r.key < 500_000));
    }
}
