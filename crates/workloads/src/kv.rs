//! Key-value request streams — the synthetic workload of §5.2.
//!
//! A [`KvWorkload`] is a deterministic iterator of [`KvRequest`]s: Zipfian
//! key choice, Bernoulli read/write choice, and per-key stable value sizes.
//! The paper's synthetic configuration is 100K keys, α = 1.2, read ratio
//! swept 50–99%, value size swept 1 KB–1 MB ([`KvWorkloadConfig::paper_synthetic`]).

use crate::sizes::SizeDist;
use crate::zipf::{scramble, ZipfSampler};
use cachekit::ring::splitmix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvOp {
    Read,
    Write,
}

/// One request against the key-value service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvRequest {
    pub op: KvOp,
    /// Key id in `[0, keys)`.
    pub key: u64,
    /// The value size associated with this key.
    pub value_bytes: u64,
}

/// Workload parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvWorkloadConfig {
    pub keys: u64,
    pub alpha: f64,
    /// Fraction of requests that are reads, in [0, 1].
    pub read_ratio: f64,
    pub sizes: SizeDist,
    pub seed: u64,
    /// Popularity churn: every `period` requests the rank→key mapping is
    /// re-scrambled, rotating the hot set — the "dashboards over the last T
    /// minutes" pattern from the paper's §2.2 motivation. `None` = the
    /// standard static popularity of the synthetic sweeps.
    pub churn_period: Option<u64>,
}

impl KvWorkloadConfig {
    /// §5.2's synthetic workload: 100K keys, Zipf(1.2), given read ratio and
    /// fixed value size.
    pub fn paper_synthetic(read_ratio: f64, value_bytes: u64, seed: u64) -> Self {
        KvWorkloadConfig {
            keys: 100_000,
            alpha: 1.2,
            read_ratio,
            sizes: SizeDist::Fixed(value_bytes),
            seed,
            churn_period: None,
        }
    }

    /// Enable popularity churn with the given period (in requests).
    pub fn with_churn(mut self, period: u64) -> Self {
        self.churn_period = Some(period.max(1));
        self
    }

    pub fn build(&self) -> KvWorkload {
        KvWorkload {
            zipf: ZipfSampler::new(self.keys, self.alpha),
            sizes: self.sizes.clone(),
            read_ratio: self.read_ratio.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(self.seed),
            seed: self.seed,
            churn_period: self.churn_period,
            emitted: 0,
            epoch: 0,
            epoch_override: None,
        }
    }

    /// The size of `key`'s value under this configuration.
    pub fn size_of(&self, key: u64) -> u64 {
        self.sizes.size_of(key, self.seed)
    }

    /// Mean value size (for capacity↔entries conversions).
    pub fn mean_value_bytes(&self) -> f64 {
        self.sizes.mean_over_keys(self.keys, self.seed)
    }
}

/// The request stream. Infinite; take as many as the experiment needs.
pub struct KvWorkload {
    zipf: ZipfSampler,
    sizes: SizeDist,
    read_ratio: f64,
    rng: StdRng,
    seed: u64,
    churn_period: Option<u64>,
    emitted: u64,
    epoch: u64,
    epoch_override: Option<u64>,
}

impl KvWorkload {
    /// The current churn epoch (0 when churn is disabled).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pin the churn epoch from outside — how a time-driven
    /// [`crate::tenants::ChurnSchedule`] rotates the hot set on the
    /// simulator's clock rather than a request count. Consumes no RNG
    /// draws, so flipping it mid-stream never perturbs the request
    /// sequence beyond the rank→key mapping it exists to change.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch_override = Some(epoch);
        self.epoch = epoch;
    }

    /// Override the read ratio mid-stream (invalidation storms). RNG-
    /// neutral: the Bernoulli draw consumes one draw regardless of the
    /// ratio, so the key sequence is untouched.
    pub fn set_read_ratio(&mut self, read_ratio: f64) {
        self.read_ratio = read_ratio.clamp(0.0, 1.0);
    }

    pub fn next_request(&mut self) -> KvRequest {
        if let Some(epoch) = self.epoch_override {
            self.epoch = epoch;
        } else if let Some(period) = self.churn_period {
            let epoch = self.emitted / period;
            self.epoch = epoch;
        }
        self.emitted += 1;
        let rank = self.zipf.sample(&mut self.rng);
        // Under churn, each epoch permutes rank→key differently, so a new
        // set of keys becomes hot while sizes (a key property) are stable.
        let key = if self.epoch == 0 {
            scramble(rank, self.zipf.n())
        } else {
            scramble(rank ^ splitmix64(self.epoch), self.zipf.n())
        };
        let op = if self.rng.gen_bool(self.read_ratio) {
            KvOp::Read
        } else {
            KvOp::Write
        };
        KvRequest {
            op,
            key,
            value_bytes: self.sizes.size_of(key, self.seed),
        }
    }
}

impl Iterator for KvWorkload {
    type Item = KvRequest;
    fn next(&mut self) -> Option<KvRequest> {
        Some(self.next_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<KvRequest> = KvWorkloadConfig::paper_synthetic(0.9, 1024, 5)
            .build()
            .take(50)
            .collect();
        let b: Vec<KvRequest> = KvWorkloadConfig::paper_synthetic(0.9, 1024, 5)
            .build()
            .take(50)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn read_ratio_is_respected() {
        let reqs: Vec<KvRequest> = KvWorkloadConfig::paper_synthetic(0.93, 1024, 1)
            .build()
            .take(20_000)
            .collect();
        let reads = reqs.iter().filter(|r| r.op == KvOp::Read).count();
        let ratio = reads as f64 / reqs.len() as f64;
        assert!((ratio - 0.93).abs() < 0.01, "read ratio {ratio}");
    }

    #[test]
    fn keys_are_skewed() {
        let reqs: Vec<KvRequest> = KvWorkloadConfig::paper_synthetic(1.0, 1024, 2)
            .build()
            .take(50_000)
            .collect();
        let mut counts = std::collections::HashMap::new();
        for r in &reqs {
            *counts.entry(r.key).or_insert(0u64) += 1;
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top100: u64 = freq.iter().take(100).sum();
        assert!(
            top100 as f64 / reqs.len() as f64 > 0.5,
            "α=1.2 should focus >50% of traffic on the hottest 100 keys"
        );
    }

    #[test]
    fn value_sizes_are_stable_per_key() {
        let cfg = KvWorkloadConfig {
            keys: 1000,
            alpha: 1.0,
            read_ratio: 0.5,
            sizes: SizeDist::Uniform { lo: 100, hi: 10_000 },
            seed: 9,
            churn_period: None,
        };
        let reqs: Vec<KvRequest> = cfg.build().take(10_000).collect();
        let mut seen = std::collections::HashMap::new();
        for r in reqs {
            let prev = seen.insert(r.key, r.value_bytes);
            if let Some(p) = prev {
                assert_eq!(p, r.value_bytes, "key {} changed size", r.key);
            }
            assert_eq!(r.value_bytes, cfg.size_of(r.key));
        }
    }

    #[test]
    fn churn_rotates_the_hot_set() {
        let cfg = KvWorkloadConfig::paper_synthetic(1.0, 100, 3).with_churn(20_000);
        let mut wl = cfg.build();
        let hot_keys = |wl: &mut KvWorkload, n: usize| -> std::collections::HashSet<u64> {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..n {
                *counts.entry(wl.next_request().key).or_insert(0u64) += 1;
            }
            let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
            v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            v.into_iter().take(50).map(|(k, _)| k).collect()
        };
        let epoch0 = hot_keys(&mut wl, 20_000);
        assert_eq!(wl.epoch(), 0);
        let epoch1 = hot_keys(&mut wl, 20_000);
        assert!(wl.epoch() >= 1);
        let overlap = epoch0.intersection(&epoch1).count();
        assert!(
            overlap < 10,
            "hot sets must rotate almost completely: overlap {overlap}/50"
        );
    }

    #[test]
    fn no_churn_keeps_hot_set_stable() {
        let cfg = KvWorkloadConfig::paper_synthetic(1.0, 100, 3);
        let mut wl = cfg.build();
        let hot = |wl: &mut KvWorkload, n: usize| -> std::collections::HashSet<u64> {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..n {
                *counts.entry(wl.next_request().key).or_insert(0u64) += 1;
            }
            let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
            v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            v.into_iter().take(50).map(|(k, _)| k).collect()
        };
        let a = hot(&mut wl, 20_000);
        let b = hot(&mut wl, 20_000);
        assert!(a.intersection(&b).count() > 35, "static popularity must persist");
    }

    #[test]
    fn extreme_read_ratios() {
        let all_reads: Vec<KvRequest> = KvWorkloadConfig::paper_synthetic(1.0, 10, 1)
            .build()
            .take(1000)
            .collect();
        assert!(all_reads.iter().all(|r| r.op == KvOp::Read));
        let all_writes: Vec<KvRequest> = KvWorkloadConfig::paper_synthetic(0.0, 10, 1)
            .build()
            .take(1000)
            .collect();
        assert!(all_writes.iter().all(|r| r.op == KvOp::Write));
    }
}
