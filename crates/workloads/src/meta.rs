//! Meta / CacheLib-style workload synthesizer.
//!
//! The paper uses the open-source Meta traces [CacheLib, OSDI '20]: ≈30%
//! writes and a median value size around 10 bytes with a long tail, over a
//! highly skewed key popularity. The raw traces are not redistributable
//! here, so this module synthesizes a stream matching those published
//! aggregates — the only properties the paper's cost results consume.

use crate::kv::KvWorkloadConfig;
use crate::sizes::SizeDist;

/// Keyspace used for the Meta-style runs.
pub const META_KEYS: u64 = 1_000_000;

/// Value-size mixture matching the published percentiles: tiny values
/// dominate (median ≈10 B), with a tail reaching tens of KB.
pub fn meta_size_dist() -> SizeDist {
    SizeDist::Discrete(vec![
        (4, 0.20),     // counters / flags
        (10, 0.35),    // median bucket
        (40, 0.20),
        (150, 0.12),
        (600, 0.08),
        (4_096, 0.04),
        (65_536, 0.01), // rare large objects
    ])
}

/// The Meta-style workload: 70% reads / 30% writes, skewed keys, tiny values.
pub fn meta_workload(seed: u64) -> KvWorkloadConfig {
    KvWorkloadConfig {
        keys: META_KEYS,
        alpha: 1.05,
        read_ratio: 0.70,
        sizes: meta_size_dist(),
        seed,
        churn_period: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvOp;

    #[test]
    fn read_write_mix_matches_published_stats() {
        let reqs: Vec<_> = meta_workload(1).build().take(50_000).collect();
        let writes = reqs.iter().filter(|r| r.op == KvOp::Write).count() as f64;
        let frac = writes / reqs.len() as f64;
        assert!((frac - 0.30).abs() < 0.01, "write fraction {frac}");
    }

    #[test]
    fn median_value_size_is_about_ten_bytes() {
        let mut sizes: Vec<u64> = (0..50_000u64)
            .map(|k| meta_size_dist().size_of(k, 1))
            .collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!(
            (4..=40).contains(&median),
            "median {median} not in the ~10B regime"
        );
        // tail exists
        assert!(*sizes.last().unwrap() >= 4_096);
    }

    #[test]
    fn mean_size_is_small_but_above_median() {
        let mean = meta_workload(2).mean_value_bytes();
        assert!(mean > 50.0 && mean < 2_000.0, "mean {mean}");
    }
}
