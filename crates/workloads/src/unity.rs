//! The Unity Catalog workload — rich application objects over an
//! entity-relationship schema.
//!
//! §5.2 of the paper describes the production service: a hierarchical
//! namespace (metastore → catalog → schema → table) with principals and
//! privileges, ≈93% reads at ~40K QPS, median value ≈23 KB, and `getTable`
//! as the dominant operation — which "translates to up to 8 SQL queries
//! directed at multiple tables in the database".
//!
//! This module provides:
//!
//! * [`unity_schema`] — the relational schema (8 entity tables),
//! * [`UnityDataset`] — a deterministic generative model of the entities:
//!   every derived property (which schema a table belongs to, how many
//!   columns/privileges/constraints it has, how large its property blobs
//!   are) is a pure function of `(scale, seed, table_id)`,
//! * [`UnityDataset::get_table_statements`] — the 8-statement read path,
//! * [`unity_kv_schema`] / denormalized rows — the **Unity Catalog-KV**
//!   variant of §5.4, where the whole object is one pre-joined row,
//! * [`UnityWorkload`] — the request trace (Zipfian table popularity,
//!   93% `getTable`, 7% property updates), reproducing Figure 3.
//!
//! One simplification, documented for reviewers: in production the app
//! reads statement 1 and extracts `schema_id`/`owner` from the result to
//! parameterize statements 2/3/8. Here those parameters come from the same
//! generative model that produced the stored rows, so they are identical to
//! what result-parsing would yield (a test asserts this); the *sequencing*
//! (8 dependent statements per read) and all sizes are preserved.

use crate::sizes::SizeDist;
use crate::zipf::ZipfSampler;
use cachekit::ring::splitmix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use storekit::schema::{Catalog, ColumnDef, ColumnType, TableSchema};
use storekit::value::Datum;

/// Scale knobs for the generated universe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnityScale {
    pub tables: u64,
    pub schemas: u64,
    pub catalogs: u64,
    pub principals: u64,
    /// Zipf α of table popularity (Figure 3b is Zipf-like).
    pub alpha: f64,
    /// Fraction of requests that are reads (`getTable`); §5.2 reports ≈93%.
    pub read_ratio: f64,
    pub seed: u64,
}

impl Default for UnityScale {
    fn default() -> Self {
        UnityScale {
            tables: 20_000,
            schemas: 800,
            catalogs: 40,
            principals: 2_000,
            alpha: 1.1,
            read_ratio: 0.93,
            seed: 42,
        }
    }
}

impl UnityScale {
    /// A small universe for unit tests.
    pub fn tiny(seed: u64) -> Self {
        UnityScale {
            tables: 200,
            schemas: 20,
            catalogs: 4,
            principals: 30,
            alpha: 1.1,
            read_ratio: 0.93,
            seed,
        }
    }
}

/// The relational schema of the governance service.
pub fn unity_schema() -> Catalog {
    let mut c = Catalog::new();
    let t = |name: &str, cols: Vec<ColumnDef>, pk: &str, idx: &[&str]| {
        TableSchema::new(name, cols, pk, idx).expect("static schema is valid")
    };
    c.add(t(
        "metastores",
        vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("name", ColumnType::Text),
        ],
        "id",
        &[],
    ));
    c.add(t(
        "catalogs",
        vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("metastore", ColumnType::Int),
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("owner", ColumnType::Int),
        ],
        "id",
        &["metastore"],
    ));
    c.add(t(
        "schemas",
        vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("catalog", ColumnType::Int),
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("owner", ColumnType::Int),
        ],
        "id",
        &["catalog"],
    ));
    c.add(t(
        "tables",
        vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("schema_id", ColumnType::Int),
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("owner", ColumnType::Int),
            ColumnDef::new("format", ColumnType::Text),
            ColumnDef::new("properties", ColumnType::Bytes),
        ],
        "id",
        &["schema_id"],
    ));
    c.add(t(
        "principals",
        vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("kind", ColumnType::Text),
        ],
        "id",
        &[],
    ));
    c.add(t(
        "privileges",
        vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("securable", ColumnType::Int),
            ColumnDef::new("grantee", ColumnType::Int),
            ColumnDef::new("privilege", ColumnType::Text),
        ],
        "id",
        &["securable"],
    ));
    c.add(t(
        "constraints",
        vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("table_ref", ColumnType::Int),
            ColumnDef::new("kind", ColumnType::Text),
            ColumnDef::new("definition", ColumnType::Bytes),
        ],
        "id",
        &["table_ref"],
    ));
    c.add(t(
        "columns_meta",
        vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("table_ref", ColumnType::Int),
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("dtype", ColumnType::Text),
            ColumnDef::new("comment", ColumnType::Bytes),
        ],
        "id",
        &["table_ref"],
    ));
    c.add(t(
        "lineage",
        vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("table_ref", ColumnType::Int),
            ColumnDef::new("upstream", ColumnType::Int),
            ColumnDef::new("kind", ColumnType::Text),
        ],
        "id",
        &["table_ref"],
    ));
    c
}

/// The denormalized schema for **Unity Catalog-KV** (§5.4): the entire
/// object pre-joined into one row.
pub fn unity_kv_schema() -> Catalog {
    let mut c = Catalog::new();
    c.add(
        TableSchema::new(
            "objects",
            vec![
                ColumnDef::new("k", ColumnType::Int),
                ColumnDef::new("v", ColumnType::Bytes),
            ],
            "k",
            &[],
        )
        .expect("static schema is valid"),
    );
    c
}

/// The deterministic generative model of the universe.
#[derive(Debug, Clone)]
pub struct UnityDataset {
    pub scale: UnityScale,
    props_dist: SizeDist,
    comment_dist: SizeDist,
    constraint_dist: SizeDist,
}

impl UnityDataset {
    pub fn new(scale: UnityScale) -> Self {
        UnityDataset {
            scale,
            // Tuned so the assembled object's median lands near the paper's
            // ≈23 KB with a heavy tail (asserted by a test).
            props_dist: SizeDist::LogNormal { median: 10_000, sigma: 1.1 },
            comment_dist: SizeDist::LogNormal { median: 400, sigma: 0.8 },
            constraint_dist: SizeDist::LogNormal { median: 900, sigma: 0.7 },
        }
    }

    fn h(&self, domain: u64, id: u64) -> u64 {
        splitmix64(id ^ splitmix64(domain ^ self.scale.seed.wrapping_mul(0x9E37)))
    }

    // --- structural relationships (all pure functions of table id) ---

    pub fn schema_of_table(&self, t: u64) -> u64 {
        self.h(1, t) % self.scale.schemas
    }

    pub fn catalog_of_schema(&self, s: u64) -> u64 {
        self.h(2, s) % self.scale.catalogs
    }

    pub fn owner_of_table(&self, t: u64) -> u64 {
        self.h(3, t) % self.scale.principals
    }

    pub fn columns_of_table(&self, t: u64) -> u64 {
        5 + self.h(4, t) % 25 // 5..=29 columns
    }

    pub fn constraints_of_table(&self, t: u64) -> u64 {
        self.h(5, t) % 4 // 0..=3
    }

    pub fn privileges_of_table(&self, t: u64) -> u64 {
        2 + self.h(6, t) % 8 // 2..=9
    }

    pub fn lineage_of_table(&self, t: u64) -> u64 {
        self.h(7, t) % 6 // 0..=5
    }

    /// The property-blob seed, bumped by updates: `generation` distinguishes
    /// rewritten blobs (size stays stable, content identity changes).
    pub fn properties_payload(&self, t: u64, generation: u64) -> Datum {
        Datum::Payload {
            len: self.props_dist.size_of(t, self.scale.seed ^ 0xA),
            seed: self.h(8, t) ^ generation,
        }
    }

    fn comment_payload(&self, t: u64, col: u64) -> Datum {
        Datum::Payload {
            len: self.comment_dist.size_of(t * 131 + col, self.scale.seed ^ 0xB),
            seed: self.h(9, t * 131 + col),
        }
    }

    fn constraint_payload(&self, t: u64, i: u64) -> Datum {
        Datum::Payload {
            len: self.constraint_dist.size_of(t * 17 + i, self.scale.seed ^ 0xC),
            seed: self.h(10, t * 17 + i),
        }
    }

    /// Composite ids for dependent entities, collision-free by construction.
    fn column_id(&self, t: u64, i: u64) -> i64 {
        (t * 64 + i) as i64
    }
    fn constraint_id(&self, t: u64, i: u64) -> i64 {
        (t * 8 + i) as i64
    }
    fn privilege_id(&self, t: u64, i: u64) -> i64 {
        (t * 16 + i) as i64
    }
    fn lineage_id(&self, t: u64, i: u64) -> i64 {
        (t * 8 + i) as i64
    }

    /// All seed rows for the relational flavor, as `(table, row values)`.
    /// Iterate lazily: the full default universe is ~700K rows.
    pub fn seed_rows(&self) -> impl Iterator<Item = (&'static str, Vec<Datum>)> + '_ {
        let scale = self.scale;
        let metastores = std::iter::once((
            "metastores",
            vec![Datum::Int(0), Datum::Text("prod".into())],
        ));
        let catalogs = (0..scale.catalogs).map(move |c| {
            (
                "catalogs",
                vec![
                    Datum::Int(c as i64),
                    Datum::Int(0),
                    Datum::Text(format!("catalog_{c}")),
                    Datum::Int((self.h(11, c) % scale.principals) as i64),
                ],
            )
        });
        let schemas = (0..scale.schemas).map(move |s| {
            (
                "schemas",
                vec![
                    Datum::Int(s as i64),
                    Datum::Int(self.catalog_of_schema(s) as i64),
                    Datum::Text(format!("schema_{s}")),
                    Datum::Int((self.h(12, s) % scale.principals) as i64),
                ],
            )
        });
        let principals = (0..scale.principals).map(move |p| {
            (
                "principals",
                vec![
                    Datum::Int(p as i64),
                    Datum::Text(format!("principal_{p}")),
                    Datum::Text(if p % 10 == 0 { "group" } else { "user" }.into()),
                ],
            )
        });
        let per_table = (0..scale.tables).flat_map(move |t| {
            let mut rows: Vec<(&'static str, Vec<Datum>)> = Vec::new();
            rows.push((
                "tables",
                vec![
                    Datum::Int(t as i64),
                    Datum::Int(self.schema_of_table(t) as i64),
                    Datum::Text(format!("table_{t}")),
                    Datum::Int(self.owner_of_table(t) as i64),
                    Datum::Text("delta".into()),
                    self.properties_payload(t, 0),
                ],
            ));
            for i in 0..self.columns_of_table(t) {
                rows.push((
                    "columns_meta",
                    vec![
                        Datum::Int(self.column_id(t, i)),
                        Datum::Int(t as i64),
                        Datum::Text(format!("col_{i}")),
                        Datum::Text("string".into()),
                        self.comment_payload(t, i),
                    ],
                ));
            }
            for i in 0..self.constraints_of_table(t) {
                rows.push((
                    "constraints",
                    vec![
                        Datum::Int(self.constraint_id(t, i)),
                        Datum::Int(t as i64),
                        Datum::Text("check".into()),
                        self.constraint_payload(t, i),
                    ],
                ));
            }
            for i in 0..self.privileges_of_table(t) {
                rows.push((
                    "privileges",
                    vec![
                        Datum::Int(self.privilege_id(t, i)),
                        Datum::Int(t as i64),
                        Datum::Int((self.h(13, t * 16 + i) % scale.principals) as i64),
                        Datum::Text("SELECT".into()),
                    ],
                ));
            }
            for i in 0..self.lineage_of_table(t) {
                rows.push((
                    "lineage",
                    vec![
                        Datum::Int(self.lineage_id(t, i)),
                        Datum::Int(t as i64),
                        Datum::Int((self.h(14, t * 8 + i) % scale.tables) as i64),
                        Datum::Text("upstream".into()),
                    ],
                ));
            }
            rows
        });
        metastores
            .chain(catalogs)
            .chain(schemas)
            .chain(principals)
            .chain(per_table)
    }

    /// The §5.2 read path: 8 dependent SQL statements for one `getTable`.
    pub fn get_table_statements(&self, t: u64) -> Vec<(&'static str, Vec<Datum>)> {
        let schema = self.schema_of_table(t);
        let catalog = self.catalog_of_schema(schema);
        let owner = self.owner_of_table(t);
        vec![
            ("SELECT * FROM tables WHERE id = ?", vec![Datum::Int(t as i64)]),
            ("SELECT * FROM schemas WHERE id = ?", vec![Datum::Int(schema as i64)]),
            ("SELECT * FROM catalogs WHERE id = ?", vec![Datum::Int(catalog as i64)]),
            ("SELECT * FROM privileges WHERE securable = ?", vec![Datum::Int(t as i64)]),
            ("SELECT * FROM constraints WHERE table_ref = ?", vec![Datum::Int(t as i64)]),
            ("SELECT * FROM columns_meta WHERE table_ref = ?", vec![Datum::Int(t as i64)]),
            ("SELECT * FROM lineage WHERE table_ref = ?", vec![Datum::Int(t as i64)]),
            ("SELECT * FROM principals WHERE id = ?", vec![Datum::Int(owner as i64)]),
        ]
    }

    /// The write path: rewrite the table's property blob (generation bump).
    pub fn update_table_statement(&self, t: u64, generation: u64) -> (&'static str, Vec<Datum>) {
        (
            "UPDATE tables SET properties = ? WHERE id = ?",
            vec![self.properties_payload(t, generation), Datum::Int(t as i64)],
        )
    }

    /// Logical size of the fully-assembled rich object for table `t` — the
    /// value cached by the object-caching architectures and the row size of
    /// the denormalized KV flavor.
    pub fn object_logical_bytes(&self, t: u64) -> u64 {
        let mut total = 0u64;
        // table row parts
        total += self.properties_payload(t, 0).encoded_size() + 120;
        for i in 0..self.columns_of_table(t) {
            total += self.comment_payload(t, i).encoded_size() + 60;
        }
        for i in 0..self.constraints_of_table(t) {
            total += self.constraint_payload(t, i).encoded_size() + 40;
        }
        total += self.privileges_of_table(t) * 80;
        total += self.lineage_of_table(t) * 70;
        total += 200; // schema/catalog/principal fragments
        total
    }

    /// Seed rows for the denormalized Unity Catalog-KV flavor.
    pub fn denorm_rows(&self) -> impl Iterator<Item = Vec<Datum>> + '_ {
        (0..self.scale.tables).map(move |t| {
            vec![
                Datum::Int(t as i64),
                Datum::Payload {
                    len: self.object_logical_bytes(t),
                    seed: self.h(15, t),
                },
            ]
        })
    }
}

/// One request against Unity Catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnityOp {
    GetTable,
    UpdateTable,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnityRequest {
    pub op: UnityOp,
    pub table: u64,
}

/// The deterministic request stream over the dataset.
pub struct UnityWorkload {
    zipf: ZipfSampler,
    read_ratio: f64,
    rng: StdRng,
}

impl UnityWorkload {
    pub fn new(scale: &UnityScale, stream_seed: u64) -> Self {
        UnityWorkload {
            zipf: ZipfSampler::new(scale.tables, scale.alpha),
            read_ratio: scale.read_ratio,
            rng: StdRng::seed_from_u64(stream_seed ^ scale.seed),
        }
    }
}

impl Iterator for UnityWorkload {
    type Item = UnityRequest;
    fn next(&mut self) -> Option<UnityRequest> {
        let table = self.zipf.sample_key(&mut self.rng);
        let op = if self.rng.gen_bool(self.read_ratio) {
            UnityOp::GetTable
        } else {
            UnityOp::UpdateTable
        };
        Some(UnityRequest { op, table })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storekit::sql::exec::MemStore;

    #[test]
    fn dataset_is_deterministic() {
        let a = UnityDataset::new(UnityScale::tiny(7));
        let b = UnityDataset::new(UnityScale::tiny(7));
        for t in 0..50 {
            assert_eq!(a.schema_of_table(t), b.schema_of_table(t));
            assert_eq!(a.object_logical_bytes(t), b.object_logical_bytes(t));
        }
        let c = UnityDataset::new(UnityScale::tiny(8));
        assert_ne!(
            (0..50).map(|t| a.object_logical_bytes(t)).collect::<Vec<_>>(),
            (0..50).map(|t| c.object_logical_bytes(t)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn object_sizes_match_figure_3a() {
        // Median ≈ 23 KB with a heavy tail (paper Figure 3a).
        let d = UnityDataset::new(UnityScale::default());
        let mut sizes: Vec<u64> = (0..5_000).map(|t| d.object_logical_bytes(t)).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!(
            (15_000..=35_000).contains(&median),
            "median object size {median} outside the ~23KB regime"
        );
        let p99 = sizes[(sizes.len() as f64 * 0.99) as usize];
        assert!(p99 > 3 * median, "p99 {p99} not heavy-tailed vs median {median}");
    }

    #[test]
    fn get_table_issues_eight_statements() {
        let d = UnityDataset::new(UnityScale::tiny(1));
        let stmts = d.get_table_statements(5);
        assert_eq!(stmts.len(), 8, "§5.2: getTable → up to 8 SQL queries");
        let tables: Vec<&str> = stmts.iter().map(|(sql, _)| *sql).collect();
        assert!(tables[0].contains("FROM tables"));
        assert!(tables[3].contains("FROM privileges"));
    }

    #[test]
    fn generated_rows_load_and_answer_get_table() {
        let d = UnityDataset::new(UnityScale::tiny(3));
        let mut store = MemStore::new(unity_schema());
        for (table, values) in d.seed_rows() {
            let placeholders = vec!["?"; values.len()].join(", ");
            let sql = format!("INSERT INTO {table} VALUES ({placeholders})");
            store.run(&sql, &values).unwrap();
        }
        // Every one of the 8 statements returns the rows the model predicts.
        for t in [0u64, 7, 123] {
            let stmts = d.get_table_statements(t);
            let results: Vec<_> = stmts
                .iter()
                .map(|(sql, params)| store.run(sql, params).unwrap())
                .collect();
            assert_eq!(results[0].rows.len(), 1, "table row");
            assert_eq!(results[1].rows.len(), 1, "schema row");
            assert_eq!(results[2].rows.len(), 1, "catalog row");
            assert_eq!(results[3].rows.len() as u64, d.privileges_of_table(t));
            assert_eq!(results[4].rows.len() as u64, d.constraints_of_table(t));
            assert_eq!(results[5].rows.len() as u64, d.columns_of_table(t));
            assert_eq!(results[6].rows.len() as u64, d.lineage_of_table(t));
            assert_eq!(results[7].rows.len(), 1, "owner row");
            // Parameter shortcut is sound: stmt 1's stored row carries
            // exactly the ids the model used for stmts 2 and 8.
            let table_row = &results[0].rows[0];
            assert_eq!(table_row.get(1), Some(&Datum::Int(d.schema_of_table(t) as i64)));
            assert_eq!(table_row.get(3), Some(&Datum::Int(d.owner_of_table(t) as i64)));
        }
    }

    #[test]
    fn privileges_join_principals_works_on_the_uc_schema() {
        // §5.5 notes that bypassing SQL "forfeits joins"; prove our engine
        // supports the natural UC join: privileges with grantee names.
        let d = UnityDataset::new(UnityScale::tiny(3));
        let mut store = MemStore::new(unity_schema());
        for (table, values) in d.seed_rows() {
            let placeholders = vec!["?"; values.len()].join(", ");
            let sql = format!("INSERT INTO {table} VALUES ({placeholders})");
            store.run(&sql, &values).unwrap();
        }
        let t = 11u64;
        let out = store
            .run(
                "SELECT privilege, name FROM privileges                  JOIN principals ON privileges.grantee = principals.id                  WHERE securable = ?",
                &[Datum::Int(t as i64)],
            )
            .unwrap();
        assert_eq!(out.rows.len() as u64, d.privileges_of_table(t));
        for row in &out.rows {
            assert_eq!(row.get(0), Some(&Datum::Text("SELECT".into())));
            assert!(row.get(1).unwrap().as_text().unwrap().starts_with("principal_"));
        }
        // Top-N privileges ordered by grantee id — ORDER BY + LIMIT on the
        // same schema.
        let out = store
            .run(
                "SELECT grantee FROM privileges WHERE securable = ? ORDER BY grantee DESC LIMIT 2",
                &[Datum::Int(t as i64)],
            )
            .unwrap();
        assert!(out.rows.len() <= 2);
        if out.rows.len() == 2 {
            assert!(out.rows[0].get(0).unwrap().as_int() >= out.rows[1].get(0).unwrap().as_int());
        }
    }

    #[test]
    fn trace_matches_read_ratio_and_skew() {
        let scale = UnityScale::default();
        let reqs: Vec<UnityRequest> = UnityWorkload::new(&scale, 1).take(30_000).collect();
        let reads = reqs.iter().filter(|r| r.op == UnityOp::GetTable).count() as f64;
        let ratio = reads / reqs.len() as f64;
        assert!((ratio - 0.93).abs() < 0.01, "read ratio {ratio}");

        let mut counts = std::collections::HashMap::new();
        for r in &reqs {
            *counts.entry(r.table).or_insert(0u64) += 1;
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top_frac = freq.iter().take(200).sum::<u64>() as f64 / reqs.len() as f64;
        assert!(top_frac > 0.4, "popularity not skewed enough: {top_frac}");
    }

    #[test]
    fn updates_change_payload_identity_but_not_size() {
        let d = UnityDataset::new(UnityScale::tiny(1));
        let before = d.properties_payload(3, 0);
        let after = d.properties_payload(3, 1);
        assert_ne!(before, after, "generation bump changes content identity");
        match (&before, &after) {
            (Datum::Payload { len: l1, .. }, Datum::Payload { len: l2, .. }) => {
                assert_eq!(l1, l2, "size is a stable property of the table");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn denorm_rows_cover_all_tables_with_object_sizes() {
        let d = UnityDataset::new(UnityScale::tiny(5));
        let rows: Vec<_> = d.denorm_rows().collect();
        assert_eq!(rows.len() as u64, d.scale.tables);
        match &rows[7][1] {
            Datum::Payload { len, .. } => assert_eq!(*len, d.object_logical_bytes(7)),
            _ => panic!(),
        }
    }
}
