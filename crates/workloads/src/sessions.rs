//! Session-state workload — the paper's second motivating service (§2.3).
//!
//! "A system in Databricks that lets customers schedule and execute SQL
//! queries on elastic compute clusters is tuned for fast responses but also
//! requires strongly consistent session state, as any inconsistency can
//! yield incorrect query behavior."
//!
//! The shape differs from the KV and rich-object traces in three ways that
//! matter for caching cost:
//!
//! * **lifecycle** — sessions are created, live through a burst of
//!   activity, and end (deletes are first-class, unlike the KV traces);
//! * **read-your-writes within a session** — every `Advance` is immediately
//!   followed by `Get`s that must observe it: *any* staleness is a
//!   correctness bug, not a freshness annoyance;
//! * **popularity is recency** — active sessions are hot; ended sessions
//!   are never touched again (no long-tailed re-reference).
//!
//! The generator maintains a pool of live sessions and emits a
//! deterministic stream of [`SessionOp`]s with a configurable op mix.

use crate::sizes::SizeDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One operation against the session service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOp {
    /// Start a session (write of initial state).
    Create { id: u64 },
    /// Read the session's current state (must be fresh: §2.3).
    Get { id: u64 },
    /// Advance the session's state machine (write of new state).
    Advance { id: u64, step: u64 },
    /// End the session (delete).
    End { id: u64 },
}

impl SessionOp {
    pub fn id(&self) -> u64 {
        match *self {
            SessionOp::Create { id }
            | SessionOp::Get { id }
            | SessionOp::Advance { id, .. }
            | SessionOp::End { id } => id,
        }
    }

    pub fn is_read(&self) -> bool {
        matches!(self, SessionOp::Get { .. })
    }
}

/// Workload parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionWorkloadConfig {
    /// Steady-state live-session pool size.
    pub live_sessions: usize,
    /// Op mix (weights; normalized internally): get, advance, end+create.
    pub get_weight: f64,
    pub advance_weight: f64,
    pub churn_weight: f64,
    /// Session state payload sizes.
    pub state_sizes: SizeDist,
    pub seed: u64,
}

impl Default for SessionWorkloadConfig {
    fn default() -> Self {
        SessionWorkloadConfig {
            live_sessions: 10_000,
            get_weight: 0.88,
            advance_weight: 0.10,
            churn_weight: 0.02,
            state_sizes: SizeDist::LogNormal { median: 4_096, sigma: 0.9 },
            seed: 42,
        }
    }
}

impl SessionWorkloadConfig {
    pub fn build(&self) -> SessionWorkload {
        let mut wl = SessionWorkload {
            live: (0..self.live_sessions as u64).collect(),
            steps: vec![0; self.live_sessions],
            next_id: self.live_sessions as u64,
            rng: StdRng::seed_from_u64(self.seed),
            cfg: self.clone(),
        };
        // Ensure at least one live session so Get/Advance always resolve.
        if wl.live.is_empty() {
            wl.live.push(0);
            wl.steps.push(0);
            wl.next_id = 1;
        }
        wl
    }

    /// State payload size of session `id`.
    pub fn state_bytes(&self, id: u64) -> u64 {
        self.state_sizes.size_of(id, self.seed)
    }
}

/// The op stream. Sessions are chosen uniformly from the live pool — the
/// recency skew comes from the pool being small relative to the id space.
pub struct SessionWorkload {
    live: Vec<u64>,
    steps: Vec<u64>,
    next_id: u64,
    rng: StdRng,
    cfg: SessionWorkloadConfig,
}

impl SessionWorkload {
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Total distinct sessions created so far (live + ended).
    pub fn created(&self) -> u64 {
        self.next_id
    }

    pub fn next_op(&mut self) -> SessionOp {
        let total = self.cfg.get_weight + self.cfg.advance_weight + self.cfg.churn_weight;
        let draw: f64 = self.rng.gen::<f64>() * total;
        let idx = self.rng.gen_range(0..self.live.len());
        if draw < self.cfg.get_weight {
            SessionOp::Get { id: self.live[idx] }
        } else if draw < self.cfg.get_weight + self.cfg.advance_weight {
            self.steps[idx] += 1;
            SessionOp::Advance {
                id: self.live[idx],
                step: self.steps[idx],
            }
        } else if self.rng.gen_bool(0.5) && self.live.len() > 1 {
            // End a session; a later draw will replace it.
            let id = self.live.swap_remove(idx);
            self.steps.swap_remove(idx);
            SessionOp::End { id }
        } else {
            let id = self.next_id;
            self.next_id += 1;
            self.live.push(id);
            self.steps.push(0);
            SessionOp::Create { id }
        }
    }
}

impl Iterator for SessionWorkload {
    type Item = SessionOp;
    fn next(&mut self) -> Option<SessionOp> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SessionWorkloadConfig {
        SessionWorkloadConfig {
            live_sessions: 100,
            ..Default::default()
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<SessionOp> = cfg().build().take(200).collect();
        let b: Vec<SessionOp> = cfg().build().take(200).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn op_mix_matches_weights() {
        let ops: Vec<SessionOp> = cfg().build().take(50_000).collect();
        let gets = ops.iter().filter(|o| o.is_read()).count() as f64;
        let ratio = gets / ops.len() as f64;
        assert!((ratio - 0.88).abs() < 0.02, "get ratio {ratio}");
    }

    #[test]
    fn lifecycle_invariants_hold() {
        let mut wl = cfg().build();
        let mut live: std::collections::HashSet<u64> = (0..100).collect();
        for _ in 0..20_000 {
            match wl.next_op() {
                SessionOp::Create { id } => {
                    assert!(live.insert(id), "created id {id} twice");
                }
                SessionOp::Get { id } | SessionOp::Advance { id, .. } => {
                    assert!(live.contains(&id), "op on dead session {id}");
                }
                SessionOp::End { id } => {
                    assert!(live.remove(&id), "ended dead session {id}");
                }
            }
            assert_eq!(wl.live_count(), live.len());
            assert!(wl.live_count() >= 1);
        }
        // Churn happened in both directions.
        assert!(wl.created() > 150, "no creates: {}", wl.created());
    }

    #[test]
    fn advance_steps_increase_per_session() {
        let mut wl = cfg().build();
        let mut last_step: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for _ in 0..20_000 {
            if let SessionOp::Advance { id, step } = wl.next_op() {
                let prev = last_step.insert(id, step).unwrap_or(0);
                assert!(step > prev, "session {id}: step {step} after {prev}");
            }
        }
    }

    #[test]
    fn state_sizes_are_stable_per_session() {
        let c = cfg();
        for id in [0u64, 5, 99, 12345] {
            assert_eq!(c.state_bytes(id), c.state_bytes(id));
        }
    }
}
