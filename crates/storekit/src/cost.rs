//! Calibrated CPU cost constants for the storage substrate.
//!
//! Each constant is the CPU time one operation charges to the pod that
//! performs it. The defaults are calibrated so the component *breakdowns*
//! match what the paper reports in §5.3 (e.g. "40–65% of database CPU goes
//! to connection management, query processing and execution planning") and
//! are cross-checked against the real tokio RPC stack in `netrpc` (see
//! `examples/live_remote_cache.rs`). Everything here is a config field —
//! the ablation benches sweep them to show which constants the conclusions
//! are sensitive to.

use serde::{Deserialize, Serialize};
use simnet::SimDuration;

/// CPU cost constants for SQL front-ends, storage nodes and the RPC fabric.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StorageCostConfig {
    // --- SQL front-end (TiDB analogue) ---
    /// Connection/session handling per statement.
    pub conn_handling_us: f64,
    /// Lexing + parsing per statement (plus a per-byte term for long SQL).
    pub sql_parse_us: f64,
    pub sql_parse_per_byte_ns: f64,
    /// Planning/optimization per statement.
    pub sql_plan_us: f64,
    /// Result-row post-processing at the front-end, per row.
    pub frontend_per_row_us: f64,
    /// Transaction-layer lease validation per (consistent) read statement.
    pub txn_lease_check_us: f64,

    // --- Storage node (TiKV analogue) ---
    /// Fixed cost of a point lookup served from the block cache.
    pub kv_point_lookup_us: f64,
    /// Per additional row visited during scans.
    pub kv_scan_per_row_us: f64,
    /// Fixed cost of applying one write to the KV engine.
    pub kv_write_us: f64,
    /// Per byte copied out of the KV engine (memtable/block-cache read path).
    pub kv_per_byte_ns: f64,
    /// CPU cost of reading one block from disk on a block-cache miss
    /// (syscall + checksum + decompression analogue).
    pub block_miss_us: f64,
    /// Added latency (not CPU) per block-cache miss.
    pub disk_read_latency_us: f64,

    // --- Raft replication ---
    /// Leader work per log entry: append, fsync batching share, send.
    pub raft_leader_append_us: f64,
    /// Follower work per log entry: receive, append, apply.
    pub raft_follower_apply_us: f64,
    /// Per byte of log entry replicated, charged per replica.
    pub raft_per_byte_ns: f64,

    // --- gRPC-analogue RPC between front-end and storage ---
    /// Fixed cost per message, charged on each side.
    pub rpc_fixed_us: f64,
    /// Per-byte (de)serialization + kernel copy cost, each side.
    pub rpc_per_byte_ns: f64,

    // --- Durability IO (WAL + snapshots on the SSD tier; only charged
    // when `DurabilityConfig.enabled`) ---
    /// Fixed cost of appending one record to the WAL.
    pub wal_append_us: f64,
    /// Per byte of WAL record appended.
    pub wal_append_per_byte_ns: f64,
    /// One fsync (group-commit flush) of the WAL.
    pub wal_fsync_us: f64,
    /// Per byte persisted by a snapshot.
    pub snapshot_per_byte_ns: f64,
    /// Per byte loaded from a snapshot during recovery.
    pub snapshot_load_per_byte_ns: f64,
    /// Fixed cost of replaying one WAL record during recovery.
    pub wal_replay_us: f64,
    /// Per byte replayed from the WAL during recovery.
    pub wal_replay_per_byte_ns: f64,
    /// First-byte latency of an SSD read (recovery seek).
    pub ssd_read_latency_us: f64,
}

impl Default for StorageCostConfig {
    fn default() -> Self {
        StorageCostConfig {
            conn_handling_us: 90.0,
            sql_parse_us: 110.0,
            sql_parse_per_byte_ns: 40.0,
            sql_plan_us: 140.0,
            frontend_per_row_us: 8.0,
            txn_lease_check_us: 25.0,

            kv_point_lookup_us: 45.0,
            kv_scan_per_row_us: 4.0,
            kv_write_us: 60.0,
            kv_per_byte_ns: 0.2,
            block_miss_us: 15.0,
            disk_read_latency_us: 60.0,

            raft_leader_append_us: 60.0,
            raft_follower_apply_us: 30.0,
            raft_per_byte_ns: 0.5,

            rpc_fixed_us: 30.0,
            rpc_per_byte_ns: 0.9,

            wal_append_us: 6.0,
            wal_append_per_byte_ns: 0.3,
            wal_fsync_us: 110.0,
            snapshot_per_byte_ns: 0.15,
            snapshot_load_per_byte_ns: 0.12,
            wal_replay_us: 12.0,
            wal_replay_per_byte_ns: 0.4,
            ssd_read_latency_us: 80.0,
        }
    }
}

impl StorageCostConfig {
    /// Front-end cost of parsing+planning one statement of `sql_bytes`.
    pub fn parse_plan_cost(&self, sql_bytes: usize) -> SimDuration {
        SimDuration::from_micros_f64(
            self.conn_handling_us
                + self.sql_parse_us
                + self.sql_plan_us
                + self.sql_parse_per_byte_ns * sql_bytes as f64 / 1e3,
        )
    }

    /// One side of an RPC carrying `bytes`.
    pub fn rpc_side_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros_f64(self.rpc_fixed_us + self.rpc_per_byte_ns * bytes as f64 / 1e3)
    }

    /// KV read cost: fixed lookup + per-byte copy + extra scanned rows.
    pub fn kv_read_cost(&self, bytes: u64, rows_scanned: u64) -> SimDuration {
        SimDuration::from_micros_f64(
            self.kv_point_lookup_us
                + self.kv_per_byte_ns * bytes as f64 / 1e3
                + self.kv_scan_per_row_us * rows_scanned.saturating_sub(1) as f64,
        )
    }

    /// Leader-side replication cost for one entry of `bytes`.
    pub fn raft_leader_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros_f64(
            self.raft_leader_append_us + self.raft_per_byte_ns * bytes as f64 / 1e3,
        )
    }

    /// Follower-side replication cost for one entry of `bytes`.
    pub fn raft_follower_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros_f64(
            self.raft_follower_apply_us + self.raft_per_byte_ns * bytes as f64 / 1e3,
        )
    }

    /// Appending one WAL record of `bytes` (excluding any fsync).
    pub fn wal_append_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros_f64(
            self.wal_append_us + self.wal_append_per_byte_ns * bytes as f64 / 1e3,
        )
    }

    /// One group-commit fsync of the WAL.
    pub fn wal_fsync_cost(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.wal_fsync_us)
    }

    /// Persisting a snapshot of `bytes`.
    pub fn snapshot_write_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros_f64(self.snapshot_per_byte_ns * bytes as f64 / 1e3)
    }

    /// Loading a snapshot of `bytes` during recovery.
    pub fn snapshot_load_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros_f64(self.snapshot_load_per_byte_ns * bytes as f64 / 1e3)
    }

    /// Replaying one WAL record of `bytes` during recovery.
    pub fn wal_replay_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros_f64(
            self.wal_replay_us + self.wal_replay_per_byte_ns * bytes as f64 / 1e3,
        )
    }

    /// First-byte SSD latency paid once per recovery.
    pub fn ssd_seek_latency(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.ssd_read_latency_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plan_cost_includes_fixed_overheads() {
        let c = StorageCostConfig::default();
        let base = c.parse_plan_cost(0);
        // conn 90 + parse 110 + plan 140 = 340 µs
        assert_eq!(base.as_micros(), 340);
        assert!(c.parse_plan_cost(1000) > base);
    }

    #[test]
    fn rpc_cost_scales_with_bytes() {
        let c = StorageCostConfig::default();
        let small = c.rpc_side_cost(100);
        let big = c.rpc_side_cost(1_000_000);
        assert!(big > small);
        // 1 MB at 0.9 ns/B = 900 µs + 30 µs fixed
        assert_eq!(big.as_micros(), 930);
    }

    #[test]
    fn kv_read_charges_scan_rows_beyond_first() {
        let c = StorageCostConfig::default();
        let one = c.kv_read_cost(100, 1);
        let ten = c.kv_read_cost(100, 10);
        let extra = ten.as_micros_f64() - one.as_micros_f64();
        assert!((extra - 9.0 * c.kv_scan_per_row_us).abs() < 0.01);
    }

    #[test]
    fn raft_costs_are_charged_per_replica_side() {
        let c = StorageCostConfig::default();
        assert!(c.raft_leader_cost(128) > c.raft_follower_cost(128));
        assert!(c.raft_follower_cost(1 << 20) > c.raft_follower_cost(0));
    }

    #[test]
    fn durability_io_costs_scale_with_bytes() {
        let c = StorageCostConfig::default();
        assert!(c.wal_append_cost(4096) > c.wal_append_cost(0));
        assert!(c.wal_replay_cost(4096) > c.wal_replay_cost(0));
        assert!(c.snapshot_write_cost(1 << 20) > SimDuration::ZERO);
        assert_eq!(c.snapshot_write_cost(0), SimDuration::ZERO);
        // fsync dominates a small append — the reason group commit pays.
        assert!(c.wal_fsync_cost() > c.wal_append_cost(64) * 4);
        assert_eq!(c.ssd_seek_latency().as_micros(), 80);
    }

    #[test]
    fn defaults_put_fixed_sql_overhead_in_papers_band() {
        // §5.3: 40–65% of DB CPU is connection/parse/plan for small point
        // reads. For a 60-byte statement reading a 1 KB row:
        let c = StorageCostConfig::default();
        let frontend = c.parse_plan_cost(60).as_micros_f64() + c.txn_lease_check_us;
        let storage = c.kv_read_cost(1024, 1).as_micros_f64()
            + c.rpc_side_cost(1024).as_micros_f64() * 2.0;
        let frac = frontend / (frontend + storage);
        assert!(
            (0.40..=0.85).contains(&frac),
            "fixed-overhead fraction {frac} outside plausible band"
        );
    }
}
