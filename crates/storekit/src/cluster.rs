//! The deployed database: SQL front-ends + replicated storage pods.
//!
//! [`SqlCluster`] mirrors the paper's TiDB deployment (§5.1): stateless SQL
//! front-end pods that parse/plan/drive queries and storage pods that hold
//! Raft-replicated regions of MVCC data behind per-pod block caches. Every
//! query charges CPU to the pods that did the work, with categories mapping
//! onto the paper's §5.3 breakdown, and returns a [`QueryReceipt`] carrying
//! rows, MVCC versions, bytes, latency and counters.
//!
//! The read path (and therefore the §5.5 version-check path) is:
//! front-end parse+plan → transaction-layer lease validation → RPC to the
//! region leader → block-cache/KV row fetch → full row shipped back →
//! front-end projection. A version check runs the *whole* path and returns
//! 8 bytes — which is exactly why it erases the cache's savings.

use crate::block::{BlockCache, BlockConfig};
use crate::cost::StorageCostConfig;
use crate::durability::{DurabilityConfig, DurabilityStats, DurableStore};
use crate::error::{StoreError, StoreResult};
use crate::kv::{index_prefix, record_key, record_key_into, record_prefix, KvEngine};
use crate::raft::{LogEntry, RaftGroup};
use crate::row::Row;
use crate::schema::Catalog;
use crate::sql::exec::{execute, ExecStats, RowStore, WriteBatch};
use crate::sql::parser::parse;
use crate::sql::plan::{plan, PhysicalPlan};
use crate::value::Datum;
use cachekit::ring::stable_hash;
use simnet::net::LinkSpec;
use simnet::{CpuCategory, CpuMeter, SimDuration, SimTime};

/// Deployment shape and cost knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// SQL front-end pod count (TiDB pods; paper uses 3).
    pub frontends: usize,
    /// Storage pod count (TiKV pods; paper uses 3).
    pub storage_nodes: usize,
    /// Replication factor (3 in the paper's TiKV).
    pub replicas: usize,
    /// Region (raft group) count; more regions spread leadership.
    pub regions: u64,
    /// Block-cache DRAM per storage pod — the paper's `s_D` knob.
    pub block_cache_bytes: u64,
    /// Non-cache memory provisioned per storage pod (engine overheads); the
    /// paper provisions 15 GB/pod total.
    pub base_mem_bytes: u64,
    /// Memory provisioned per SQL front-end pod (TiDB pods are mostly
    /// stateless but carry session/plan caches).
    pub frontend_mem_bytes: u64,
    /// Leader lease duration.
    pub lease: SimDuration,
    /// Front-end ↔ storage link.
    pub link: LinkSpec,
    pub cost: StorageCostConfig,
    pub block: BlockConfig,
    /// WAL + snapshot durability for storage pods. Off by default — pods
    /// are implicitly stable and crashes only toggle raft liveness.
    pub durability: DurabilityConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            frontends: 3,
            storage_nodes: 3,
            replicas: 3,
            regions: 12,
            block_cache_bytes: 1 << 30, // 1 GiB per pod
            base_mem_bytes: 2 << 30,
            frontend_mem_bytes: 4 << 30,
            lease: SimDuration::from_secs(10),
            link: LinkSpec {
                base_latency: SimDuration::from_micros(25),
                bandwidth_bytes_per_sec: 1_250_000_000,
            },
            cost: StorageCostConfig::default(),
            block: BlockConfig::default(),
            durability: DurabilityConfig::default(),
        }
    }
}

/// One storage pod: CPU meter, KV engine, block cache.
#[derive(Debug)]
pub struct StoragePod {
    pub cpu: CpuMeter,
    pub kv: KvEngine,
    pub block_cache: BlockCache,
}

/// One SQL front-end pod.
#[derive(Debug, Default)]
pub struct FrontendPod {
    pub cpu: CpuMeter,
}

/// What one statement cost and returned.
#[derive(Debug, Clone, Default)]
pub struct QueryReceipt {
    pub rows: Vec<Row>,
    /// MVCC version per returned row.
    pub versions: Vec<u64>,
    /// Commit version if this was a write.
    pub write_version: Option<u64>,
    /// CPU charged to front-end pods by this statement.
    pub frontend_cpu: SimDuration,
    /// CPU charged to storage pods by this statement.
    pub storage_cpu: SimDuration,
    /// End-to-end latency inside the database (front-end arrival → response
    /// ready). The caller adds its own hop to the front-end.
    pub latency: SimDuration,
    /// Logical bytes of the SQL text + parameters.
    pub request_bytes: u64,
    /// Logical bytes of the returned rows.
    pub response_bytes: u64,
    /// Front-end ↔ storage messages.
    pub storage_rpcs: u64,
    pub block_hits: u64,
    pub block_misses: u64,
    pub stats: ExecStats,
}

/// A write that has been prepared (front-end work done, batches built) but
/// not yet committed — used by the Figure 8 delayed-writes scenario.
#[derive(Debug)]
pub struct DelayedWrite {
    batch: WriteBatch,
    receipt: QueryReceipt,
}

/// The deployed cluster.
pub struct SqlCluster {
    pub config: ClusterConfig,
    pub catalog: Catalog,
    pub frontends: Vec<FrontendPod>,
    pub storages: Vec<StoragePod>,
    regions: Vec<RaftGroup>,
    /// Per-pod durable state (WAL + snapshot); inert when durability is off.
    durable: Vec<DurableStore>,
    next_frontend: usize,
    /// Cluster-wide commit version counter (the TSO analogue).
    tso: u64,
    /// Front-end plan cache: parsing and planning are pure functions of
    /// `(catalog, sql)`, and the catalog is fixed at construction (DDL is
    /// test-only), so repeated statement shapes skip the parser on the wall
    /// clock. Simulated CPU is untouched — cached executions still charge
    /// the full `parse_plan_cost`, exactly like TiDB bills a plan-cache hit
    /// to its front-end in the paper's deployment.
    plan_cache: std::collections::HashMap<String, PhysicalPlan>,
}

/// Distinct statement shapes worth remembering per cluster; beyond this the
/// cache stops filling (it never evicts — the workloads that matter reuse a
/// handful of shapes).
const PLAN_CACHE_CAP: usize = 256;

/// A statement parsed + planned once against this cluster's (immutable)
/// catalog, for [`SqlCluster::execute_cached`]. Charges stay those of the
/// original text — only the wall-clock parser work is skipped.
#[derive(Debug, Clone)]
pub struct CachedStatement {
    physical: PhysicalPlan,
    sql_bytes: usize,
}

impl SqlCluster {
    pub fn new(catalog: Catalog, config: ClusterConfig) -> Self {
        assert!(config.frontends > 0 && config.storage_nodes > 0);
        let replicas = config.replicas.min(config.storage_nodes).max(1);
        let storages = (0..config.storage_nodes)
            .map(|_| StoragePod {
                cpu: CpuMeter::new(),
                kv: KvEngine::new(),
                block_cache: BlockCache::new(config.block_cache_bytes, config.block),
            })
            .collect();
        let regions = (0..config.regions.max(1))
            .map(|r| {
                // Spread replica sets and leadership round-robin over pods.
                let members: Vec<usize> = (0..replicas)
                    .map(|i| ((r as usize) + i) % config.storage_nodes)
                    .collect();
                RaftGroup::new(r, members, SimTime::ZERO, config.lease)
            })
            .collect();
        let region_count = config.regions.max(1) as usize;
        let durable = (0..config.storage_nodes)
            .map(|_| DurableStore::new(config.durability, region_count))
            .collect();
        SqlCluster {
            catalog,
            frontends: (0..config.frontends).map(|_| FrontendPod::default()).collect(),
            storages,
            regions,
            durable,
            next_frontend: 0,
            tso: 0,
            plan_cache: std::collections::HashMap::new(),
            config,
        }
    }

    /// Which region a raw key belongs to.
    fn region_of(&self, key: &[u8]) -> usize {
        (stable_hash(key) % self.regions.len() as u64) as usize
    }

    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    pub fn region(&self, idx: usize) -> &RaftGroup {
        &self.regions[idx]
    }

    pub fn region_mut(&mut self, idx: usize) -> &mut RaftGroup {
        &mut self.regions[idx]
    }

    /// Memory provisioned per storage pod (block cache + base).
    pub fn storage_mem_bytes_per_node(&self) -> u64 {
        self.config.block_cache_bytes + self.config.base_mem_bytes
    }

    /// Live logical bytes across one copy of the data (disk billing basis).
    pub fn primary_data_bytes(&self) -> u64 {
        // Every pod holds a replica subset; sum one pod set / replicas.
        let total: u64 = self.storages.iter().map(|s| s.kv.bytes_written()).sum();
        total / self.config.replicas.max(1) as u64
    }

    /// Reset all CPU meters and cache statistics (between warmup and
    /// measurement).
    pub fn reset_metrics(&mut self) {
        for f in &mut self.frontends {
            f.cpu.reset();
        }
        for s in &mut self.storages {
            s.cpu.reset();
            s.block_cache.reset_stats();
        }
        for d in &mut self.durable {
            d.stats.reset();
        }
    }

    /// Renew leases / catch up stragglers on every region (heartbeat tick).
    pub fn tick(&mut self, now: SimTime) {
        for r in 0..self.regions.len() {
            let ops = self.regions[r].tick(now);
            for op in ops {
                let entry = self.regions[r].entry(op.index).clone();
                let pod = self.regions[r].replicas[op.slot];
                for m in &entry.batch.mutations {
                    self.storages[pod]
                        .kv
                        .put_at(m.key.clone(), m.value.clone(), entry.version);
                }
                let cost = self.config.cost.raft_follower_cost(entry.bytes);
                self.storages[pod].cpu.charge(CpuCategory::Replication, cost);
                self.durable_apply(pod, r, &entry);
            }
        }
    }

    /// Mirror one applied raft entry into the pod's durable store: WAL
    /// append (+ group-commit fsync when due, + snapshot when the cadence
    /// fires). Charges the pod's meter and returns the total CPU so write
    /// paths can also bill it to the statement's receipt. No-op (and zero)
    /// with durability off.
    fn durable_apply(&mut self, pod: usize, region: usize, entry: &LogEntry) -> SimDuration {
        if !self.config.durability.enabled() {
            return SimDuration::ZERO;
        }
        let writes: Vec<(Vec<u8>, Option<Vec<u8>>)> = entry
            .batch
            .mutations
            .iter()
            .map(|m| (m.key.clone(), m.value.clone()))
            .collect();
        let wal_cpu =
            self.durable[pod].on_apply(region, entry.version, writes, entry.bytes, &self.config.cost);
        self.storages[pod].cpu.charge(CpuCategory::Replication, wal_cpu);
        let mut total = wal_cpu;
        if let Some(snap_cpu) =
            self.durable[pod].maybe_snapshot(&self.storages[pod].kv, &self.config.cost)
        {
            self.storages[pod].cpu.charge(CpuCategory::KvExec, snap_cpu);
            total += snap_cpu;
        }
        total
    }

    /// Simulated machine crash of one storage pod (durability on): all
    /// volatile state — memtables, block cache, un-fsynced WAL tail — is
    /// discarded and every region replica hosted on the pod goes down.
    /// Bring it back with [`SqlCluster::recover_pod`].
    pub fn crash_pod(&mut self, pod: usize) {
        assert!(
            self.config.durability.enabled(),
            "crash_pod models durable-storage crashes; enable durability"
        );
        let lost_blocks = self.storages[pod].block_cache.resident_blocks() as u64;
        self.durable[pod].stats.cold_refill_cpu_us +=
            (self.config.cost.block_miss_us * lost_blocks as f64) as u64;
        self.storages[pod].block_cache.wipe();
        self.storages[pod].kv = KvEngine::new();
        for region in self.regions.iter_mut() {
            if let Some(slot) = region.replicas.iter().position(|&p| p == pod) {
                region.crash(slot);
            }
        }
    }

    /// Recover a crashed pod: load its snapshot, replay the synced WAL
    /// prefix, rejoin each hosted region claiming exactly the durable
    /// prefix, re-elect leaders for regions the crash left leaderless, and
    /// let the quorum re-replicate the lost tail. Returns the simulated
    /// recovery wall time (SSD seek + snapshot load + WAL replay).
    pub fn recover_pod(&mut self, pod: usize, now: SimTime) -> SimDuration {
        assert!(
            self.config.durability.enabled(),
            "recover_pod models durable-storage recovery; enable durability"
        );
        let outcome = self.durable[pod].crash_and_recover(&self.config.cost);
        self.storages[pod].kv = outcome.kv;
        self.storages[pod].cpu.charge(CpuCategory::KvExec, outcome.replay_cpu);
        for (r, region) in self.regions.iter_mut().enumerate() {
            if let Some(slot) = region.replicas.iter().position(|&p| p == pod) {
                region.restart_recovered(slot, outcome.durable_applied[r]);
            }
        }
        for region in self.regions.iter_mut() {
            if region.leader().is_err() {
                let _ = region.elect(now);
            }
        }
        // Quorum catch-up re-applies (and re-WALs) everything beyond the
        // recovered prefix.
        self.tick(now);
        outcome.recovery_time
    }

    pub fn durability_enabled(&self) -> bool {
        self.config.durability.enabled()
    }

    /// Durability counters merged across pods.
    pub fn durability_stats(&self) -> DurabilityStats {
        let mut s = DurabilityStats::default();
        for d in &self.durable {
            s.merge(&d.stats);
        }
        s
    }

    /// Bytes resident on the SSD tier across pods (snapshots + WALs) — the
    /// basis for $/GB SSD billing.
    pub fn ssd_resident_bytes(&self) -> u64 {
        self.durable.iter().map(|d| d.ssd_resident_bytes()).sum()
    }

    /// Load rows directly into the storage tier, bypassing the SQL path and
    /// CPU accounting — the "restore from backup" primitive experiments use
    /// to seed datasets. Rows are validated, indexed and replicated exactly
    /// as SQL inserts would be. Returns the number of rows loaded.
    pub fn bulk_load<I>(&mut self, table: &str, rows: I) -> StoreResult<usize>
    where
        I: IntoIterator<Item = Vec<Datum>>,
    {
        let schema = self.catalog.get(table)?.clone();
        let mut count = 0usize;
        for values in rows {
            let row = crate::row::Row(values);
            schema.validate(&row)?;
            let pk = schema.pk_of(&row).clone();
            self.tso += 1;
            let version = self.tso;
            let record = record_key(table, &pk);
            let encoded = row.encode();
            let mut keys: Vec<(Vec<u8>, Option<Vec<u8>>)> =
                vec![(record.clone(), Some(encoded))];
            for &col in &schema.indexes {
                let ik = crate::kv::index_key(
                    table,
                    col,
                    row.get(col).unwrap_or(&Datum::Null),
                    &pk,
                );
                keys.push((ik, Some(record.clone())));
            }
            for (key, value) in keys {
                let region = self.region_of(&key);
                let members = self.regions[region].replicas.clone();
                for pod in members {
                    self.storages[pod].kv.put_at(key.clone(), value.clone(), version);
                }
            }
            count += 1;
        }
        // A restore-from-backup lands durable: snapshot each pod so the
        // loaded dataset survives crashes without replaying a giant WAL.
        // Like the load itself, this charges no CPU.
        if self.config.durability.enabled() {
            for pod in 0..self.storages.len() {
                self.durable[pod].snapshot_now(&self.storages[pod].kv, &self.config.cost);
            }
        }
        Ok(count)
    }

    /// Execute one SQL statement. `now` is the simulation time of arrival at
    /// the front-end.
    pub fn execute(
        &mut self,
        sql: &str,
        params: &[Datum],
        now: SimTime,
    ) -> StoreResult<QueryReceipt> {
        // Plan-cache hit: lift the entry out, run it, put it back — no
        // clone, no allocation, identical receipts (the plan is a pure
        // function of the immutable catalog and the SQL text).
        if let Some((sql_owned, physical)) = self.plan_cache.remove_entry(sql) {
            let out = self.execute_plan(&physical, sql.len(), params, now);
            self.plan_cache.insert(sql_owned, physical);
            return out;
        }
        let stmt = parse(sql)?;
        let physical = plan(&self.catalog, &stmt)?;
        let out = self.execute_plan(&physical, sql.len(), params, now);
        if self.plan_cache.len() < PLAN_CACHE_CAP {
            self.plan_cache.insert(sql.to_string(), physical);
        }
        out
    }

    /// Execute a pre-planned statement (plan-cache ablation path: front-end
    /// parse/plan CPU is skipped, only connection handling is charged).
    pub fn execute_prepared(
        &mut self,
        physical: &PhysicalPlan,
        params: &[Datum],
        now: SimTime,
    ) -> StoreResult<QueryReceipt> {
        let mut receipt = self.frontend_admission(0, true);
        self.run_plan(physical, params, now, &mut receipt)?;
        Ok(receipt)
    }

    /// Plan a statement for later `execute_prepared` calls.
    pub fn prepare(&self, sql: &str) -> StoreResult<PhysicalPlan> {
        plan(&self.catalog, &parse(sql)?)
    }

    /// Parse + plan a statement once for repeated [`execute_cached`] calls.
    /// Unlike [`prepare`]/[`execute_prepared`] (the plan-cache *ablation*,
    /// which charges only connection handling), a cached statement is a pure
    /// wall-clock optimization: execution charges the full
    /// `parse_plan_cost` of the original text, byte-identical to
    /// [`execute`].
    ///
    /// [`prepare`]: SqlCluster::prepare
    /// [`execute_prepared`]: SqlCluster::execute_prepared
    /// [`execute_cached`]: SqlCluster::execute_cached
    /// [`execute`]: SqlCluster::execute
    pub fn prepare_cached(&self, sql: &str) -> StoreResult<CachedStatement> {
        Ok(CachedStatement {
            physical: plan(&self.catalog, &parse(sql)?)?,
            sql_bytes: sql.len(),
        })
    }

    /// Execute a [`prepare_cached`] statement — receipts and CPU charges
    /// are exactly those of `execute` on the original SQL text.
    ///
    /// [`prepare_cached`]: SqlCluster::prepare_cached
    pub fn execute_cached(
        &mut self,
        stmt: &CachedStatement,
        params: &[Datum],
        now: SimTime,
    ) -> StoreResult<QueryReceipt> {
        self.execute_plan(&stmt.physical, stmt.sql_bytes, params, now)
    }

    fn frontend_admission(&mut self, sql_bytes: usize, prepared: bool) -> QueryReceipt {
        let fe = self.next_frontend % self.frontends.len();
        self.next_frontend = self.next_frontend.wrapping_add(1);
        let cost = if prepared {
            SimDuration::from_micros_f64(self.config.cost.conn_handling_us)
        } else {
            self.config.cost.parse_plan_cost(sql_bytes)
        };
        self.frontends[fe].cpu.charge(CpuCategory::SqlFrontend, cost);
        QueryReceipt {
            frontend_cpu: cost,
            latency: cost,
            request_bytes: sql_bytes as u64,
            ..Default::default()
        }
    }

    fn execute_plan(
        &mut self,
        physical: &PhysicalPlan,
        sql_bytes: usize,
        params: &[Datum],
        now: SimTime,
    ) -> StoreResult<QueryReceipt> {
        let _span = simnet::prof_span!("sql_execute_plan");
        let mut receipt = self.frontend_admission(sql_bytes, false);
        receipt.request_bytes += params.iter().map(|d| d.encoded_size()).sum::<u64>();
        self.run_plan(physical, params, now, &mut receipt)?;
        Ok(receipt)
    }

    fn run_plan(
        &mut self,
        physical: &PhysicalPlan,
        params: &[Datum],
        now: SimTime,
        receipt: &mut QueryReceipt,
    ) -> StoreResult<()> {
        let fe = (self.next_frontend.wrapping_sub(1)) % self.frontends.len();

        // Transaction layer: consistent reads validate the leader lease.
        if physical.is_read() {
            let lease_cost = SimDuration::from_micros_f64(self.config.cost.txn_lease_check_us);
            self.frontends[fe].cpu.charge(CpuCategory::TxnLease, lease_cost);
            receipt.frontend_cpu += lease_cost;
            receipt.latency += lease_cost;
        }

        // Drive the executor with a store that charges pods as it fetches.
        let outcome = {
            let mut store = ClusterRowStore {
                storages: &mut self.storages,
                regions: &self.regions,
                cost: &self.config.cost,
                link: &self.config.link,
                receipt,
                now,
                region_count: self.config.regions.max(1) as usize,
            };
            execute(&self.catalog, physical, params, &mut store)?
        };
        receipt.rows = outcome.rows;
        receipt.versions = outcome.versions;
        receipt.stats = outcome.stats;

        // Front-end post-processing per returned row.
        let post = SimDuration::from_micros_f64(
            self.config.cost.frontend_per_row_us * receipt.rows.len() as f64,
        );
        self.frontends[fe].cpu.charge(CpuCategory::SqlFrontend, post);
        receipt.frontend_cpu += post;
        receipt.latency += post;
        receipt.response_bytes = receipt.rows.iter().map(|r| r.encoded_size()).sum();

        // Writes go through Raft.
        if let Some(batch) = outcome.write {
            let version = self.commit_batch(&batch, now, receipt)?;
            receipt.write_version = Some(version);
        }
        Ok(())
    }

    /// Route a write batch through the raft groups of the touched regions.
    fn commit_batch(
        &mut self,
        batch: &WriteBatch,
        now: SimTime,
        receipt: &mut QueryReceipt,
    ) -> StoreResult<u64> {
        let _span = simnet::prof_span!("commit_batch");
        if batch.is_empty() {
            // e.g. UPDATE matching zero rows: still a valid write statement.
            self.tso += 1;
            return Ok(self.tso);
        }
        // Group mutations by region.
        let mut per_region: std::collections::BTreeMap<usize, WriteBatch> =
            std::collections::BTreeMap::new();
        for m in &batch.mutations {
            let r = self.region_of(&m.key);
            let sub = per_region.entry(r).or_insert_with(|| WriteBatch {
                table: batch.table.clone(),
                ..Default::default()
            });
            sub.mutations.push(m.clone());
            sub.logical_bytes += m.value.as_ref().map(|v| v.len() as u64).unwrap_or(0);
        }
        // One commit version for the statement (TSO-style).
        self.tso += 1;
        let version = self.tso;
        // The record mutation's logical bytes dominate; spread the logical
        // write size across regions proportionally to physical size.
        for (region_idx, sub) in per_region {
            let leader = self.regions[region_idx].leader()?;
            // RPC front-end → leader carrying the batch.
            let bytes = 64 + sub.logical_bytes.max(batch.logical_bytes / batch.mutations.len().max(1) as u64);
            self.charge_rpc(leader, bytes, 16, receipt, now);

            let leader_cost = self.config.cost.raft_leader_cost(bytes);
            self.storages[leader].cpu.charge(CpuCategory::Replication, leader_cost);
            receipt.storage_cpu += leader_cost;

            let ops = self.regions[region_idx].propose(sub, version, now)?;
            let mut max_follower = SimDuration::ZERO;
            for op in ops {
                let entry_bytes = self.regions[region_idx].entry(op.index).bytes;
                let entry = self.regions[region_idx].entry(op.index).clone();
                let pod = self.regions[region_idx].replicas[op.slot];
                for m in &entry.batch.mutations {
                    self.storages[pod]
                        .kv
                        .put_at(m.key.clone(), m.value.clone(), entry.version);
                }
                let kv_cost = SimDuration::from_micros_f64(
                    self.config.cost.kv_write_us * entry.batch.mutations.len() as f64,
                );
                let repl_cost = self.config.cost.raft_follower_cost(entry_bytes);
                self.storages[pod].cpu.charge(CpuCategory::KvExec, kv_cost);
                self.storages[pod].cpu.charge(CpuCategory::Replication, repl_cost);
                receipt.storage_cpu += kv_cost + repl_cost;
                receipt.storage_cpu += self.durable_apply(pod, region_idx, &entry);
                max_follower = max_follower.max(repl_cost);
            }
            // Quorum round trip: leader → follower → ack.
            receipt.latency += self.config.link.delivery_time(bytes) * 2 + max_follower;
        }
        Ok(version)
    }

    /// Charge one front-end↔storage round trip (request `req_bytes` out,
    /// `resp_bytes` back) and add its latency to the receipt.
    fn charge_rpc(
        &mut self,
        pod: usize,
        resp_bytes: u64,
        req_bytes: u64,
        receipt: &mut QueryReceipt,
        _now: SimTime,
    ) {
        let fe = (self.next_frontend.wrapping_sub(1)) % self.frontends.len();
        let fe_cost =
            self.config.cost.rpc_side_cost(req_bytes) + self.config.cost.rpc_side_cost(resp_bytes);
        let pod_cost = fe_cost;
        self.frontends[fe].cpu.charge(CpuCategory::RpcStack, fe_cost);
        self.storages[pod].cpu.charge(CpuCategory::RpcStack, pod_cost);
        receipt.frontend_cpu += fe_cost;
        receipt.storage_cpu += pod_cost;
        receipt.storage_rpcs += 1;
        receipt.latency += self.config.link.delivery_time(req_bytes)
            + self.config.link.delivery_time(resp_bytes)
            + fe_cost
            + pod_cost;
    }

    /// The §5.5 version check: `SELECT _version FROM <table> WHERE pk = ?`,
    /// running the complete read path but returning only 8 bytes.
    pub fn version_check(
        &mut self,
        table: &str,
        pk: &Datum,
        now: SimTime,
    ) -> StoreResult<(Option<u64>, QueryReceipt)> {
        let schema = self.catalog.get(table)?;
        let pk_col = schema.columns[schema.primary_key].name.clone();
        let sql = format!("SELECT _version FROM {table} WHERE {pk_col} = ?");
        let receipt = self.execute(&sql, std::slice::from_ref(pk), now)?;
        let version = receipt
            .rows
            .first()
            .and_then(|r| r.get(0))
            .and_then(|d| d.as_int())
            .map(|v| v as u64);
        Ok((version, receipt))
    }

    /// Prepare a write but do not commit it — models the paper's Figure 8
    /// delayed write. Front-end and executor read costs are charged now;
    /// replication happens at [`SqlCluster::commit_delayed`].
    pub fn begin_delayed_write(
        &mut self,
        sql: &str,
        params: &[Datum],
        now: SimTime,
    ) -> StoreResult<DelayedWrite> {
        let stmt = parse(sql)?;
        let physical = plan(&self.catalog, &stmt)?;
        if physical.is_read() {
            return Err(StoreError::Unsupported("delayed read".to_string()));
        }
        let mut receipt = self.frontend_admission(sql.len(), false);
        let outcome = {
            let mut store = ClusterRowStore {
                storages: &mut self.storages,
                regions: &self.regions,
                cost: &self.config.cost,
                link: &self.config.link,
                receipt: &mut receipt,
                now,
                region_count: self.config.regions.max(1) as usize,
            };
            execute(&self.catalog, &physical, params, &mut store)?
        };
        Ok(DelayedWrite {
            batch: outcome.write.unwrap_or_default(),
            receipt,
        })
    }

    /// Commit a previously prepared delayed write.
    pub fn commit_delayed(
        &mut self,
        mut delayed: DelayedWrite,
        now: SimTime,
    ) -> StoreResult<QueryReceipt> {
        let version = {
            let DelayedWrite { batch, receipt } = &mut delayed;
            self.commit_batch(batch, now, receipt)?
        };
        delayed.receipt.write_version = Some(version);
        Ok(delayed.receipt)
    }

    /// Aggregate front-end CPU across pods.
    pub fn frontend_cpu_total(&self) -> CpuMeter {
        let mut m = CpuMeter::new();
        for f in &self.frontends {
            m.merge(&f.cpu);
        }
        m
    }

    /// Aggregate storage CPU across pods.
    pub fn storage_cpu_total(&self) -> CpuMeter {
        let mut m = CpuMeter::new();
        for s in &self.storages {
            m.merge(&s.cpu);
        }
        m
    }

    /// Mean block-cache hit ratio over pods (0 when unused).
    pub fn block_cache_hit_ratio(&self) -> f64 {
        let n = self.storages.len().max(1) as f64;
        self.storages.iter().map(|s| s.block_cache.hit_ratio()).sum::<f64>() / n
    }

    /// Summed raw block-cache `(hits, misses)` across pods — the mergeable
    /// counterpart of [`SqlCluster::block_cache_hit_ratio`] used when a
    /// sharded experiment folds per-shard clusters into one report.
    pub fn block_cache_counts(&self) -> (u64, u64) {
        self.storages.iter().fold((0, 0), |(h, m), s| {
            let (sh, sm) = s.block_cache.counts();
            (h + sh, m + sm)
        })
    }
}

thread_local! {
    // Scratch buffer for `point_get`'s record key — `ClusterRowStore` is
    // rebuilt per query, so per-instance scratch would still allocate per
    // request.
    static POINT_GET_KEY: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// The executor's window into the storage tier: every fetch routes to the
/// region leader, pays RPC + block-cache + KV costs on the right pods, and
/// accumulates into the receipt.
struct ClusterRowStore<'a> {
    storages: &'a mut Vec<StoragePod>,
    regions: &'a Vec<RaftGroup>,
    cost: &'a StorageCostConfig,
    link: &'a LinkSpec,
    receipt: &'a mut QueryReceipt,
    #[allow(dead_code)]
    now: SimTime,
    region_count: usize,
}

impl ClusterRowStore<'_> {
    fn region_of(&self, key: &[u8]) -> usize {
        (stable_hash(key) % self.region_count as u64) as usize
    }

    /// Charge a storage-side row read (block cache + KV) on `pod`.
    fn charge_row_read(&mut self, pod: usize, key: &[u8], bytes: u64, rows_scanned: u64) {
        let (hits, misses) = self.storages[pod].block_cache.access(key, bytes.max(1));
        self.receipt.block_hits += hits;
        self.receipt.block_misses += misses;
        let kv = self.cost.kv_read_cost(bytes, rows_scanned);
        let miss_cpu = SimDuration::from_micros_f64(self.cost.block_miss_us * misses as f64);
        self.storages[pod].cpu.charge(CpuCategory::KvExec, kv);
        self.storages[pod].cpu.charge(CpuCategory::KvExec, miss_cpu);
        self.receipt.storage_cpu += kv + miss_cpu;
        self.receipt.latency += kv
            + miss_cpu
            + SimDuration::from_micros_f64(self.cost.disk_read_latency_us * misses as f64);
    }

    /// Charge the front-end↔storage round trip for a fetch.
    fn charge_fetch_rpc(&mut self, pod: usize, resp_bytes: u64) {
        let req = 48u64; // encoded key + header
        let fe_cost = self.cost.rpc_side_cost(req) + self.cost.rpc_side_cost(resp_bytes);
        self.storages[pod].cpu.charge(CpuCategory::RpcStack, fe_cost);
        self.receipt.storage_cpu += fe_cost;
        // Front-end side is charged by the cluster wrapper on the same
        // receipt (the receipt's frontend_cpu), via this addition:
        self.receipt.frontend_cpu += fe_cost;
        self.receipt.storage_rpcs += 1;
        self.receipt.latency += self.link.delivery_time(req)
            + self.link.delivery_time(resp_bytes)
            + fe_cost * 2;
    }

    fn leader_for_key(&self, key: &[u8]) -> StoreResult<usize> {
        self.regions[self.region_of(key)].leader()
    }

    /// Point-fetch each record key from its home region, with charges.
    fn fetch_rows_by_record_keys(
        &mut self,
        record_keys: Vec<Vec<u8>>,
    ) -> StoreResult<Vec<(Row, u64)>> {
        let mut rows = Vec::new();
        for key in record_keys {
            let pod = self.leader_for_key(&key)?;
            let found = self.storages[pod]
                .kv
                .get_latest(&key)
                .map(|v| Row::decode(v.value).map(|row| (row, v.version)))
                .transpose()?;
            if let Some((row, version)) = found {
                let logical = row.encoded_size();
                self.charge_row_read(pod, &key, logical, 1);
                self.charge_fetch_rpc(pod, logical);
                rows.push((row, version));
            }
        }
        Ok(rows)
    }
}

impl RowStore for ClusterRowStore<'_> {
    fn point_get(&mut self, table: &str, pk: &Datum) -> StoreResult<Option<(Row, u64)>> {
        let _span = simnet::prof_span!("point_get");
        // Reuse one thread-local key buffer and decode straight out of the
        // MVCC store's borrowed bytes: the hottest read in the simulator
        // allocates nothing beyond the decoded datums themselves.
        POINT_GET_KEY.with(|buf| {
            let mut key = buf.borrow_mut();
            record_key_into(&mut key, table, pk);
            let pod = self.leader_for_key(&key)?;
            let found = self.storages[pod]
                .kv
                .get_latest(&key)
                .map(|v| Row::decode(v.value).map(|row| (row, v.version)))
                .transpose()?;
            match found {
                None => {
                    // Negative lookups still pay lookup + RPC.
                    self.charge_row_read(pod, &key, 0, 1);
                    self.charge_fetch_rpc(pod, 0);
                    Ok(None)
                }
                Some((row, version)) => {
                    let logical = row.encoded_size();
                    self.charge_row_read(pod, &key, logical, 1);
                    self.charge_fetch_rpc(pod, logical);
                    Ok(Some((row, version)))
                }
            }
        })
    }

    fn index_lookup(
        &mut self,
        table: &str,
        column: usize,
        value: &Datum,
    ) -> StoreResult<Vec<(Row, u64)>> {
        let prefix = index_prefix(table, column, value);
        let pod = self.leader_for_key(&prefix)?;
        let record_keys: Vec<Vec<u8>> = self.storages[pod]
            .kv
            .scan_prefix(&prefix, u64::MAX)
            .map(|(_, v)| v.value.to_vec())
            .collect();
        // Index scan: one block access over the index range, rows = entries.
        self.charge_row_read(pod, &prefix, 32 * record_keys.len() as u64, record_keys.len().max(1) as u64);
        self.charge_fetch_rpc(pod, 40 * record_keys.len() as u64);
        self.fetch_rows_by_record_keys(record_keys)
    }

    fn index_range(
        &mut self,
        table: &str,
        column: usize,
        lo: Option<&Datum>,
        hi: Option<&Datum>,
    ) -> StoreResult<Vec<(Row, u64)>> {
        // Index entries for a value range are spread across regions (they
        // hash by full key), so every region leader scans its slice — the
        // multi-region coprocessor pattern of the real system.
        let (start, end) = crate::kv::index_range_bounds(table, column, lo, hi);
        let mut record_keys = Vec::new();
        for region_idx in 0..self.region_count {
            let pod = self.regions[region_idx].leader()?;
            let hits: Vec<(Vec<u8>, Vec<u8>)> = self.storages[pod]
                .kv
                .scan_between(&start, end.as_deref(), u64::MAX)
                .filter(|(k, _)| {
                    (stable_hash(k) % self.region_count as u64) as usize == region_idx
                })
                .map(|(k, v)| (k.clone(), v.value.to_vec()))
                .collect();
            self.charge_row_read(pod, &start, 32 * hits.len() as u64, hits.len().max(1) as u64);
            self.charge_fetch_rpc(pod, 40 * hits.len() as u64);
            record_keys.extend(hits.into_iter().map(|(_, rk)| rk));
        }
        record_keys.sort();
        record_keys.dedup();
        self.fetch_rows_by_record_keys(record_keys)
    }

    fn pk_range(
        &mut self,
        table: &str,
        lo: Option<&Datum>,
        hi: Option<&Datum>,
    ) -> StoreResult<Vec<(Row, u64)>> {
        let (start, end) = crate::kv::record_range_bounds(table, lo, hi);
        let mut rows = Vec::new();
        for region_idx in 0..self.region_count {
            let pod = self.regions[region_idx].leader()?;
            let hits: Vec<(Vec<u8>, Vec<u8>, u64)> = self.storages[pod]
                .kv
                .scan_between(&start, end.as_deref(), u64::MAX)
                .filter(|(k, _)| {
                    (stable_hash(k) % self.region_count as u64) as usize == region_idx
                })
                .map(|(k, v)| (k.clone(), v.value.to_vec(), v.version))
                .collect();
            let mut region_bytes = 0u64;
            for (key, bytes, version) in hits {
                let row = Row::decode(&bytes)?;
                let logical = row.encoded_size();
                region_bytes += logical;
                self.charge_row_read(pod, &key, logical, 1);
                rows.push((row, version));
            }
            self.charge_fetch_rpc(pod, region_bytes);
        }
        Ok(rows)
    }

    fn full_scan(&mut self, table: &str) -> StoreResult<Vec<(Row, u64)>> {
        let prefix = record_prefix(table);
        let mut rows = Vec::new();
        for region_idx in 0..self.region_count {
            let pod = self.regions[region_idx].leader()?;
            let hits: Vec<(Vec<u8>, Vec<u8>, u64)> = self.storages[pod]
                .kv
                .scan_prefix(&prefix, u64::MAX)
                .filter(|(k, _)| {
                    (stable_hash(k) % self.region_count as u64) as usize == region_idx
                })
                .map(|(k, v)| (k.clone(), v.value.to_vec(), v.version))
                .collect();
            let mut region_bytes = 0u64;
            for (key, bytes, version) in hits {
                let row = Row::decode(&bytes)?;
                let logical = row.encoded_size();
                region_bytes += logical;
                self.charge_row_read(pod, &key, logical, 1);
                rows.push((row, version));
            }
            self.charge_fetch_rpc(pod, region_bytes);
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType, TableSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            TableSchema::new(
                "kv",
                vec![
                    ColumnDef::new("k", ColumnType::Int),
                    ColumnDef::new("v", ColumnType::Bytes),
                ],
                "k",
                &[],
            )
            .unwrap(),
        );
        c
    }

    fn cluster() -> SqlCluster {
        SqlCluster::new(catalog(), ClusterConfig::default())
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut c = cluster();
        let w = c
            .execute(
                "INSERT INTO kv VALUES (?, ?)",
                &[1.into(), Datum::Bytes(vec![7; 100])],
                t(0),
            )
            .unwrap();
        assert!(w.write_version.is_some());
        let r = c.execute("SELECT v FROM kv WHERE k = ?", &[1.into()], t(1)).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].get(0), Some(&Datum::Bytes(vec![7; 100])));
        assert!(r.frontend_cpu > SimDuration::ZERO);
        assert!(r.storage_cpu > SimDuration::ZERO);
        assert!(r.latency > SimDuration::ZERO);
        assert_eq!(r.storage_rpcs, 1);
    }

    #[test]
    fn writes_replicate_to_all_members() {
        let mut c = cluster();
        c.execute(
            "INSERT INTO kv VALUES (?, ?)",
            &[5.into(), Datum::Bytes(vec![1])],
            t(0),
        )
        .unwrap();
        // RF=3 over 3 pods: every pod holds the row.
        let key = record_key("kv", &Datum::Int(5));
        for (i, pod) in c.storages.iter().enumerate() {
            assert!(pod.kv.get_latest(&key).is_some(), "pod {i} missing replica");
        }
    }

    #[test]
    fn versions_advance_with_updates() {
        let mut c = cluster();
        let w1 = c
            .execute("INSERT INTO kv VALUES (?, ?)", &[1.into(), Datum::Bytes(vec![1])], t(0))
            .unwrap();
        let w2 = c
            .execute("UPDATE kv SET v = ? WHERE k = ?", &[Datum::Bytes(vec![2]).clone(), 1.into()], t(1))
            .unwrap();
        assert!(w2.write_version.unwrap() > w1.write_version.unwrap());
        let (ver, _) = c.version_check("kv", &Datum::Int(1), t(2)).unwrap();
        assert_eq!(ver, Some(w2.write_version.unwrap()));
    }

    #[test]
    fn version_check_pays_full_read_path() {
        let mut c = cluster();
        let big = Datum::Payload { len: 100_000, seed: 1 };
        c.execute("INSERT INTO kv VALUES (?, ?)", &[1.into(), big], t(0))
            .unwrap();
        let (_, receipt) = c.version_check("kv", &Datum::Int(1), t(1)).unwrap();
        // The row ships to the front-end in full: storage RPC cost reflects
        // ~100 KB even though only 8 bytes return to the app.
        assert!(receipt.storage_rpcs >= 1);
        assert!(
            receipt.storage_cpu > SimDuration::from_micros(20),
            "storage CPU {} too small for full-row fetch",
            receipt.storage_cpu
        );
        assert!(receipt.response_bytes < 100, "app only gets the version");
    }

    #[test]
    fn block_cache_evicts_and_rewarns() {
        // One-block cache per pod: alternating keys thrash it.
        let cfg = ClusterConfig {
            block_cache_bytes: 33_000, // fits exactly one 32 KiB block
            storage_nodes: 1,          // single pod so both keys share the cache
            replicas: 1,
            ..ClusterConfig::default()
        };
        let mut c = SqlCluster::new(catalog(), cfg);
        c.execute("INSERT INTO kv VALUES (1, ?)", &[Datum::Bytes(vec![0; 100])], t(0))
            .unwrap();
        c.execute("INSERT INTO kv VALUES (2, ?)", &[Datum::Bytes(vec![0; 100])], t(0))
            .unwrap();
        // k=1's block was just warmed by the insert's dup-check, but k=2's
        // insert displaced it (single block slot, and the two keys hash to
        // different blocks with overwhelming probability).
        let r1 = c.execute("SELECT v FROM kv WHERE k = 1", &[], t(1)).unwrap();
        assert!(r1.block_misses > 0, "evicted block must miss");
        let r1b = c.execute("SELECT v FROM kv WHERE k = 1", &[], t(2)).unwrap();
        assert_eq!(r1b.block_misses, 0, "immediately-warm read hits");
        assert!(r1b.block_hits > 0);
        assert!(r1b.latency < r1.latency, "disk latency disappears when warm");
        // Touching k=2 evicts k=1 again.
        c.execute("SELECT v FROM kv WHERE k = 2", &[], t(3)).unwrap();
        let r1c = c.execute("SELECT v FROM kv WHERE k = 1", &[], t(4)).unwrap();
        assert!(r1c.block_misses > 0);
    }

    #[test]
    fn negative_lookup_still_charges() {
        let mut c = cluster();
        let r = c.execute("SELECT v FROM kv WHERE k = 404", &[], t(0)).unwrap();
        assert!(r.rows.is_empty());
        assert!(r.storage_cpu > SimDuration::ZERO);
    }

    #[test]
    fn prepared_execution_skips_parse_cost() {
        let mut c = cluster();
        c.execute("INSERT INTO kv VALUES (1, ?)", &[Datum::Bytes(vec![1])], t(0))
            .unwrap();
        let plan = c.prepare("SELECT v FROM kv WHERE k = ?").unwrap();
        let full = c.execute("SELECT v FROM kv WHERE k = ?", &[1.into()], t(1)).unwrap();
        let prep = c.execute_prepared(&plan, &[1.into()], t(2)).unwrap();
        assert!(prep.frontend_cpu < full.frontend_cpu);
        assert_eq!(prep.rows, full.rows);
    }

    #[test]
    fn delayed_write_is_invisible_until_commit() {
        let mut c = cluster();
        c.execute("INSERT INTO kv VALUES (1, ?)", &[Datum::Bytes(vec![1])], t(0))
            .unwrap();
        let dw = c
            .begin_delayed_write(
                "UPDATE kv SET v = ? WHERE k = 1",
                &[Datum::Bytes(vec![9])],
                t(1),
            )
            .unwrap();
        let before = c.execute("SELECT v FROM kv WHERE k = 1", &[], t(2)).unwrap();
        assert_eq!(before.rows[0].get(0), Some(&Datum::Bytes(vec![1])));
        let receipt = c.commit_delayed(dw, t(3)).unwrap();
        assert!(receipt.write_version.is_some());
        let after = c.execute("SELECT v FROM kv WHERE k = 1", &[], t(4)).unwrap();
        assert_eq!(after.rows[0].get(0), Some(&Datum::Bytes(vec![9])));
    }

    #[test]
    fn leader_crash_fails_reads_until_election() {
        let mut c = cluster();
        c.execute("INSERT INTO kv VALUES (1, ?)", &[Datum::Bytes(vec![1])], t(0))
            .unwrap();
        let key = record_key("kv", &Datum::Int(1));
        let region = c.region_of(&key);
        // Crash the leader replica of that region.
        let leader_slot = c.regions[region].leader_slot().unwrap();
        c.region_mut(region).crash(leader_slot);
        let err = c.execute("SELECT v FROM kv WHERE k = 1", &[], t(1)).unwrap_err();
        assert!(matches!(err, StoreError::NoLeader { .. }));
        c.region_mut(region).elect(t(2)).unwrap();
        let r = c.execute("SELECT v FROM kv WHERE k = 1", &[], t(3)).unwrap();
        assert_eq!(r.rows.len(), 1, "data survives leader failover");
    }

    #[test]
    fn bulk_load_rows_are_readable_and_replicated() {
        let mut c = cluster();
        let n = c
            .bulk_load(
                "kv",
                (0..50i64).map(|i| vec![Datum::Int(i), Datum::Bytes(vec![i as u8])]),
            )
            .unwrap();
        assert_eq!(n, 50);
        assert_eq!(c.storage_cpu_total().total(), SimDuration::ZERO, "no CPU charged");
        for i in 0..50i64 {
            let r = c.execute("SELECT v FROM kv WHERE k = ?", &[i.into()], t(1)).unwrap();
            assert_eq!(r.rows[0].get(0), Some(&Datum::Bytes(vec![i as u8])));
        }
        // Subsequent SQL writes see later versions than bulk-loaded rows.
        let w = c
            .execute("UPDATE kv SET v = ? WHERE k = 0", &[Datum::Bytes(vec![99])], t(2))
            .unwrap();
        let (ver, _) = c.version_check("kv", &Datum::Int(0), t(3)).unwrap();
        assert_eq!(ver, w.write_version);
    }

    #[test]
    fn bulk_load_validates_rows() {
        let mut c = cluster();
        let err = c.bulk_load("kv", vec![vec![Datum::Int(1)]]).unwrap_err();
        assert!(matches!(err, StoreError::ArityMismatch { .. }));
        assert!(c.bulk_load("ghost", vec![]).is_err());
    }

    #[test]
    fn range_queries_span_regions() {
        let mut c = cluster();
        c.bulk_load(
            "kv",
            (0..200i64).map(|i| vec![Datum::Int(i), Datum::Bytes(vec![i as u8])]),
        )
        .unwrap();
        let r = c
            .execute("SELECT COUNT(*) FROM kv WHERE k >= 50 AND k < 150", &[], t(1))
            .unwrap();
        assert_eq!(r.rows[0].get(0), Some(&Datum::Int(100)));
        assert!(r.stats.used_index, "pk range scan, not full scan");
        assert_eq!(r.stats.full_scans, 0);
        assert!(r.storage_rpcs >= 1);
    }

    #[test]
    fn cpu_meters_accumulate_by_tier() {
        let mut c = cluster();
        for i in 0..20i64 {
            c.execute(
                "INSERT INTO kv VALUES (?, ?)",
                &[i.into(), Datum::Bytes(vec![0; 64])],
                t(i as u64),
            )
            .unwrap();
        }
        for i in 0..20i64 {
            c.execute("SELECT v FROM kv WHERE k = ?", &[i.into()], t(100 + i as u64))
                .unwrap();
        }
        let fe = c.frontend_cpu_total();
        let st = c.storage_cpu_total();
        assert!(fe.category(CpuCategory::SqlFrontend) > SimDuration::ZERO);
        assert!(fe.category(CpuCategory::TxnLease) > SimDuration::ZERO);
        assert!(st.category(CpuCategory::KvExec) > SimDuration::ZERO);
        assert!(st.category(CpuCategory::Replication) > SimDuration::ZERO);
        assert!(st.category(CpuCategory::RpcStack) > SimDuration::ZERO);
    }

    #[test]
    fn durability_off_keeps_every_counter_at_zero() {
        let mut c = cluster();
        for i in 0..20i64 {
            c.execute(
                "INSERT INTO kv VALUES (?, ?)",
                &[i.into(), Datum::Bytes(vec![0; 64])],
                t(i as u64),
            )
            .unwrap();
        }
        c.tick(t(100));
        assert!(!c.durability_enabled());
        assert_eq!(c.durability_stats(), Default::default());
        assert_eq!(c.ssd_resident_bytes(), 0);
    }

    fn durable_cluster(fsync: crate::durability::FsyncPolicy, snap: u64) -> SqlCluster {
        let cfg = ClusterConfig {
            durability: DurabilityConfig {
                enabled: true,
                fsync,
                snapshot_every_entries: snap,
            },
            ..ClusterConfig::default()
        };
        SqlCluster::new(catalog(), cfg)
    }

    #[test]
    fn durable_writes_append_wal_and_snapshot_on_cadence() {
        use crate::durability::FsyncPolicy;
        let mut c = durable_cluster(FsyncPolicy::Group(4), 10);
        for i in 0..12i64 {
            c.execute(
                "INSERT INTO kv VALUES (?, ?)",
                &[i.into(), Datum::Bytes(vec![0; 64])],
                t(i as u64),
            )
            .unwrap();
        }
        let s = c.durability_stats();
        // RF=3: every insert is WAL'd on all three replicas.
        assert_eq!(s.wal_appends, 36);
        assert!(s.fsync_batches > 0);
        assert!(s.snapshots > 0, "cadence of 10 fires within 12 appends");
        assert!(c.ssd_resident_bytes() > 0);
        // Durable IO is billed to the replication/kv categories.
        assert!(c.storage_cpu_total().category(CpuCategory::Replication) > SimDuration::ZERO);
    }

    #[test]
    fn crashed_pod_recovers_committed_state_via_quorum() {
        use crate::durability::FsyncPolicy;
        // Group(64): most of the WAL tail is un-fsynced at crash time, so
        // recovery genuinely leans on quorum re-replication.
        let mut c = durable_cluster(FsyncPolicy::Group(64), 1_000_000);
        for i in 0..30i64 {
            c.execute(
                "INSERT INTO kv VALUES (?, ?)",
                &[i.into(), Datum::Bytes(vec![i as u8; 32])],
                t(i as u64),
            )
            .unwrap();
        }
        c.crash_pod(0);
        let dt = c.recover_pod(0, t(100));
        assert!(dt > SimDuration::ZERO);
        let s = c.durability_stats();
        assert_eq!(s.recoveries, 1);
        assert!(s.lost_tail_entries > 0, "un-fsynced tail was discarded");
        assert!(s.cold_refill_cpu_us > 0, "block cache residency was lost");
        // Every acked write survives the crash.
        for i in 0..30i64 {
            let r = c.execute("SELECT v FROM kv WHERE k = ?", &[i.into()], t(200)).unwrap();
            assert_eq!(r.rows[0].get(0), Some(&Datum::Bytes(vec![i as u8; 32])), "key {i}");
        }
        // And the recovered pod itself holds them again (not just the quorum).
        let key = record_key("kv", &Datum::Int(29));
        assert!(c.storages[0].kv.get_latest(&key).is_some());
    }

    #[test]
    fn bulk_load_snapshots_when_durable() {
        use crate::durability::FsyncPolicy;
        let mut c = durable_cluster(FsyncPolicy::Group(8), 1_000_000);
        c.bulk_load(
            "kv",
            (0..50i64).map(|i| vec![Datum::Int(i), Datum::Bytes(vec![i as u8])]),
        )
        .unwrap();
        assert_eq!(c.durability_stats().snapshots, 3, "one per pod");
        assert_eq!(c.storage_cpu_total().total(), SimDuration::ZERO, "load stays free");
        // Crash+recover straight off the snapshot: no quorum help needed.
        c.crash_pod(1);
        c.recover_pod(1, t(1));
        let key = record_key("kv", &Datum::Int(42));
        assert!(c.storages[1].kv.get_latest(&key).is_some());
    }

    #[test]
    fn reset_metrics_clears_cpu_but_not_data() {
        let mut c = cluster();
        c.execute("INSERT INTO kv VALUES (1, ?)", &[Datum::Bytes(vec![1])], t(0))
            .unwrap();
        c.reset_metrics();
        assert_eq!(c.storage_cpu_total().total(), SimDuration::ZERO);
        let r = c.execute("SELECT v FROM kv WHERE k = 1", &[], t(1)).unwrap();
        assert_eq!(r.rows.len(), 1);
    }
}
