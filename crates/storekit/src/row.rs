//! Rows and their binary encoding.
//!
//! Rows are stored in the KV engine and shipped between tiers as real byte
//! strings — the simulator charges serialization CPU per byte, so encoding
//! must produce honest sizes. The format is deliberately simple: a u16
//! column count, then per-datum `[tag][payload]` with length-prefixed
//! variable fields.

use crate::error::{StoreError, StoreResult};
use crate::value::Datum;
use serde::{Deserialize, Serialize};

/// One table row: a vector of datums in schema column order.
///
/// Note on sizes: [`Row::encoded_size`] reports the *logical* wire size used
/// for cost accounting. For all datums except [`Datum::Payload`] it equals
/// the physical encoding length; `Payload` encodes in 17 physical bytes but
/// accounts at its declared length (see `value.rs`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Row(pub Vec<Datum>);

impl Row {
    pub fn new(values: Vec<Datum>) -> Self {
        Row(values)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn get(&self, idx: usize) -> Option<&Datum> {
        self.0.get(idx)
    }

    /// Total encoded size (used for byte accounting without encoding).
    pub fn encoded_size(&self) -> u64 {
        2 + self.0.iter().map(|d| d.encoded_size()).sum::<u64>()
    }

    /// Encode to the binary wire/storage format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_size() as usize);
        out.extend_from_slice(&(self.0.len() as u16).to_le_bytes());
        for d in &self.0 {
            match d {
                Datum::Null => out.push(0),
                Datum::Bool(b) => {
                    out.push(1);
                    out.push(*b as u8);
                }
                Datum::Int(i) => {
                    out.push(2);
                    out.extend_from_slice(&i.to_le_bytes());
                }
                Datum::Float(x) => {
                    out.push(3);
                    out.extend_from_slice(&x.to_le_bytes());
                }
                Datum::Text(s) => {
                    out.push(4);
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
                Datum::Bytes(b) => {
                    out.push(5);
                    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                    out.extend_from_slice(b);
                }
                Datum::Payload { len, seed } => {
                    out.push(6);
                    out.extend_from_slice(&len.to_le_bytes());
                    out.extend_from_slice(&seed.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decode from the binary format.
    pub fn decode(bytes: &[u8]) -> StoreResult<Row> {
        let err = |pos: usize, message: &str| StoreError::Syntax {
            pos,
            message: format!("row decode: {message}"),
        };
        let mut pos = 0usize;
        // Borrowing cursor: field bytes are sliced in place (this runs once
        // per row fetched on the serve path; the only allocations are the
        // owned payloads of Text/Bytes datums and the datum vector itself).
        fn take<'a>(pos: &mut usize, n: usize, bytes: &'a [u8]) -> StoreResult<&'a [u8]> {
            let Some(out) = bytes.get(*pos..*pos + n) else {
                return Err(StoreError::Syntax {
                    pos: *pos,
                    message: "row decode: truncated".to_string(),
                });
            };
            *pos += n;
            Ok(out)
        }
        let count_bytes = take(&mut pos, 2, bytes)?;
        let count = u16::from_le_bytes([count_bytes[0], count_bytes[1]]) as usize;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = take(&mut pos, 1, bytes)?[0];
            let datum = match tag {
                0 => Datum::Null,
                1 => Datum::Bool(take(&mut pos, 1, bytes)?[0] != 0),
                2 => {
                    let b = take(&mut pos, 8, bytes)?;
                    Datum::Int(i64::from_le_bytes(b.try_into().unwrap()))
                }
                3 => {
                    let b = take(&mut pos, 8, bytes)?;
                    Datum::Float(f64::from_le_bytes(b.try_into().unwrap()))
                }
                4 => {
                    let l = take(&mut pos, 4, bytes)?;
                    let len = u32::from_le_bytes(l.try_into().unwrap()) as usize;
                    let s = take(&mut pos, len, bytes)?;
                    let s = std::str::from_utf8(s).map_err(|_| err(pos, "bad utf8"))?;
                    Datum::Text(s.to_string())
                }
                5 => {
                    let l = take(&mut pos, 4, bytes)?;
                    let len = u32::from_le_bytes(l.try_into().unwrap()) as usize;
                    Datum::Bytes(take(&mut pos, len, bytes)?.to_vec())
                }
                6 => {
                    let l = take(&mut pos, 8, bytes)?;
                    let s = take(&mut pos, 8, bytes)?;
                    Datum::Payload {
                        len: u64::from_le_bytes(l.try_into().unwrap()),
                        seed: u64::from_le_bytes(s.try_into().unwrap()),
                    }
                }
                t => return Err(err(pos, &format!("unknown tag {t}"))),
            };
            values.push(datum);
        }
        if pos != bytes.len() {
            return Err(err(pos, "trailing bytes"));
        }
        Ok(Row(values))
    }
}

impl From<Vec<Datum>> for Row {
    fn from(v: Vec<Datum>) -> Self {
        Row(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Row {
        Row(vec![
            Datum::Int(42),
            Datum::Text("unity".into()),
            Datum::Null,
            Datum::Bool(true),
            Datum::Float(2.5),
            Datum::Bytes(vec![1, 2, 3]),
        ])
    }

    #[test]
    fn encode_decode_round_trip() {
        let row = sample();
        let bytes = row.encode();
        assert_eq!(Row::decode(&bytes).unwrap(), row);
    }

    #[test]
    fn encoded_size_matches_actual_encoding() {
        let row = sample();
        assert_eq!(row.encoded_size(), row.encode().len() as u64);
        assert_eq!(Row::default().encoded_size(), 2);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = sample().encode();
        for cut in [0, 1, 3, bytes.len() - 1] {
            assert!(Row::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0xFF);
        assert!(Row::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut bytes = vec![1, 0]; // one column
        bytes.push(9); // bogus tag
        assert!(Row::decode(&bytes).is_err());
    }

    #[test]
    fn payload_round_trips_compactly() {
        let row = Row(vec![
            Datum::Int(1),
            Datum::Payload { len: 1 << 20, seed: 42 },
        ]);
        let bytes = row.encode();
        // Physical: 2 + (1+8) + (1+16) = 28 bytes, despite a 1 MiB logical size.
        assert_eq!(bytes.len(), 28);
        assert!(row.encoded_size() > 1 << 20);
        assert_eq!(Row::decode(&bytes).unwrap(), row);
    }

    #[test]
    fn empty_row_round_trips() {
        let row = Row::default();
        assert_eq!(Row::decode(&row.encode()).unwrap(), row);
    }
}
