//! Abstract syntax for the SQL subset.

use crate::value::Datum;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    Insert(InsertStmt),
    Update(UpdateStmt),
    Delete(DeleteStmt),
}

/// `SELECT <projection> FROM <table> [JOIN ...] [WHERE ...]
///  [ORDER BY col [ASC|DESC]] [LIMIT n]`
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub table: String,
    pub join: Option<JoinClause>,
    pub projection: Projection,
    pub predicates: Vec<Predicate>,
    pub order_by: Option<OrderBy>,
    pub limit: Option<u64>,
}

/// `ORDER BY <col> [ASC|DESC]` (single key; NULLs sort first).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    pub col: ColRef,
    pub descending: bool,
}

/// `JOIN <table> ON <left col> = <right col>`
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub table: String,
    pub left: ColRef,
    pub right: ColRef,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*` — all columns (of both tables when joined).
    Star,
    /// Explicit column list.
    Columns(Vec<ColRef>),
    /// `COUNT(*)`.
    CountStar,
}

/// A possibly table-qualified column reference. The pseudo-column
/// `_version` resolves to the row's MVCC commit version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColRef {
    pub table: Option<String>,
    pub column: String,
}

impl ColRef {
    pub fn bare(column: &str) -> Self {
        ColRef {
            table: None,
            column: column.to_string(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluate against an ordering result (SQL three-valued logic: an
    /// incomparable pair — e.g. anything with NULL — satisfies nothing).
    pub fn eval(self, ord: Option<std::cmp::Ordering>) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Some(Equal))
                | (CmpOp::Neq, Some(Less | Greater))
                | (CmpOp::Lt, Some(Less))
                | (CmpOp::Le, Some(Less | Equal))
                | (CmpOp::Gt, Some(Greater))
                | (CmpOp::Ge, Some(Greater | Equal))
        )
    }
}

/// A literal or a `?` parameter slot.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Datum(Datum),
    /// Index into the parameter vector supplied at execution.
    Param(usize),
}

impl Literal {
    /// Resolve against the parameter vector.
    pub fn resolve<'a>(&'a self, params: &'a [Datum]) -> Option<&'a Datum> {
        match self {
            Literal::Datum(d) => Some(d),
            Literal::Param(i) => params.get(*i),
        }
    }
}

/// `<col> <op> <literal>` — predicates are conjunctive (AND-ed).
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    pub col: ColRef,
    pub op: CmpOp,
    pub value: Literal,
}

/// `INSERT INTO <table> VALUES (...)` or `REPLACE INTO ...` (upsert).
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    pub table: String,
    pub values: Vec<Literal>,
    /// True for `REPLACE INTO`: overwrite an existing row instead of
    /// failing with a duplicate-key error.
    pub replace: bool,
}

/// `UPDATE <table> SET col = lit [, ...] [WHERE ...]`
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    pub table: String,
    pub assignments: Vec<(String, Literal)>,
    pub predicates: Vec<Predicate>,
}

/// `DELETE FROM <table> [WHERE ...]`
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    pub table: String,
    pub predicates: Vec<Predicate>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn cmp_op_three_valued_logic() {
        assert!(CmpOp::Eq.eval(Some(Ordering::Equal)));
        assert!(!CmpOp::Eq.eval(None));
        assert!(!CmpOp::Neq.eval(None), "NULL != x is not true in SQL");
        assert!(CmpOp::Le.eval(Some(Ordering::Equal)));
        assert!(CmpOp::Ge.eval(Some(Ordering::Greater)));
        assert!(!CmpOp::Lt.eval(Some(Ordering::Greater)));
    }

    #[test]
    fn literal_resolution() {
        let params = vec![Datum::Int(7)];
        assert_eq!(
            Literal::Param(0).resolve(&params),
            Some(&Datum::Int(7))
        );
        assert_eq!(Literal::Param(1).resolve(&params), None);
        assert_eq!(
            Literal::Datum(Datum::Bool(true)).resolve(&[]),
            Some(&Datum::Bool(true))
        );
    }

    #[test]
    fn colref_display() {
        assert_eq!(ColRef::bare("id").to_string(), "id");
        let qualified = ColRef {
            table: Some("t".into()),
            column: "id".into(),
        };
        assert_eq!(qualified.to_string(), "t.id");
    }
}
