//! SQL tokenizer.

use crate::error::{StoreError, StoreResult};

/// One token, with its byte offset for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier (keywords are matched case-insensitively by the
    /// parser; the original text is preserved).
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// `?` positional parameter.
    Param,
    Comma,
    Dot,
    Star,
    LParen,
    RParen,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl TokenKind {
    /// True if this is the identifier `word` (case-insensitive).
    pub fn is_kw(&self, word: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(word))
    }
}

/// Tokenize `sql` into a token vector terminated by `Eof`.
pub fn tokenize(sql: &str) -> StoreResult<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let err = |pos: usize, message: &str| StoreError::Syntax {
        pos,
        message: message.to_string(),
    };
    while i < bytes.len() {
        let c = bytes[i];
        let start = i;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b',' => {
                tokens.push(Token { kind: TokenKind::Comma, pos: start });
                i += 1;
            }
            b'.' => {
                tokens.push(Token { kind: TokenKind::Dot, pos: start });
                i += 1;
            }
            b'*' => {
                tokens.push(Token { kind: TokenKind::Star, pos: start });
                i += 1;
            }
            b'(' => {
                tokens.push(Token { kind: TokenKind::LParen, pos: start });
                i += 1;
            }
            b')' => {
                tokens.push(Token { kind: TokenKind::RParen, pos: start });
                i += 1;
            }
            b'?' => {
                tokens.push(Token { kind: TokenKind::Param, pos: start });
                i += 1;
            }
            b'=' => {
                tokens.push(Token { kind: TokenKind::Eq, pos: start });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Neq, pos: start });
                    i += 2;
                } else {
                    return Err(err(start, "expected '=' after '!'"));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Le, pos: start });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token { kind: TokenKind::Neq, pos: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, pos: start });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, pos: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, pos: start });
                    i += 1;
                }
            }
            b'\'' => {
                // single-quoted string, '' escapes a quote
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(err(start, "unterminated string")),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), pos: start });
            }
            b'0'..=b'9' | b'-' => {
                let neg = c == b'-';
                if neg && !bytes.get(i + 1).map(u8::is_ascii_digit).unwrap_or(false) {
                    return Err(err(start, "expected digit after '-'"));
                }
                let mut j = i + 1;
                let mut is_float = false;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
                    if bytes[j] == b'.' {
                        if is_float {
                            break;
                        }
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &sql[i..j];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| err(start, "invalid float literal"))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| err(start, "invalid integer literal"))?,
                    )
                };
                tokens.push(Token { kind, pos: start });
                i = j;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[i..j].to_string()),
                    pos: start,
                });
                i = j;
            }
            _ => return Err(err(start, &format!("unexpected character '{}'", c as char))),
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: bytes.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_a_select() {
        let ks = kinds("SELECT * FROM t WHERE id = ?");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("id".into()),
                TokenKind::Eq,
                TokenKind::Param,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_negatives() {
        assert_eq!(
            kinds("42 -7 3.25"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(-7),
                TokenKind::Float(3.25),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escaped_quotes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= != <> ="),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Neq,
                TokenKind::Neq,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn bad_character_reports_position() {
        let err = tokenize("SELECT #").unwrap_err();
        match err {
            StoreError::Syntax { pos, .. } => assert_eq!(pos, 7),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dotted_column_refs() {
        assert_eq!(
            kinds("a.b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let toks = tokenize("select").unwrap();
        assert!(toks[0].kind.is_kw("SELECT"));
        assert!(toks[0].kind.is_kw("select"));
        assert!(!toks[0].kind.is_kw("FROM"));
    }
}
