//! The planner: resolve names against the catalog and choose access paths.
//!
//! Access-path choice is the cost-relevant decision: a point get touches one
//! row; an index-equality lookup touches the matching rows; a full scan
//! touches the table. The planner prefers primary key, then secondary
//! index, then full scan — and the executor reports rows actually visited,
//! so mis-planned queries show up as storage CPU, exactly as they would in
//! the paper's TiDB deployment.

use crate::error::{StoreError, StoreResult};
use crate::schema::Catalog;
use crate::sql::ast::*;

/// Column index of the `_version` pseudo-column (the MVCC commit version),
/// readable in projections: `SELECT _version FROM t WHERE pk = ?`.
pub const VERSION_COLUMN: usize = usize::MAX;

/// How the base table is accessed.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Single-row lookup by primary key.
    PointGet { value: Literal },
    /// All rows matching an indexed column.
    IndexEq { column: usize, value: Literal },
    /// Rows whose indexed column lies in a (conservative, inclusive) range;
    /// the exact predicate stays in the residual filter.
    IndexRange {
        column: usize,
        lo: Option<Literal>,
        hi: Option<Literal>,
    },
    /// Rows whose primary key lies in a range (record space is pk-ordered).
    PkRange {
        lo: Option<Literal>,
        hi: Option<Literal>,
    },
    /// Scan every row.
    FullScan,
}

/// A name-resolved predicate on a specific side of the (optional) join.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundPredicate {
    pub column: usize,
    pub op: CmpOp,
    pub value: Literal,
}

/// Join execution strategy for the right-hand table.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinAccess {
    /// Right join column is its primary key → one point get per left row.
    ByPk,
    /// Right join column has a secondary index.
    ByIndex,
    /// No index → full scan of the right table, filtered per left row.
    Scan,
}

/// A resolved join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPlan {
    pub table: String,
    /// Column index on the left table providing the join key.
    pub left_col: usize,
    /// Column index on the right table matched against it.
    pub right_col: usize,
    pub access: JoinAccess,
    /// Residual predicates applying to right-table columns.
    pub residual: Vec<BoundPredicate>,
}

/// A projected output column.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputCol {
    Left(usize),
    Right(usize),
    /// The MVCC version of the left row.
    Version,
}

#[derive(Debug, Clone, PartialEq)]
pub enum BoundProjection {
    Star,
    Columns(Vec<OutputCol>),
    CountStar,
}

/// A fully resolved SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    pub table: String,
    pub access: Access,
    /// Residual predicates on the left table (not covered by the access path).
    pub residual: Vec<BoundPredicate>,
    pub join: Option<JoinPlan>,
    pub projection: BoundProjection,
    /// Sort on a left-table column before projection/limit.
    pub order_by: Option<(usize, bool)>,
    pub limit: Option<u64>,
}

/// A resolved statement ready for execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    Select(SelectPlan),
    Insert {
        table: String,
        values: Vec<Literal>,
        replace: bool,
    },
    Update {
        table: String,
        access: Access,
        residual: Vec<BoundPredicate>,
        /// (column index, new value)
        assignments: Vec<(usize, Literal)>,
    },
    Delete {
        table: String,
        access: Access,
        residual: Vec<BoundPredicate>,
    },
}

impl PhysicalPlan {
    pub fn is_read(&self) -> bool {
        matches!(self, PhysicalPlan::Select(_))
    }
}

/// Split predicates between the two tables of a select and resolve columns.
fn split_predicates(
    catalog: &Catalog,
    left_table: &str,
    right_table: Option<&str>,
    predicates: &[Predicate],
) -> StoreResult<(Vec<BoundPredicate>, Vec<BoundPredicate>)> {
    let left_schema = catalog.get(left_table)?;
    let mut left = Vec::new();
    let mut right = Vec::new();
    for p in predicates {
        let qualified = p.col.table.as_deref();
        let on_left = match qualified {
            Some(t) => t == left_table,
            None => left_schema.column_index(&p.col.column).is_ok(),
        };
        if on_left {
            left.push(BoundPredicate {
                column: left_schema.column_index(&p.col.column)?,
                op: p.op,
                value: p.value.clone(),
            });
        } else if let Some(rt) = right_table {
            if let Some(t) = qualified {
                if t != rt {
                    return Err(StoreError::UnknownTable(t.to_string()));
                }
            }
            let right_schema = catalog.get(rt)?;
            right.push(BoundPredicate {
                column: right_schema.column_index(&p.col.column)?,
                op: p.op,
                value: p.value.clone(),
            });
        } else {
            return Err(StoreError::UnknownColumn {
                table: left_table.to_string(),
                column: p.col.column.clone(),
            });
        }
    }
    Ok((left, right))
}

/// Choose the best access path from equality predicates; the chosen
/// predicate is removed from the residual list.
fn choose_access(
    catalog: &Catalog,
    table: &str,
    predicates: &mut Vec<BoundPredicate>,
) -> StoreResult<Access> {
    let schema = catalog.get(table)?;
    // Prefer the primary key…
    if let Some(i) = predicates
        .iter()
        .position(|p| p.op == CmpOp::Eq && p.column == schema.primary_key)
    {
        let p = predicates.remove(i);
        return Ok(Access::PointGet { value: p.value });
    }
    // …then any secondary index.
    if let Some(i) = predicates
        .iter()
        .position(|p| p.op == CmpOp::Eq && schema.indexes.contains(&p.column))
    {
        let p = predicates.remove(i);
        return Ok(Access::IndexEq {
            column: p.column,
            value: p.value,
        });
    }
    // …then range predicates on the primary key or an indexed column. The
    // bounds are conservative (inclusive both sides regardless of </<=);
    // the predicates stay in the residual list so results are exact.
    let range_cols: Vec<usize> = {
        let mut cols: Vec<usize> = predicates
            .iter()
            .filter(|p| {
                matches!(p.op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
                    && schema.is_indexed(p.column)
            })
            .map(|p| p.column)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    };
    // Prefer the primary key (record space), otherwise the first indexed
    // column with a range predicate.
    let pick = range_cols
        .iter()
        .copied()
        .find(|&c| c == schema.primary_key)
        .or_else(|| range_cols.first().copied());
    if let Some(column) = pick {
        let mut lo = None;
        let mut hi = None;
        for p in predicates.iter().filter(|p| p.column == column) {
            match p.op {
                CmpOp::Gt | CmpOp::Ge if lo.is_none() => lo = Some(p.value.clone()),
                CmpOp::Lt | CmpOp::Le if hi.is_none() => hi = Some(p.value.clone()),
                _ => {}
            }
        }
        if lo.is_some() || hi.is_some() {
            return Ok(if column == schema.primary_key {
                Access::PkRange { lo, hi }
            } else {
                Access::IndexRange { column, lo, hi }
            });
        }
    }
    Ok(Access::FullScan)
}

/// Resolve an AST statement into a physical plan.
pub fn plan(catalog: &Catalog, stmt: &Statement) -> StoreResult<PhysicalPlan> {
    match stmt {
        Statement::Select(s) => plan_select(catalog, s).map(PhysicalPlan::Select),
        Statement::Insert(i) => {
            let schema = catalog.get(&i.table)?;
            if i.values.len() != schema.column_count() {
                return Err(StoreError::ArityMismatch {
                    expected: schema.column_count(),
                    got: i.values.len(),
                });
            }
            Ok(PhysicalPlan::Insert {
                table: i.table.clone(),
                values: i.values.clone(),
                replace: i.replace,
            })
        }
        Statement::Update(u) => {
            let schema = catalog.get(&u.table)?;
            let (mut preds, _) = split_predicates(catalog, &u.table, None, &u.predicates)?;
            let access = choose_access(catalog, &u.table, &mut preds)?;
            let mut assignments = Vec::new();
            for (col, lit) in &u.assignments {
                let idx = schema.column_index(col)?;
                if idx == schema.primary_key {
                    return Err(StoreError::Unsupported(
                        "updating the primary key".to_string(),
                    ));
                }
                assignments.push((idx, lit.clone()));
            }
            Ok(PhysicalPlan::Update {
                table: u.table.clone(),
                access,
                residual: preds,
                assignments,
            })
        }
        Statement::Delete(d) => {
            let (mut preds, _) = split_predicates(catalog, &d.table, None, &d.predicates)?;
            let access = choose_access(catalog, &d.table, &mut preds)?;
            Ok(PhysicalPlan::Delete {
                table: d.table.clone(),
                access,
                residual: preds,
            })
        }
    }
}

fn plan_select(catalog: &Catalog, s: &SelectStmt) -> StoreResult<SelectPlan> {
    let left_schema = catalog.get(&s.table)?;
    let right_table = s.join.as_ref().map(|j| j.table.as_str());

    let (mut left_preds, right_preds) =
        split_predicates(catalog, &s.table, right_table, &s.predicates)?;
    let access = choose_access(catalog, &s.table, &mut left_preds)?;

    let join = match &s.join {
        None => None,
        Some(j) => {
            let right_schema = catalog.get(&j.table)?;
            // Figure out which side of the ON condition is which table.
            let (left_ref, right_ref) = {
                let l_is_left = j.left.table.as_deref() == Some(s.table.as_str())
                    || (j.left.table.is_none()
                        && left_schema.column_index(&j.left.column).is_ok());
                if l_is_left {
                    (&j.left, &j.right)
                } else {
                    (&j.right, &j.left)
                }
            };
            let left_col = left_schema.column_index(&left_ref.column)?;
            let right_col = right_schema.column_index(&right_ref.column)?;
            let access = if right_col == right_schema.primary_key {
                JoinAccess::ByPk
            } else if right_schema.indexes.contains(&right_col) {
                JoinAccess::ByIndex
            } else {
                JoinAccess::Scan
            };
            Some(JoinPlan {
                table: j.table.clone(),
                left_col,
                right_col,
                access,
                residual: right_preds,
            })
        }
    };

    let projection = match &s.projection {
        Projection::Star => BoundProjection::Star,
        Projection::CountStar => BoundProjection::CountStar,
        Projection::Columns(cols) => {
            let mut out = Vec::new();
            for c in cols {
                if c.column == "_version" {
                    out.push(OutputCol::Version);
                    continue;
                }
                let prefer_left = match c.table.as_deref() {
                    Some(t) => t == s.table,
                    None => left_schema.column_index(&c.column).is_ok(),
                };
                if prefer_left {
                    out.push(OutputCol::Left(left_schema.column_index(&c.column)?));
                } else if let Some(j) = &join {
                    let right_schema = catalog.get(&j.table)?;
                    out.push(OutputCol::Right(right_schema.column_index(&c.column)?));
                } else {
                    return Err(StoreError::UnknownColumn {
                        table: s.table.clone(),
                        column: c.column.clone(),
                    });
                }
            }
            BoundProjection::Columns(out)
        }
    };

    let order_by = match &s.order_by {
        None => None,
        Some(ob) => {
            if let Some(t) = ob.col.table.as_deref() {
                if t != s.table {
                    return Err(StoreError::Unsupported(
                        "ORDER BY on joined-table columns".to_string(),
                    ));
                }
            }
            Some((left_schema.column_index(&ob.col.column)?, ob.descending))
        }
    };

    Ok(SelectPlan {
        table: s.table.clone(),
        access,
        residual: left_preds,
        join,
        projection,
        order_by,
        limit: s.limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType, TableSchema};
    use crate::sql::parser::parse;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            TableSchema::new(
                "users",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("name", ColumnType::Text),
                    ColumnDef::new("org", ColumnType::Int),
                ],
                "id",
                &["org"],
            )
            .unwrap(),
        );
        c.add(
            TableSchema::new(
                "orgs",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("title", ColumnType::Text),
                ],
                "id",
                &[],
            )
            .unwrap(),
        );
        c
    }

    fn plan_sql(sql: &str) -> StoreResult<PhysicalPlan> {
        plan(&catalog(), &parse(sql)?)
    }

    #[test]
    fn pk_equality_becomes_point_get() {
        match plan_sql("SELECT * FROM users WHERE id = ?").unwrap() {
            PhysicalPlan::Select(s) => {
                assert_eq!(s.access, Access::PointGet { value: Literal::Param(0) });
                assert!(s.residual.is_empty());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn indexed_equality_becomes_index_lookup() {
        match plan_sql("SELECT * FROM users WHERE org = 7").unwrap() {
            PhysicalPlan::Select(s) => {
                assert!(matches!(s.access, Access::IndexEq { column: 2, .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn unindexed_predicate_full_scans_with_residual() {
        match plan_sql("SELECT * FROM users WHERE name = 'bob'").unwrap() {
            PhysicalPlan::Select(s) => {
                assert_eq!(s.access, Access::FullScan);
                assert_eq!(s.residual.len(), 1);
                assert_eq!(s.residual[0].column, 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn pk_preferred_over_index() {
        match plan_sql("SELECT * FROM users WHERE org = 7 AND id = 1").unwrap() {
            PhysicalPlan::Select(s) => {
                assert!(matches!(s.access, Access::PointGet { .. }));
                assert_eq!(s.residual.len(), 1, "org predicate stays residual");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn pk_range_predicates_use_record_range() {
        match plan_sql("SELECT * FROM users WHERE id > 5").unwrap() {
            PhysicalPlan::Select(s) => {
                assert!(matches!(s.access, Access::PkRange { lo: Some(_), hi: None }));
                assert_eq!(s.residual.len(), 1, "exact bound stays residual");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn indexed_range_predicates_use_index_range() {
        match plan_sql("SELECT * FROM users WHERE org >= 3 AND org < 9").unwrap() {
            PhysicalPlan::Select(s) => {
                match s.access {
                    Access::IndexRange { column, lo, hi } => {
                        assert_eq!(column, 2);
                        assert!(lo.is_some() && hi.is_some());
                    }
                    other => panic!("expected range access, got {other:?}"),
                }
                assert_eq!(s.residual.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn unindexed_range_still_full_scans() {
        match plan_sql("SELECT * FROM users WHERE name > 'm'").unwrap() {
            PhysicalPlan::Select(s) => assert_eq!(s.access, Access::FullScan),
            _ => panic!(),
        }
    }

    #[test]
    fn join_resolves_sides_and_access() {
        match plan_sql(
            "SELECT name, title FROM users JOIN orgs ON users.org = orgs.id WHERE users.id = 1",
        )
        .unwrap()
        {
            PhysicalPlan::Select(s) => {
                let j = s.join.unwrap();
                assert_eq!(j.table, "orgs");
                assert_eq!(j.left_col, 2);
                assert_eq!(j.right_col, 0);
                assert_eq!(j.access, JoinAccess::ByPk);
                match s.projection {
                    BoundProjection::Columns(cols) => {
                        assert_eq!(cols, vec![OutputCol::Left(1), OutputCol::Right(1)]);
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn join_condition_order_is_normalized() {
        // ON written right-to-left resolves the same way.
        match plan_sql("SELECT * FROM users JOIN orgs ON orgs.id = users.org").unwrap() {
            PhysicalPlan::Select(s) => {
                let j = s.join.unwrap();
                assert_eq!((j.left_col, j.right_col), (2, 0));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn version_pseudo_column_projects() {
        match plan_sql("SELECT _version FROM users WHERE id = ?").unwrap() {
            PhysicalPlan::Select(s) => match s.projection {
                BoundProjection::Columns(cols) => assert_eq!(cols, vec![OutputCol::Version]),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn update_resolves_assignments_and_rejects_pk_update() {
        match plan_sql("UPDATE users SET name = ? WHERE id = ?").unwrap() {
            PhysicalPlan::Update { access, assignments, .. } => {
                assert!(matches!(access, Access::PointGet { .. }));
                assert_eq!(assignments, vec![(1, Literal::Param(0))]);
            }
            _ => panic!(),
        }
        assert!(matches!(
            plan_sql("UPDATE users SET id = 9 WHERE id = 1"),
            Err(StoreError::Unsupported(_))
        ));
    }

    #[test]
    fn insert_arity_checked_at_plan_time() {
        assert!(plan_sql("INSERT INTO users VALUES (1, 'a', 2)").is_ok());
        assert!(matches!(
            plan_sql("INSERT INTO users VALUES (1, 'a')"),
            Err(StoreError::ArityMismatch { expected: 3, got: 2 })
        ));
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(matches!(
            plan_sql("SELECT * FROM ghosts"),
            Err(StoreError::UnknownTable(_))
        ));
        assert!(matches!(
            plan_sql("SELECT nope FROM users"),
            Err(StoreError::UnknownColumn { .. })
        ));
        assert!(plan_sql("SELECT * FROM users WHERE wrong.id = 1").is_err());
    }

    #[test]
    fn delete_uses_index_when_available() {
        match plan_sql("DELETE FROM users WHERE org = 3").unwrap() {
            PhysicalPlan::Delete { access, .. } => {
                assert!(matches!(access, Access::IndexEq { column: 2, .. }));
            }
            _ => panic!(),
        }
    }
}
