//! Plan execution.
//!
//! The executor runs a [`PhysicalPlan`] against a [`RowStore`] — the
//! abstraction over "where rows actually live". In unit tests that is the
//! in-process [`MemStore`]; in the full deployment it is the cluster's
//! storage tier, whose implementation charges CPU to the right pods as the
//! executor pulls rows through it.
//!
//! Reads produce rows (plus MVCC versions); writes produce a [`WriteBatch`]
//! of low-level KV mutations (record row + index maintenance) that the
//! caller routes through Raft. The executor never applies writes itself:
//! commit versions are assigned at apply time by the replication layer.

use crate::error::{StoreError, StoreResult};
use crate::kv::{index_key, record_key, KvEngine};
use crate::row::Row;
use crate::schema::{Catalog, TableSchema};
use crate::sql::ast::Literal;
use crate::sql::plan::{
    Access, BoundPredicate, BoundProjection, JoinAccess, OutputCol, PhysicalPlan, SelectPlan,
};
use crate::value::Datum;
use serde::{Deserialize, Serialize};

/// Where rows live. `point_get` returns the row and its MVCC version.
pub trait RowStore {
    fn point_get(&mut self, table: &str, pk: &Datum) -> StoreResult<Option<(Row, u64)>>;
    fn index_lookup(
        &mut self,
        table: &str,
        column: usize,
        value: &Datum,
    ) -> StoreResult<Vec<(Row, u64)>>;
    /// Rows whose indexed `column` value lies in `[lo, hi]` (sides optional,
    /// conservatively inclusive — the executor re-applies the exact
    /// predicate as a residual filter).
    fn index_range(
        &mut self,
        table: &str,
        column: usize,
        lo: Option<&Datum>,
        hi: Option<&Datum>,
    ) -> StoreResult<Vec<(Row, u64)>>;
    /// Rows whose primary key lies in `[lo, hi]` (sides optional).
    fn pk_range(
        &mut self,
        table: &str,
        lo: Option<&Datum>,
        hi: Option<&Datum>,
    ) -> StoreResult<Vec<(Row, u64)>>;
    fn full_scan(&mut self, table: &str) -> StoreResult<Vec<(Row, u64)>>;
}

/// Execution statistics, the raw material of storage CPU accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Rows pulled from the store (visited, not necessarily returned).
    pub rows_visited: u64,
    /// Rows in the final result.
    pub rows_returned: u64,
    /// Logical bytes of rows pulled from the store.
    pub bytes_read: u64,
    /// Whether an index or PK access path was used.
    pub used_index: bool,
    /// Number of full table scans performed (including join-side scans).
    pub full_scans: u64,
}

/// One low-level KV mutation (`None` value = tombstone).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mutation {
    pub key: Vec<u8>,
    pub value: Option<Vec<u8>>,
}

/// All mutations produced by one write statement.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WriteBatch {
    pub table: String,
    /// Record mutation first, index maintenance after.
    pub mutations: Vec<Mutation>,
    /// Primary keys of rows touched (for cache invalidation upstream).
    pub touched_pks: Vec<Datum>,
    /// Logical bytes of the new row images (what replication would ship).
    pub logical_bytes: u64,
}

impl WriteBatch {
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }
}

/// Result of executing one plan.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    pub rows: Vec<Row>,
    /// MVCC version per returned row (left table's row version).
    pub versions: Vec<u64>,
    pub stats: ExecStats,
    /// Present iff the statement was a write.
    pub write: Option<WriteBatch>,
}

fn resolve<'a>(lit: &'a Literal, params: &'a [Datum]) -> StoreResult<&'a Datum> {
    lit.resolve(params).ok_or(StoreError::ArityMismatch {
        expected: match lit {
            Literal::Param(i) => i + 1,
            Literal::Datum(_) => 0,
        },
        got: params.len(),
    })
}

fn matches_all(row: &Row, preds: &[BoundPredicate], params: &[Datum]) -> StoreResult<bool> {
    for p in preds {
        let rhs = resolve(&p.value, params)?;
        let lhs = row.get(p.column).unwrap_or(&Datum::Null);
        if !p.op.eval(lhs.sql_cmp(rhs)) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Fetch candidate rows for an access path, updating stats.
fn fetch(
    store: &mut dyn RowStore,
    table: &str,
    access: &Access,
    params: &[Datum],
    stats: &mut ExecStats,
) -> StoreResult<Vec<(Row, u64)>> {
    let rows = match access {
        Access::PointGet { value } => {
            stats.used_index = true;
            let pk = resolve(value, params)?;
            store.point_get(table, pk)?.into_iter().collect()
        }
        Access::IndexEq { column, value } => {
            stats.used_index = true;
            let v = resolve(value, params)?;
            store.index_lookup(table, *column, v)?
        }
        Access::IndexRange { column, lo, hi } => {
            stats.used_index = true;
            let lo = lo.as_ref().map(|l| resolve(l, params)).transpose()?;
            let hi = hi.as_ref().map(|h| resolve(h, params)).transpose()?;
            store.index_range(table, *column, lo, hi)?
        }
        Access::PkRange { lo, hi } => {
            stats.used_index = true;
            let lo = lo.as_ref().map(|l| resolve(l, params)).transpose()?;
            let hi = hi.as_ref().map(|h| resolve(h, params)).transpose()?;
            store.pk_range(table, lo, hi)?
        }
        Access::FullScan => {
            stats.full_scans += 1;
            store.full_scan(table)?
        }
    };
    stats.rows_visited += rows.len() as u64;
    stats.bytes_read += rows.iter().map(|(r, _)| r.encoded_size()).sum::<u64>();
    Ok(rows)
}

/// Execute a plan. See module docs for the read/write split.
pub fn execute(
    catalog: &Catalog,
    plan: &PhysicalPlan,
    params: &[Datum],
    store: &mut dyn RowStore,
) -> StoreResult<ExecOutcome> {
    match plan {
        PhysicalPlan::Select(s) => execute_select(catalog, s, params, store),
        PhysicalPlan::Insert { table, values, replace } => {
            execute_insert(catalog, table, values, *replace, params, store)
        }
        PhysicalPlan::Update {
            table,
            access,
            residual,
            assignments,
        } => execute_update(catalog, table, access, residual, assignments, params, store),
        PhysicalPlan::Delete {
            table,
            access,
            residual,
        } => execute_delete(catalog, table, access, residual, params, store),
    }
}

fn execute_select(
    catalog: &Catalog,
    s: &SelectPlan,
    params: &[Datum],
    store: &mut dyn RowStore,
) -> StoreResult<ExecOutcome> {
    let mut stats = ExecStats::default();
    let left_rows = fetch(store, &s.table, &s.access, params, &mut stats)?;

    // LIMIT can only short-circuit when no sort reorders rows afterwards.
    let early_limit = if s.order_by.is_none() { s.limit } else { None };

    // (left row, version, optional right row) tuples surviving filters.
    let mut joined: Vec<(Row, u64, Option<Row>)> = Vec::new();
    'left: for (lrow, lver) in left_rows {
        if !matches_all(&lrow, &s.residual, params)? {
            continue;
        }
        match &s.join {
            None => {
                joined.push((lrow, lver, None));
            }
            Some(j) => {
                let key = lrow.get(j.left_col).unwrap_or(&Datum::Null).clone();
                if key.is_null() {
                    continue; // NULL join keys match nothing
                }
                let right_rows: Vec<(Row, u64)> = match j.access {
                    JoinAccess::ByPk => {
                        stats.used_index = true;
                        let r = store.point_get(&j.table, &key)?;
                        r.into_iter().collect()
                    }
                    JoinAccess::ByIndex => {
                        stats.used_index = true;
                        store.index_lookup(&j.table, j.right_col, &key)?
                    }
                    JoinAccess::Scan => {
                        stats.full_scans += 1;
                        store
                            .full_scan(&j.table)?
                            .into_iter()
                            .filter(|(r, _)| {
                                r.get(j.right_col)
                                    .map(|v| v.sql_eq(&key))
                                    .unwrap_or(false)
                            })
                            .collect()
                    }
                };
                stats.rows_visited += right_rows.len() as u64;
                stats.bytes_read += right_rows.iter().map(|(r, _)| r.encoded_size()).sum::<u64>();
                for (rrow, _rver) in right_rows {
                    if !matches_all(&rrow, &j.residual, params)? {
                        continue;
                    }
                    joined.push((lrow.clone(), lver, Some(rrow)));
                    if let Some(limit) = early_limit {
                        if joined.len() as u64 >= limit {
                            break 'left;
                        }
                    }
                }
            }
        }
        if let Some(limit) = early_limit {
            if joined.len() as u64 >= limit {
                break;
            }
        }
    }

    if let Some((col, descending)) = s.order_by {
        joined.sort_by(|(a, _, _), (b, _, _)| {
            let lhs = a.get(col).unwrap_or(&Datum::Null);
            let rhs = b.get(col).unwrap_or(&Datum::Null);
            // NULLs first; incomparable pairs keep insertion order (Equal).
            let ord = match (lhs.is_null(), rhs.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                (false, false) => lhs.sql_cmp(rhs).unwrap_or(std::cmp::Ordering::Equal),
            };
            if descending {
                ord.reverse()
            } else {
                ord
            }
        });
    }

    if let Some(limit) = s.limit {
        joined.truncate(limit as usize);
    }

    let mut out = ExecOutcome::default();
    match &s.projection {
        BoundProjection::CountStar => {
            out.rows.push(Row(vec![Datum::Int(joined.len() as i64)]));
            out.versions.push(0);
        }
        BoundProjection::Star => {
            for (lrow, lver, rrow) in joined {
                let mut row = lrow;
                if let Some(r) = rrow {
                    row.0.extend(r.0);
                }
                out.rows.push(row);
                out.versions.push(lver);
            }
        }
        BoundProjection::Columns(cols) => {
            for (lrow, lver, rrow) in joined {
                let mut row = Row::default();
                for c in cols {
                    row.0.push(match c {
                        OutputCol::Left(i) => lrow.get(*i).cloned().unwrap_or(Datum::Null),
                        OutputCol::Right(i) => rrow
                            .as_ref()
                            .and_then(|r| r.get(*i).cloned())
                            .unwrap_or(Datum::Null),
                        OutputCol::Version => Datum::Int(lver as i64),
                    });
                }
                out.rows.push(row);
                out.versions.push(lver);
            }
        }
    }
    stats.rows_returned = out.rows.len() as u64;
    // Validate plan-time arity assumptions eagerly (catalog may be stale).
    catalog.get(&s.table)?;
    out.stats = stats;
    Ok(out)
}

/// Index-maintenance mutations for removing `row`'s entries.
fn index_deletes(schema: &TableSchema, row: &Row) -> Vec<Mutation> {
    let pk = schema.pk_of(row);
    schema
        .indexes
        .iter()
        .map(|&col| Mutation {
            key: index_key(&schema.name, col, row.get(col).unwrap_or(&Datum::Null), pk),
            value: None,
        })
        .collect()
}

/// Index-maintenance mutations for adding `row`'s entries. The entry's
/// value is the row's record key, so range scans can locate rows without
/// decoding variable-length key suffixes.
fn index_puts(schema: &TableSchema, row: &Row) -> Vec<Mutation> {
    let pk = schema.pk_of(row);
    schema
        .indexes
        .iter()
        .map(|&col| Mutation {
            key: index_key(&schema.name, col, row.get(col).unwrap_or(&Datum::Null), pk),
            value: Some(record_key(&schema.name, pk)),
        })
        .collect()
}

fn execute_insert(
    catalog: &Catalog,
    table: &str,
    values: &[Literal],
    replace: bool,
    params: &[Datum],
    store: &mut dyn RowStore,
) -> StoreResult<ExecOutcome> {
    let schema = catalog.get(table)?;
    let row = Row(values
        .iter()
        .map(|l| resolve(l, params).cloned())
        .collect::<StoreResult<Vec<_>>>()?);
    schema.validate(&row)?;
    let pk = schema.pk_of(&row).clone();

    let mut stats = ExecStats::default();
    let existing = {
        stats.used_index = true;
        let got = store.point_get(table, &pk)?;
        if let Some((r, _)) = &got {
            stats.rows_visited += 1;
            stats.bytes_read += r.encoded_size();
        }
        got
    };
    let mut batch = WriteBatch {
        table: table.to_string(),
        ..Default::default()
    };
    match existing {
        Some(_) if !replace => return Err(StoreError::DuplicateKey(pk.to_string())),
        Some((old, _)) => {
            batch.mutations.extend(index_deletes(schema, &old));
        }
        None => {}
    }
    batch.logical_bytes = row.encoded_size();
    batch.mutations.insert(
        0,
        Mutation {
            key: record_key(table, &pk),
            value: Some(row.encode()),
        },
    );
    batch.mutations.extend(index_puts(schema, &row));
    batch.touched_pks.push(pk);

    Ok(ExecOutcome {
        stats,
        write: Some(batch),
        ..Default::default()
    })
}

fn execute_update(
    catalog: &Catalog,
    table: &str,
    access: &Access,
    residual: &[BoundPredicate],
    assignments: &[(usize, Literal)],
    params: &[Datum],
    store: &mut dyn RowStore,
) -> StoreResult<ExecOutcome> {
    let schema = catalog.get(table)?;
    let mut stats = ExecStats::default();
    let candidates = fetch(store, table, access, params, &mut stats)?;
    let mut batch = WriteBatch {
        table: table.to_string(),
        ..Default::default()
    };
    for (old, _ver) in candidates {
        if !matches_all(&old, residual, params)? {
            continue;
        }
        let mut new = old.clone();
        for (col, lit) in assignments {
            new.0[*col] = resolve(lit, params)?.clone();
        }
        schema.validate(&new)?;
        let pk = schema.pk_of(&new).clone();
        // Only rewrite index entries for columns that changed.
        for m in index_deletes(schema, &old)
            .into_iter()
            .zip(index_puts(schema, &new))
            .filter(|(del, put)| del.key != put.key)
            .flat_map(|(del, put)| [del, put])
        {
            batch.mutations.push(m);
        }
        batch.logical_bytes += new.encoded_size();
        batch.mutations.insert(
            0,
            Mutation {
                key: record_key(table, &pk),
                value: Some(new.encode()),
            },
        );
        batch.touched_pks.push(pk);
    }
    Ok(ExecOutcome {
        stats,
        write: Some(batch),
        ..Default::default()
    })
}

fn execute_delete(
    catalog: &Catalog,
    table: &str,
    access: &Access,
    residual: &[BoundPredicate],
    params: &[Datum],
    store: &mut dyn RowStore,
) -> StoreResult<ExecOutcome> {
    let schema = catalog.get(table)?;
    let mut stats = ExecStats::default();
    let candidates = fetch(store, table, access, params, &mut stats)?;
    let mut batch = WriteBatch {
        table: table.to_string(),
        ..Default::default()
    };
    for (old, _ver) in candidates {
        if !matches_all(&old, residual, params)? {
            continue;
        }
        let pk = schema.pk_of(&old).clone();
        batch.mutations.push(Mutation {
            key: record_key(table, &pk),
            value: None,
        });
        batch.mutations.extend(index_deletes(schema, &old));
        batch.touched_pks.push(pk);
    }
    Ok(ExecOutcome {
        stats,
        write: Some(batch),
        ..Default::default()
    })
}

// ---------------------------------------------------------------------------
// MemStore: a single-node RowStore over one KvEngine
// ---------------------------------------------------------------------------

/// A simple single-node store: one [`KvEngine`], no replication, no block
/// cache. Used by unit tests and as the state machine replicas apply into.
#[derive(Debug, Default)]
pub struct MemStore {
    pub kv: KvEngine,
    pub catalog: Catalog,
}

impl MemStore {
    pub fn new(catalog: Catalog) -> Self {
        MemStore {
            kv: KvEngine::new(),
            catalog,
        }
    }

    /// Apply a write batch, assigning fresh commit versions. Returns the
    /// version of the record mutation (the row's new MVCC version).
    pub fn apply(&mut self, batch: &WriteBatch) -> u64 {
        let mut row_version = 0;
        for (i, m) in batch.mutations.iter().enumerate() {
            let v = match &m.value {
                Some(bytes) => self.kv.put(m.key.clone(), bytes.clone()),
                None => self.kv.delete(m.key.clone()),
            };
            if i == 0 {
                row_version = v;
            }
        }
        row_version
    }

    /// Parse, plan, execute, and apply (if a write) in one call.
    pub fn run(&mut self, sql: &str, params: &[Datum]) -> StoreResult<ExecOutcome> {
        let stmt = crate::sql::parser::parse(sql)?;
        let plan = crate::sql::plan::plan(&self.catalog, &stmt)?;
        let catalog = self.catalog.clone();
        let mut outcome = execute(&catalog, &plan, params, self)?;
        if let Some(batch) = &outcome.write {
            let v = self.apply(batch);
            outcome.versions.push(v);
        }
        Ok(outcome)
    }
}

impl RowStore for MemStore {
    fn point_get(&mut self, table: &str, pk: &Datum) -> StoreResult<Option<(Row, u64)>> {
        let key = record_key(table, pk);
        match self.kv.get_latest(&key) {
            None => Ok(None),
            Some(v) => Ok(Some((Row::decode(v.value)?, v.version))),
        }
    }

    fn index_lookup(
        &mut self,
        table: &str,
        column: usize,
        value: &Datum,
    ) -> StoreResult<Vec<(Row, u64)>> {
        let prefix = crate::kv::index_prefix(table, column, value);
        let record_keys: Vec<Vec<u8>> = self
            .kv
            .scan_prefix(&prefix, u64::MAX)
            .map(|(_, v)| v.value.to_vec())
            .collect();
        let mut rows = Vec::new();
        for key in record_keys {
            if let Some(v) = self.kv.get_latest(&key) {
                rows.push((Row::decode(v.value)?, v.version));
            }
        }
        Ok(rows)
    }

    fn index_range(
        &mut self,
        table: &str,
        column: usize,
        lo: Option<&Datum>,
        hi: Option<&Datum>,
    ) -> StoreResult<Vec<(Row, u64)>> {
        let (start, end) = crate::kv::index_range_bounds(table, column, lo, hi);
        let record_keys: Vec<Vec<u8>> = self
            .kv
            .scan_between(&start, end.as_deref(), u64::MAX)
            .map(|(_, v)| v.value.to_vec())
            .collect();
        let mut rows = Vec::new();
        for key in record_keys {
            if let Some(v) = self.kv.get_latest(&key) {
                rows.push((Row::decode(v.value)?, v.version));
            }
        }
        Ok(rows)
    }

    fn pk_range(
        &mut self,
        table: &str,
        lo: Option<&Datum>,
        hi: Option<&Datum>,
    ) -> StoreResult<Vec<(Row, u64)>> {
        let (start, end) = crate::kv::record_range_bounds(table, lo, hi);
        self.kv
            .scan_between(&start, end.as_deref(), u64::MAX)
            .map(|(_, v)| Ok((Row::decode(v.value)?, v.version)))
            .collect()
    }

    fn full_scan(&mut self, table: &str) -> StoreResult<Vec<(Row, u64)>> {
        let prefix = crate::kv::record_prefix(table);
        self.kv
            .scan_prefix(&prefix, u64::MAX)
            .map(|(_, v)| Ok((Row::decode(v.value)?, v.version)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType, TableSchema};

    fn store() -> MemStore {
        let mut catalog = Catalog::new();
        catalog.add(
            TableSchema::new(
                "users",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("name", ColumnType::Text),
                    ColumnDef::new("org", ColumnType::Int),
                ],
                "id",
                &["org"],
            )
            .unwrap(),
        );
        catalog.add(
            TableSchema::new(
                "orgs",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("title", ColumnType::Text),
                ],
                "id",
                &[],
            )
            .unwrap(),
        );
        let mut s = MemStore::new(catalog);
        for (id, name, org) in [(1, "ada", 10), (2, "bob", 10), (3, "cyd", 20)] {
            s.run(
                "INSERT INTO users VALUES (?, ?, ?)",
                &[id.into(), name.into(), (org as i64).into()],
            )
            .unwrap();
        }
        s.run("INSERT INTO orgs VALUES (10, 'eng')", &[]).unwrap();
        s.run("INSERT INTO orgs VALUES (20, 'ops')", &[]).unwrap();
        s
    }

    #[test]
    fn point_select_returns_one_row() {
        let mut s = store();
        let out = s.run("SELECT * FROM users WHERE id = 2", &[]).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get(1), Some(&Datum::Text("bob".into())));
        assert_eq!(out.stats.rows_visited, 1);
        assert!(out.stats.used_index);
        assert_eq!(out.stats.full_scans, 0);
    }

    #[test]
    fn index_lookup_finds_all_matches() {
        let mut s = store();
        let out = s.run("SELECT name FROM users WHERE org = 10", &[]).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.stats.rows_visited, 2);
        assert!(out.stats.used_index);
    }

    #[test]
    fn full_scan_with_residual_filter() {
        let mut s = store();
        let out = s
            .run("SELECT id FROM users WHERE name = 'cyd'", &[])
            .unwrap();
        assert_eq!(out.rows, vec![Row(vec![Datum::Int(3)])]);
        assert_eq!(out.stats.rows_visited, 3, "full scan visits everything");
        assert_eq!(out.stats.full_scans, 1);
    }

    #[test]
    fn join_by_pk_returns_combined_columns() {
        let mut s = store();
        let out = s
            .run(
                "SELECT name, title FROM users JOIN orgs ON users.org = orgs.id \
                 WHERE users.id = 1",
                &[],
            )
            .unwrap();
        assert_eq!(
            out.rows,
            vec![Row(vec!["ada".into(), "eng".into()])]
        );
    }

    #[test]
    fn join_star_concatenates_rows() {
        let mut s = store();
        let out = s
            .run(
                "SELECT * FROM users JOIN orgs ON users.org = orgs.id WHERE users.id = 3",
                &[],
            )
            .unwrap();
        assert_eq!(out.rows[0].len(), 5);
        assert_eq!(out.rows[0].get(4), Some(&Datum::Text("ops".into())));
    }

    #[test]
    fn count_star_counts_matches() {
        let mut s = store();
        let out = s.run("SELECT COUNT(*) FROM users WHERE org = 10", &[]).unwrap();
        assert_eq!(out.rows, vec![Row(vec![Datum::Int(2)])]);
    }

    #[test]
    fn limit_truncates_and_short_circuits() {
        let mut s = store();
        let out = s.run("SELECT * FROM users LIMIT 2", &[]).unwrap();
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn version_pseudo_column_tracks_updates() {
        let mut s = store();
        let v1 = s
            .run("SELECT _version FROM users WHERE id = 1", &[])
            .unwrap()
            .rows[0]
            .get(0)
            .unwrap()
            .as_int()
            .unwrap();
        s.run("UPDATE users SET name = 'ada2' WHERE id = 1", &[])
            .unwrap();
        let v2 = s
            .run("SELECT _version FROM users WHERE id = 1", &[])
            .unwrap()
            .rows[0]
            .get(0)
            .unwrap()
            .as_int()
            .unwrap();
        assert!(v2 > v1, "version must advance on update: {v1} -> {v2}");
    }

    #[test]
    fn update_rewrites_index_entries() {
        let mut s = store();
        s.run("UPDATE users SET org = 20 WHERE id = 1", &[]).unwrap();
        let ten = s.run("SELECT COUNT(*) FROM users WHERE org = 10", &[]).unwrap();
        let twenty = s.run("SELECT COUNT(*) FROM users WHERE org = 20", &[]).unwrap();
        assert_eq!(ten.rows[0].get(0), Some(&Datum::Int(1)));
        assert_eq!(twenty.rows[0].get(0), Some(&Datum::Int(2)));
    }

    #[test]
    fn update_without_index_change_keeps_entries() {
        let mut s = store();
        s.run("UPDATE users SET name = 'x' WHERE id = 1", &[]).unwrap();
        let out = s.run("SELECT name FROM users WHERE org = 10", &[]).unwrap();
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn delete_removes_row_and_index_entries() {
        let mut s = store();
        s.run("DELETE FROM users WHERE id = 2", &[]).unwrap();
        assert!(s.run("SELECT * FROM users WHERE id = 2", &[]).unwrap().rows.is_empty());
        let by_org = s.run("SELECT * FROM users WHERE org = 10", &[]).unwrap();
        assert_eq!(by_org.rows.len(), 1);
    }

    #[test]
    fn duplicate_insert_rejected_replace_allowed() {
        let mut s = store();
        let err = s
            .run("INSERT INTO users VALUES (1, 'dup', 30)", &[])
            .unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey(_)));
        s.run("REPLACE INTO users VALUES (1, 'new', 30)", &[]).unwrap();
        let out = s.run("SELECT name, org FROM users WHERE id = 1", &[]).unwrap();
        assert_eq!(out.rows, vec![Row(vec!["new".into(), Datum::Int(30)])]);
        // old index entry must be gone, new one present
        assert!(s.run("SELECT * FROM users WHERE org = 10", &[]).unwrap().rows.len() == 1);
        assert!(s.run("SELECT * FROM users WHERE org = 30", &[]).unwrap().rows.len() == 1);
    }

    #[test]
    fn missing_params_error_cleanly() {
        let mut s = store();
        let err = s.run("SELECT * FROM users WHERE id = ?", &[]).unwrap_err();
        assert!(matches!(err, StoreError::ArityMismatch { .. }));
    }

    #[test]
    fn null_join_keys_match_nothing() {
        let mut s = store();
        s.run(
            "INSERT INTO users VALUES (9, 'nil', ?)",
            &[Datum::Null],
        )
        .unwrap();
        let out = s
            .run(
                "SELECT * FROM users JOIN orgs ON users.org = orgs.id WHERE users.id = 9",
                &[],
            )
            .unwrap();
        assert!(out.rows.is_empty());
    }

    #[test]
    fn update_by_index_touches_only_matches() {
        let mut s = store();
        let out = s
            .run("UPDATE users SET name = 'multi' WHERE org = 10", &[])
            .unwrap();
        assert_eq!(out.write.as_ref().unwrap().touched_pks.len(), 2);
        let names = s.run("SELECT name FROM users WHERE org = 10", &[]).unwrap();
        for row in names.rows {
            assert_eq!(row.get(0), Some(&Datum::Text("multi".into())));
        }
    }

    #[test]
    fn order_by_sorts_and_limits_correctly() {
        let mut s = store();
        let out = s.run("SELECT name FROM users ORDER BY name DESC", &[]).unwrap();
        let names: Vec<&str> = out.rows.iter().map(|r| r.get(0).unwrap().as_text().unwrap()).collect();
        assert_eq!(names, vec!["cyd", "bob", "ada"]);
        // Top-N: LIMIT must apply AFTER the sort, not short-circuit it.
        let out = s.run("SELECT id FROM users ORDER BY id DESC LIMIT 1", &[]).unwrap();
        assert_eq!(out.rows, vec![Row(vec![Datum::Int(3)])]);
        // Ascending default.
        let out = s.run("SELECT id FROM users ORDER BY org ASC LIMIT 2", &[]).unwrap();
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn order_by_puts_nulls_first() {
        let mut s = store();
        s.run("INSERT INTO users VALUES (9, 'nil', ?)", &[Datum::Null]).unwrap();
        let out = s.run("SELECT id FROM users ORDER BY org LIMIT 1", &[]).unwrap();
        assert_eq!(out.rows, vec![Row(vec![Datum::Int(9)])]);
    }

    #[test]
    fn order_by_on_join_right_table_is_unsupported() {
        let mut s = store();
        let err = s
            .run(
                "SELECT * FROM users JOIN orgs ON users.org = orgs.id ORDER BY orgs.title",
                &[],
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::Unsupported(_)));
    }

    #[test]
    fn pk_range_queries_return_exact_rows() {
        let mut s = store();
        // ids are 1, 2, 3
        let out = s.run("SELECT id FROM users WHERE id > 1 AND id <= 3", &[]).unwrap();
        let ids: Vec<i64> = out.rows.iter().map(|r| r.get(0).unwrap().as_int().unwrap()).collect();
        assert_eq!(ids, vec![2, 3]);
        assert!(out.stats.used_index, "pk range must not full-scan");
        assert_eq!(out.stats.full_scans, 0);
        // Exclusive bounds are exact despite conservative byte ranges.
        let out = s.run("SELECT id FROM users WHERE id > 1 AND id < 3", &[]).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get(0), Some(&Datum::Int(2)));
    }

    #[test]
    fn index_range_queries_use_the_index() {
        let mut s = store();
        // orgs are 10, 10, 20
        let out = s.run("SELECT name FROM users WHERE org >= 15", &[]).unwrap();
        assert_eq!(out.rows, vec![Row(vec!["cyd".into()])]);
        assert!(out.stats.used_index);
        assert_eq!(out.stats.full_scans, 0);
        let all = s.run("SELECT COUNT(*) FROM users WHERE org > 5 AND org < 25", &[]).unwrap();
        assert_eq!(all.rows[0].get(0), Some(&Datum::Int(3)));
    }

    #[test]
    fn range_bounds_resolve_from_params() {
        let mut s = store();
        let out = s
            .run("SELECT id FROM users WHERE id >= ? AND id <= ?", &[1.into(), 2.into()])
            .unwrap();
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn ranges_reflect_updates_and_deletes() {
        let mut s = store();
        s.run("UPDATE users SET org = 30 WHERE id = 3", &[]).unwrap();
        let out = s.run("SELECT COUNT(*) FROM users WHERE org >= 25", &[]).unwrap();
        assert_eq!(out.rows[0].get(0), Some(&Datum::Int(1)));
        s.run("DELETE FROM users WHERE id = 3", &[]).unwrap();
        let out = s.run("SELECT COUNT(*) FROM users WHERE org >= 25", &[]).unwrap();
        assert_eq!(out.rows[0].get(0), Some(&Datum::Int(0)));
    }

    #[test]
    fn payload_values_flow_through_params() {
        let mut catalog = Catalog::new();
        catalog.add(
            TableSchema::new(
                "kv",
                vec![
                    ColumnDef::new("k", ColumnType::Int),
                    ColumnDef::new("v", ColumnType::Bytes),
                ],
                "k",
                &[],
            )
            .unwrap(),
        );
        let mut s = MemStore::new(catalog);
        let payload = Datum::Payload { len: 1 << 20, seed: 5 };
        s.run("INSERT INTO kv VALUES (?, ?)", &[1.into(), payload.clone()])
            .unwrap();
        let out = s.run("SELECT v FROM kv WHERE k = 1", &[]).unwrap();
        assert_eq!(out.rows[0].get(0), Some(&payload));
        assert!(out.stats.bytes_read > 1 << 20, "logical bytes accounted");
    }
}
