//! Recursive-descent parser for the SQL subset.

use crate::error::{StoreError, StoreResult};
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Token, TokenKind};
use crate::value::Datum;

/// Parse one statement.
pub fn parse(sql: &str) -> StoreResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        self.pos += 1;
        t
    }

    fn err<T>(&self, message: &str) -> StoreResult<T> {
        Err(StoreError::Syntax {
            pos: self.peek().pos,
            message: message.to_string(),
        })
    }

    fn eat_kw(&mut self, word: &str) -> bool {
        if self.peek().kind.is_kw(word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, word: &str) -> StoreResult<()> {
        if self.eat_kw(word) {
            Ok(())
        } else {
            self.err(&format!("expected {word}"))
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> StoreResult<()> {
        if &self.peek().kind == kind {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {what}"))
        }
    }

    fn expect_eof(&mut self) -> StoreResult<()> {
        if matches!(self.peek().kind, TokenKind::Eof) {
            Ok(())
        } else {
            self.err("unexpected trailing input")
        }
    }

    fn ident(&mut self, what: &str) -> StoreResult<String> {
        match self.bump().kind {
            TokenKind::Ident(s) => Ok(s),
            _ => self.err(what),
        }
    }

    fn statement(&mut self) -> StoreResult<Statement> {
        if self.eat_kw("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_kw("INSERT") {
            Ok(Statement::Insert(self.insert(false)?))
        } else if self.eat_kw("REPLACE") {
            Ok(Statement::Insert(self.insert(true)?))
        } else if self.eat_kw("UPDATE") {
            Ok(Statement::Update(self.update()?))
        } else if self.eat_kw("DELETE") {
            Ok(Statement::Delete(self.delete()?))
        } else {
            self.err("expected SELECT, INSERT, UPDATE or DELETE")
        }
    }

    fn select(&mut self) -> StoreResult<SelectStmt> {
        let projection = self.projection()?;
        self.expect_kw("FROM")?;
        let table = self.ident("expected table name")?;
        let join = if self.eat_kw("JOIN") || (self.eat_kw("INNER") && self.eat_kw("JOIN")) {
            let join_table = self.ident("expected join table")?;
            self.expect_kw("ON")?;
            let left = self.col_ref()?;
            self.expect(&TokenKind::Eq, "'=' in join condition")?;
            let right = self.col_ref()?;
            Some(JoinClause {
                table: join_table,
                left,
                right,
            })
        } else {
            None
        };
        let predicates = self.where_clause()?;
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let col = self.col_ref()?;
            let descending = if self.eat_kw("DESC") {
                true
            } else {
                self.eat_kw("ASC");
                false
            };
            Some(OrderBy { col, descending })
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            match self.bump().kind {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                _ => return self.err("expected non-negative LIMIT"),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            table,
            join,
            projection,
            predicates,
            order_by,
            limit,
        })
    }

    fn projection(&mut self) -> StoreResult<Projection> {
        if matches!(self.peek().kind, TokenKind::Star) {
            self.pos += 1;
            return Ok(Projection::Star);
        }
        if self.peek().kind.is_kw("COUNT") {
            self.pos += 1;
            self.expect(&TokenKind::LParen, "'(' after COUNT")?;
            self.expect(&TokenKind::Star, "'*' in COUNT(*)")?;
            self.expect(&TokenKind::RParen, "')' after COUNT(*")?;
            return Ok(Projection::CountStar);
        }
        let mut cols = vec![self.col_ref()?];
        while matches!(self.peek().kind, TokenKind::Comma) {
            self.pos += 1;
            cols.push(self.col_ref()?);
        }
        Ok(Projection::Columns(cols))
    }

    fn col_ref(&mut self) -> StoreResult<ColRef> {
        let first = self.ident("expected column name")?;
        if matches!(self.peek().kind, TokenKind::Dot) {
            self.pos += 1;
            let column = self.ident("expected column after '.'")?;
            Ok(ColRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
            })
        }
    }

    fn where_clause(&mut self) -> StoreResult<Vec<Predicate>> {
        if !self.eat_kw("WHERE") {
            return Ok(Vec::new());
        }
        let mut preds = vec![self.predicate()?];
        while self.eat_kw("AND") {
            preds.push(self.predicate()?);
        }
        Ok(preds)
    }

    fn predicate(&mut self) -> StoreResult<Predicate> {
        let col = self.col_ref()?;
        let op = match self.bump().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Neq => CmpOp::Neq,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return self.err("expected comparison operator"),
        };
        let value = self.literal()?;
        Ok(Predicate { col, op, value })
    }

    fn literal(&mut self) -> StoreResult<Literal> {
        let tok = self.bump();
        Ok(match tok.kind {
            TokenKind::Int(i) => Literal::Datum(Datum::Int(i)),
            TokenKind::Float(x) => Literal::Datum(Datum::Float(x)),
            TokenKind::Str(s) => Literal::Datum(Datum::Text(s)),
            TokenKind::Param => {
                let idx = self.params;
                self.params += 1;
                Literal::Param(idx)
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("TRUE") => {
                Literal::Datum(Datum::Bool(true))
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("FALSE") => {
                Literal::Datum(Datum::Bool(false))
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("NULL") => Literal::Datum(Datum::Null),
            _ => return self.err("expected literal or '?'"),
        })
    }

    fn insert(&mut self, replace: bool) -> StoreResult<InsertStmt> {
        self.expect_kw("INTO")?;
        let table = self.ident("expected table name")?;
        self.expect_kw("VALUES")?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut values = vec![self.literal()?];
        while matches!(self.peek().kind, TokenKind::Comma) {
            self.pos += 1;
            values.push(self.literal()?);
        }
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(InsertStmt {
            table,
            values,
            replace,
        })
    }

    fn update(&mut self) -> StoreResult<UpdateStmt> {
        let table = self.ident("expected table name")?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident("expected column name")?;
            self.expect(&TokenKind::Eq, "'='")?;
            let lit = self.literal()?;
            assignments.push((col, lit));
            if !matches!(self.peek().kind, TokenKind::Comma) {
                break;
            }
            self.pos += 1;
        }
        let predicates = self.where_clause()?;
        Ok(UpdateStmt {
            table,
            assignments,
            predicates,
        })
    }

    fn delete(&mut self) -> StoreResult<DeleteStmt> {
        self.expect_kw("FROM")?;
        let table = self.ident("expected table name")?;
        let predicates = self.where_clause()?;
        Ok(DeleteStmt { table, predicates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_point_select() {
        let stmt = parse("SELECT * FROM users WHERE id = ?").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.table, "users");
                assert_eq!(s.projection, Projection::Star);
                assert_eq!(s.predicates.len(), 1);
                assert_eq!(s.predicates[0].value, Literal::Param(0));
                assert!(s.join.is_none());
                assert!(s.limit.is_none());
            }
            _ => panic!("not a select"),
        }
    }

    #[test]
    fn parses_column_list_and_limit() {
        let stmt = parse("select id, name from users where score >= 2.5 limit 10").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(
                    s.projection,
                    Projection::Columns(vec![ColRef::bare("id"), ColRef::bare("name")])
                );
                assert_eq!(s.limit, Some(10));
                assert_eq!(s.predicates[0].op, CmpOp::Ge);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_order_by() {
        match parse("SELECT * FROM t ORDER BY score DESC LIMIT 5").unwrap() {
            Statement::Select(s) => {
                let ob = s.order_by.unwrap();
                assert_eq!(ob.col, ColRef::bare("score"));
                assert!(ob.descending);
                assert_eq!(s.limit, Some(5));
            }
            _ => panic!(),
        }
        match parse("SELECT * FROM t WHERE a = 1 ORDER BY b").unwrap() {
            Statement::Select(s) => {
                assert!(!s.order_by.unwrap().descending);
            }
            _ => panic!(),
        }
        assert!(parse("SELECT * FROM t ORDER score").is_err());
    }

    #[test]
    fn parses_count_star() {
        let stmt = parse("SELECT COUNT(*) FROM t WHERE a = 1").unwrap();
        match stmt {
            Statement::Select(s) => assert_eq!(s.projection, Projection::CountStar),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_join() {
        let stmt = parse(
            "SELECT p.grantee FROM privileges p_ignored \
             JOIN principals ON privileges.grantee = principals.id \
             WHERE privileges.securable = ?",
        );
        // table alias syntax is not supported — that's a syntax error
        assert!(stmt.is_err());
        let stmt = parse(
            "SELECT * FROM privileges JOIN principals \
             ON privileges.grantee = principals.id WHERE privileges.securable = ?",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                let j = s.join.unwrap();
                assert_eq!(j.table, "principals");
                assert_eq!(j.left.to_string(), "privileges.grantee");
                assert_eq!(j.right.to_string(), "principals.id");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_insert_with_params() {
        let stmt = parse("INSERT INTO kv VALUES (?, ?, 'tag')").unwrap();
        match stmt {
            Statement::Insert(i) => {
                assert_eq!(i.table, "kv");
                assert!(!i.replace);
                assert_eq!(
                    i.values,
                    vec![
                        Literal::Param(0),
                        Literal::Param(1),
                        Literal::Datum(Datum::Text("tag".into()))
                    ]
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_replace() {
        match parse("REPLACE INTO kv VALUES (1, 2)").unwrap() {
            Statement::Insert(i) => assert!(i.replace),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_update() {
        let stmt = parse("UPDATE kv SET v = ?, ver = 2 WHERE k = ?").unwrap();
        match stmt {
            Statement::Update(u) => {
                assert_eq!(u.assignments.len(), 2);
                assert_eq!(u.assignments[0].0, "v");
                assert_eq!(u.predicates.len(), 1);
                // params number left to right: SET first, then WHERE
                assert_eq!(u.assignments[0].1, Literal::Param(0));
                assert_eq!(u.predicates[0].value, Literal::Param(1));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_delete() {
        let stmt = parse("DELETE FROM kv WHERE k = 'gone'").unwrap();
        match stmt {
            Statement::Delete(d) => {
                assert_eq!(d.table, "kv");
                assert_eq!(d.predicates.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn null_true_false_literals() {
        let stmt = parse("SELECT * FROM t WHERE a = NULL AND b = TRUE AND c = FALSE").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.predicates[0].value, Literal::Datum(Datum::Null));
                assert_eq!(s.predicates[1].value, Literal::Datum(Datum::Bool(true)));
                assert_eq!(s.predicates[2].value, Literal::Datum(Datum::Bool(false)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra").is_err());
        assert!(parse("DROP TABLE t").is_err());
        assert!(parse("INSERT INTO t VALUES (1").is_err());
        assert!(parse("SELECT * FROM t LIMIT -1").is_err());
    }

    #[test]
    fn error_positions_point_at_problem() {
        match parse("SELECT * FROM t WHERE id == 1") {
            Err(StoreError::Syntax { pos, .. }) => assert!(pos >= 26),
            other => panic!("unexpected {other:?}"),
        }
    }
}
