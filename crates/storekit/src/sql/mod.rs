//! The SQL subset engine.
//!
//! Pipeline: [`lexer`] tokenizes → [`parser`] builds an AST ([`ast`]) →
//! [`plan()`](plan::plan) resolves names against the catalog and picks an access path →
//! [`exec`] runs the physical plan against a [`exec::RowStore`].
//!
//! The subset is what the paper's workloads need — point reads, indexed
//! lookups, scans with predicates, a single equi-join, `COUNT(*)`, `LIMIT`,
//! parameterized statements (`?`), and single-table INSERT/UPDATE/DELETE —
//! implemented for real, so query costs (rows visited, bytes touched,
//! blocks missed) come out of execution rather than assumption.

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::Statement;
pub use exec::{ExecOutcome, ExecStats, RowStore, WriteBatch};
pub use parser::parse;
pub use plan::{plan, PhysicalPlan};
