//! Raft-style replicated regions.
//!
//! Each region is a replication group over a subset of storage pods: a
//! leader appends log entries, followers acknowledge, entries commit at the
//! quorum median, and replicas apply committed entries to their local KV
//! engines. Leader leases gate consistent reads — the component §5.5
//! identifies in the version-check cost ("TiDB's transaction layer validates
//! Raft leases").
//!
//! The group is driven synchronously by the cluster layer (the event kernel
//! provides timing); what is modeled faithfully is the *safety-relevant
//! bookkeeping*: per-replica match indices, quorum commit, lease expiry, and
//! failover that truncates uncommitted entries and never loses committed
//! ones. Tests exercise crash/elect schedules directly.

use crate::error::{StoreError, StoreResult};
use crate::sql::exec::WriteBatch;
use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};

/// One replicated log entry: a write batch bound for the region's replicas.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogEntry {
    pub term: u64,
    pub batch: WriteBatch,
    /// Logical bytes replicated (drives per-byte replication CPU).
    pub bytes: u64,
    /// Cluster-wide commit version assigned when the entry was proposed.
    pub version: u64,
}

/// Work the state machine must do: replica `slot` applies log entry `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOp {
    /// Index into the group's replica list.
    pub slot: usize,
    /// Zero-based log index to apply.
    pub index: usize,
}

/// A Raft group for one region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaftGroup {
    pub id: u64,
    /// Storage-pod indices hosting this region; `replicas[slot]`.
    pub replicas: Vec<usize>,
    term: u64,
    leader_slot: Option<usize>,
    log: Vec<LogEntry>,
    /// Entries committed (quorum-replicated): `log[..commit]`.
    commit: usize,
    /// Per-slot: entries present in that replica's log.
    match_len: Vec<usize>,
    /// Per-slot: entries applied to that replica's state machine.
    applied: Vec<usize>,
    alive: Vec<bool>,
    lease_until: SimTime,
    lease: SimDuration,
}

impl RaftGroup {
    /// Create a group led by `replicas[0]`, lease granted from `now`.
    pub fn new(id: u64, replicas: Vec<usize>, now: SimTime, lease: SimDuration) -> Self {
        assert!(!replicas.is_empty(), "region needs at least one replica");
        let n = replicas.len();
        RaftGroup {
            id,
            replicas,
            term: 1,
            leader_slot: Some(0),
            log: Vec::new(),
            commit: 0,
            match_len: vec![0; n],
            applied: vec![0; n],
            alive: vec![true; n],
            lease_until: now + lease,
            lease,
        }
    }

    pub fn term(&self) -> u64 {
        self.term
    }

    /// The storage-pod index of the current leader, if any.
    pub fn leader(&self) -> StoreResult<usize> {
        self.leader_slot
            .map(|s| self.replicas[s])
            .ok_or(StoreError::NoLeader { region: self.id })
    }

    pub fn leader_slot(&self) -> Option<usize> {
        self.leader_slot
    }

    pub fn committed(&self) -> usize {
        self.commit
    }

    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    pub fn entry(&self, index: usize) -> &LogEntry {
        &self.log[index]
    }

    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    fn quorum(&self) -> usize {
        self.replicas.len() / 2 + 1
    }

    /// Whether the leader's lease authorizes a local consistent read at `now`.
    pub fn lease_valid(&self, now: SimTime) -> bool {
        self.leader_slot.is_some() && now < self.lease_until
    }

    /// Renew the lease from `now` (quorum contact: writes, heartbeats,
    /// quorum reads).
    pub fn renew_lease(&mut self, now: SimTime) {
        if self.leader_slot.is_some() && self.alive_count() >= self.quorum() {
            self.lease_until = now + self.lease;
        }
    }

    /// Propose a write at the leader and drive it to commit: replicate to
    /// live followers, advance the quorum commit point, and return the apply
    /// work for every replica that can now apply entries. Fails without a
    /// leader or a live quorum (the entry is not appended in either case, so
    /// failed proposals leave no partial state).
    pub fn propose(
        &mut self,
        batch: WriteBatch,
        version: u64,
        now: SimTime,
    ) -> StoreResult<Vec<ApplyOp>> {
        let leader = self.leader_slot.ok_or(StoreError::NoLeader { region: self.id })?;
        if self.alive_count() < self.quorum() {
            return Err(StoreError::NoLeader { region: self.id });
        }
        let bytes = 64 + batch.logical_bytes; // entry header + payload
        self.log.push(LogEntry {
            term: self.term,
            batch,
            bytes,
            version,
        });
        self.match_len[leader] = self.log.len();
        self.renew_lease(now);
        Ok(self.replicate())
    }

    /// Bring live followers up to date, advance commit, and emit apply ops.
    fn replicate(&mut self) -> Vec<ApplyOp> {
        for slot in 0..self.replicas.len() {
            if self.alive[slot] {
                self.match_len[slot] = self.log.len();
            }
        }
        // Quorum commit: the largest index replicated on a majority.
        let mut sorted = self.match_len.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        self.commit = self.commit.max(sorted[self.quorum() - 1]);

        let mut ops = Vec::new();
        for slot in 0..self.replicas.len() {
            if !self.alive[slot] {
                continue;
            }
            let upto = self.commit.min(self.match_len[slot]);
            for index in self.applied[slot]..upto {
                ops.push(ApplyOp { slot, index });
            }
            self.applied[slot] = upto.max(self.applied[slot]);
        }
        ops
    }

    /// Crash a replica. If it was the leader, the region has no leader until
    /// [`RaftGroup::elect`] runs; its lease keeps gating reads until expiry.
    pub fn crash(&mut self, slot: usize) {
        self.alive[slot] = false;
        if self.leader_slot == Some(slot) {
            self.leader_slot = None;
        }
    }

    /// Restart a crashed replica. A crash loses volatile state, so the
    /// replica rejoins claiming only the prefix its state machine had
    /// actually applied — an entry it had appended but not applied when it
    /// crashed must be re-fetched from the leader, never silently
    /// resurrected. Recovery paths that replay a WAL should call
    /// [`RaftGroup::restart_recovered`] with the replayed prefix instead.
    pub fn restart(&mut self, slot: usize) {
        let durable = self.applied[slot];
        self.restart_recovered(slot, durable);
    }

    /// Rejoin a crashed replica whose recovery rebuilt `durable_len`
    /// entries (snapshot + synced WAL). The replica claims exactly that
    /// prefix: its match/applied indices are clamped so the leader
    /// re-replicates everything beyond it. `durable_len` is capped by what
    /// the replica had ever acknowledged — recovery cannot mint entries.
    pub fn restart_recovered(&mut self, slot: usize, durable_len: usize) {
        let durable = durable_len.min(self.match_len[slot]).min(self.log.len());
        self.alive[slot] = true;
        self.match_len[slot] = durable;
        self.applied[slot] = self.applied[slot].min(durable);
    }

    /// Elect a new leader: the live replica with the longest log (which,
    /// given quorum-commit, is guaranteed to hold every committed entry).
    /// Uncommitted tail entries beyond the new leader's log are discarded.
    pub fn elect(&mut self, now: SimTime) -> StoreResult<usize> {
        let candidate = (0..self.replicas.len())
            .filter(|&s| self.alive[s])
            .max_by_key(|&s| self.match_len[s])
            .ok_or(StoreError::NoLeader { region: self.id })?;
        if self.alive_count() < self.quorum() {
            return Err(StoreError::NoLeader { region: self.id });
        }
        assert!(
            self.match_len[candidate] >= self.commit,
            "safety: elected leader must hold all committed entries"
        );
        self.term += 1;
        self.leader_slot = Some(candidate);
        // Truncate uncommitted entries not on the new leader.
        self.log.truncate(self.match_len[candidate]);
        for slot in 0..self.replicas.len() {
            self.match_len[slot] = self.match_len[slot].min(self.log.len());
            self.applied[slot] = self.applied[slot].min(self.log.len());
        }
        self.lease_until = now + self.lease;
        Ok(self.replicas[candidate])
    }

    /// Heartbeat: re-replicates to stragglers (e.g. restarted replicas) and
    /// renews the lease. Returns apply work for replicas that caught up.
    pub fn tick(&mut self, now: SimTime) -> Vec<ApplyOp> {
        if self.leader_slot.is_none() {
            return Vec::new();
        }
        self.renew_lease(now);
        self.replicate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(bytes: u64) -> WriteBatch {
        WriteBatch {
            table: "t".into(),
            logical_bytes: bytes,
            ..Default::default()
        }
    }

    fn group() -> RaftGroup {
        RaftGroup::new(1, vec![10, 11, 12], SimTime::ZERO, SimDuration::from_secs(10))
    }

    #[test]
    fn propose_commits_and_applies_on_all_replicas() {
        let mut g = group();
        let ops = g.propose(batch(100), 1, SimTime::ZERO).unwrap();
        assert_eq!(g.committed(), 1);
        assert_eq!(ops.len(), 3, "all three replicas apply");
        assert!(ops.iter().all(|o| o.index == 0));
        let slots: Vec<_> = ops.iter().map(|o| o.slot).collect();
        assert_eq!(slots, vec![0, 1, 2]);
    }

    #[test]
    fn commit_survives_one_follower_crash() {
        let mut g = group();
        g.crash(2);
        let ops = g.propose(batch(1), 1, SimTime::ZERO).unwrap();
        assert_eq!(g.committed(), 1);
        assert_eq!(ops.len(), 2, "only live replicas apply");
    }

    #[test]
    fn no_quorum_blocks_writes() {
        let mut g = group();
        g.crash(1);
        g.crash(2);
        let err = g.propose(batch(1), 1, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, StoreError::NoLeader { region: 1 }));
        assert_eq!(g.log_len(), 0, "failed proposal leaves no partial state");
    }

    #[test]
    fn leader_crash_blocks_until_election() {
        let mut g = group();
        g.propose(batch(1), 1, SimTime::ZERO).unwrap();
        g.crash(0);
        assert!(g.leader().is_err());
        let new_leader = g.elect(SimTime::ZERO).unwrap();
        assert!(new_leader == 11 || new_leader == 12);
        assert_eq!(g.term(), 2);
        // Committed entry survives.
        assert_eq!(g.committed(), 1);
        assert_eq!(g.log_len(), 1);
    }

    #[test]
    fn committed_entries_never_lost_on_failover() {
        let mut g = group();
        // Commit 3 entries with all alive.
        for v in 1..=3 {
            g.propose(batch(10), v, SimTime::ZERO).unwrap();
        }
        // Crash leader, elect, verify all 3 survive; repeat.
        g.crash(0);
        g.elect(SimTime::ZERO).unwrap();
        assert_eq!(g.committed(), 3);
        g.propose(batch(10), 4, SimTime::ZERO).unwrap();
        assert_eq!(g.committed(), 4);
    }

    #[test]
    fn restarted_replica_catches_up_on_tick() {
        let mut g = group();
        g.crash(2);
        g.propose(batch(1), 1, SimTime::ZERO).unwrap();
        g.propose(batch(1), 2, SimTime::ZERO).unwrap();
        g.restart(2);
        let ops = g.tick(SimTime::ZERO);
        let slot2_ops: Vec<_> = ops.iter().filter(|o| o.slot == 2).collect();
        assert_eq!(slot2_ops.len(), 2, "straggler applies both entries");
    }

    #[test]
    fn lease_expires_without_renewal_and_renews_on_write() {
        let mut g = group();
        let t0 = SimTime::ZERO;
        assert!(g.lease_valid(t0));
        let late = t0 + SimDuration::from_secs(11);
        assert!(!g.lease_valid(late));
        g.propose(batch(1), 1, late).unwrap();
        assert!(g.lease_valid(late + SimDuration::from_secs(5)));
    }

    #[test]
    fn lease_does_not_renew_without_quorum() {
        let mut g = group();
        g.crash(1);
        g.crash(2);
        let late = SimTime::ZERO + SimDuration::from_secs(20);
        g.renew_lease(late);
        assert!(!g.lease_valid(late));
    }

    #[test]
    fn election_requires_quorum() {
        let mut g = group();
        g.crash(0);
        g.crash(1);
        assert!(g.elect(SimTime::ZERO).is_err());
        g.restart(1);
        assert!(g.elect(SimTime::ZERO).is_ok());
    }

    #[test]
    fn recovered_restart_does_not_resurrect_lost_tail() {
        let mut g = group();
        g.propose(batch(1), 1, SimTime::ZERO).unwrap();
        g.propose(batch(1), 2, SimTime::ZERO).unwrap();
        assert_eq!(g.committed(), 2);
        // Replica 2 crashed between appending/applying entry 2 and making
        // it durable: its recovery only rebuilt entry 1.
        g.crash(2);
        g.restart_recovered(2, 1);
        // The lost entry must be re-replicated and re-applied — with the
        // old restart (full in-memory log intact) no op was emitted and the
        // replica's state machine silently diverged.
        let ops = g.tick(SimTime::ZERO);
        let slot2: Vec<usize> = ops.iter().filter(|o| o.slot == 2).map(|o| o.index).collect();
        assert_eq!(slot2, vec![1], "lost entry is re-applied, not resurrected");
    }

    #[test]
    fn recovery_cannot_claim_beyond_prior_ack() {
        let mut g = group();
        g.propose(batch(1), 1, SimTime::ZERO).unwrap();
        g.crash(1);
        g.propose(batch(1), 2, SimTime::ZERO).unwrap();
        // Replica 1 never saw entry 2; a buggy recovery claiming 99 entries
        // must still be clamped to what it had acknowledged (1).
        g.restart_recovered(1, 99);
        let ops = g.tick(SimTime::ZERO);
        let slot1: Vec<usize> = ops.iter().filter(|o| o.slot == 1).map(|o| o.index).collect();
        assert_eq!(slot1, vec![1], "replica catches up from its real prefix");
    }

    #[test]
    fn election_prefers_fully_recovered_replica() {
        let mut g = group();
        for v in 1..=3 {
            g.propose(batch(1), v, SimTime::ZERO).unwrap();
        }
        // Leader 0 crashes; replica 1 also crashed and recovered only a
        // durable prefix of 1. The election must pick replica 2 (full log),
        // and committed entries all survive.
        g.crash(0);
        g.crash(1);
        g.restart_recovered(1, 1);
        let new_leader = g.elect(SimTime::ZERO).unwrap();
        assert_eq!(new_leader, 12);
        assert_eq!(g.committed(), 3);
        assert_eq!(g.log_len(), 3);
    }

    #[test]
    fn entry_versions_are_preserved_in_log() {
        let mut g = group();
        g.propose(batch(5), 42, SimTime::ZERO).unwrap();
        assert_eq!(g.entry(0).version, 42);
        assert!(g.entry(0).bytes >= 64 + 5);
    }
}
