//! MVCC key-value engine — the TiKV analogue.
//!
//! Every write is assigned a monotonically increasing commit version; reads
//! see the latest version at or below their snapshot. Deletes write
//! tombstones. This versioning is exactly what the paper's §5.5 version
//! check reads: "returning the row's 8-byte version column".
//!
//! Keys are raw byte strings produced by the order-preserving encoders in
//! this module, so prefix and range scans work for both primary-key and
//! secondary-index layouts:
//!
//! ```text
//! t/<table>/<pk>          -> encoded row          (record space)
//! i/<table>/<col>/<val>/<pk> -> ""                (index space)
//! ```

use crate::value::Datum;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A raw storage key.
pub type Key = Vec<u8>;

/// One MVCC version: the commit version and the value (`None` = tombstone).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct VersionEntry {
    version: u64,
    value: Option<Vec<u8>>,
}

/// Result of a successful versioned read.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionedValue<'a> {
    pub value: &'a [u8],
    pub version: u64,
}

/// The MVCC store. Single-threaded by design: concurrency in the simulation
/// is modeled by the event kernel, not by host threads.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KvEngine {
    /// Per key: version entries in ascending version order.
    data: BTreeMap<Key, Vec<VersionEntry>>,
    next_version: u64,
    /// Logical bytes written over the engine's lifetime (cost accounting).
    bytes_written: u64,
}

impl KvEngine {
    pub fn new() -> Self {
        KvEngine {
            data: BTreeMap::new(),
            next_version: 1,
            bytes_written: 0,
        }
    }

    /// Number of live keys (latest version is not a tombstone).
    pub fn live_keys(&self) -> usize {
        self.data
            .values()
            .filter(|vs| vs.last().map(|v| v.value.is_some()).unwrap_or(false))
            .count()
    }

    /// Total version entries retained (for GC tests).
    pub fn version_entries(&self) -> usize {
        self.data.values().map(|v| v.len()).sum()
    }

    /// Logical bytes of the live dataset: key plus latest non-tombstone
    /// value per key. This is the size a full snapshot persists.
    pub fn live_bytes(&self) -> u64 {
        self.data
            .iter()
            .filter_map(|(k, vs)| {
                let latest = vs.last()?.value.as_ref()?;
                Some(k.len() as u64 + latest.len() as u64)
            })
            .sum()
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The version the *next* write will receive.
    pub fn next_version(&self) -> u64 {
        self.next_version
    }

    fn allocate_version(&mut self) -> u64 {
        let v = self.next_version;
        self.next_version += 1;
        v
    }

    /// Write `value` under `key`, returning the assigned commit version.
    pub fn put(&mut self, key: Key, value: Vec<u8>) -> u64 {
        let version = self.allocate_version();
        self.put_at(key, Some(value), version);
        version
    }

    /// Delete `key` (tombstone), returning the commit version.
    pub fn delete(&mut self, key: Key) -> u64 {
        let version = self.allocate_version();
        self.put_at(key, None, version);
        version
    }

    /// Apply a write at an explicit version — used by Raft followers
    /// replaying the leader's log so replicas converge on identical state.
    /// Versions must be applied in increasing order per key.
    pub fn put_at(&mut self, key: Key, value: Option<Vec<u8>>, version: u64) {
        self.next_version = self.next_version.max(version + 1);
        self.bytes_written += value.as_ref().map(|v| v.len() as u64).unwrap_or(0);
        let versions = self.data.entry(key).or_default();
        debug_assert!(
            versions.last().map(|l| l.version < version).unwrap_or(true),
            "out-of-order MVCC apply"
        );
        versions.push(VersionEntry { version, value });
    }

    /// Read the latest committed version of `key`.
    pub fn get_latest(&self, key: &[u8]) -> Option<VersionedValue<'_>> {
        self.get_at(key, u64::MAX)
    }

    /// Read `key` at `snapshot`: the newest version ≤ snapshot. Tombstones
    /// return `None`.
    pub fn get_at(&self, key: &[u8], snapshot: u64) -> Option<VersionedValue<'_>> {
        let versions = self.data.get(key)?;
        let idx = versions.partition_point(|v| v.version <= snapshot);
        if idx == 0 {
            return None;
        }
        let entry = &versions[idx - 1];
        entry.value.as_deref().map(|value| VersionedValue {
            value,
            version: entry.version,
        })
    }

    /// The latest version number recorded for `key`, even if a tombstone —
    /// this is what a version check compares against.
    pub fn latest_version(&self, key: &[u8]) -> Option<u64> {
        self.data.get(key).and_then(|v| v.last()).map(|v| v.version)
    }

    /// Scan live entries whose key starts with `prefix`, at `snapshot`, in
    /// key order. Returns (key, value, version) triples.
    pub fn scan_prefix<'a>(
        &'a self,
        prefix: &'a [u8],
        snapshot: u64,
    ) -> impl Iterator<Item = (&'a Key, VersionedValue<'a>)> + 'a {
        let start: Key = prefix.to_vec();
        self.data
            .range((Bound::Included(start), Bound::Unbounded))
            .take_while(move |(k, _)| k.starts_with(prefix))
            .filter_map(move |(k, versions)| {
                let idx = versions.partition_point(|v| v.version <= snapshot);
                if idx == 0 {
                    return None;
                }
                let entry = &versions[idx - 1];
                entry
                    .value
                    .as_deref()
                    .map(|value| (k, VersionedValue { value, version: entry.version }))
            })
    }

    /// Scan live entries with keys in `[start, end_exclusive)` (unbounded
    /// above when `end_exclusive` is `None`), at `snapshot`, in key order.
    pub fn scan_between<'a>(
        &'a self,
        start: &[u8],
        end_exclusive: Option<&'a [u8]>,
        snapshot: u64,
    ) -> impl Iterator<Item = (&'a Key, VersionedValue<'a>)> + 'a {
        let lower = Bound::Included(start.to_vec());
        self.data
            .range((lower, Bound::Unbounded))
            .take_while(move |(k, _)| match end_exclusive {
                Some(end) => k.as_slice() < end,
                None => true,
            })
            .filter_map(move |(k, versions)| {
                let idx = versions.partition_point(|v| v.version <= snapshot);
                if idx == 0 {
                    return None;
                }
                let entry = &versions[idx - 1];
                entry
                    .value
                    .as_deref()
                    .map(|value| (k, VersionedValue { value, version: entry.version }))
            })
    }

    /// Garbage-collect versions strictly older than `keep_after`, always
    /// retaining the newest version of each key. Fully-dead keys (tombstone
    /// older than the horizon) are dropped. Returns entries reclaimed.
    pub fn gc(&mut self, keep_after: u64) -> usize {
        let mut reclaimed = 0;
        self.data.retain(|_, versions| {
            let keep_from = versions
                .partition_point(|v| v.version < keep_after)
                .min(versions.len() - 1);
            reclaimed += keep_from;
            versions.drain(..keep_from);
            // Drop the key entirely if all that remains is an old tombstone.
            let last = versions.last().expect("at least one version retained");
            if last.value.is_none() && last.version < keep_after {
                reclaimed += versions.len();
                false
            } else {
                true
            }
        });
        reclaimed
    }
}

// ---------------------------------------------------------------------------
// Order-preserving key encoding
// ---------------------------------------------------------------------------

/// Encode a datum so that byte-wise key order matches SQL value order within
/// a type. Ints get their sign bit flipped and go big-endian; text/bytes are
/// terminated with `0x00 0x01` and embedded zeros escaped as `0x00 0xFF`
/// (the standard escape so prefixes cannot collide).
pub fn encode_key_datum(out: &mut Vec<u8>, d: &Datum) {
    match d {
        Datum::Null => out.push(0x00),
        Datum::Bool(b) => {
            out.push(0x01);
            out.push(*b as u8);
        }
        Datum::Int(i) => {
            out.push(0x02);
            out.extend_from_slice(&((*i as u64) ^ (1u64 << 63)).to_be_bytes());
        }
        Datum::Float(x) => {
            // Standard total-order float encoding: flip sign bit for
            // positives, flip all bits for negatives.
            let bits = x.to_bits();
            let ordered = if bits >> 63 == 0 {
                bits ^ (1u64 << 63)
            } else {
                !bits
            };
            out.push(0x03);
            out.extend_from_slice(&ordered.to_be_bytes());
        }
        Datum::Text(s) => {
            out.push(0x04);
            escape_bytes(out, s.as_bytes());
        }
        Datum::Bytes(b) => {
            out.push(0x05);
            escape_bytes(out, b);
        }
        Datum::Payload { len, seed } => {
            out.push(0x06);
            out.extend_from_slice(&len.to_be_bytes());
            out.extend_from_slice(&seed.to_be_bytes());
        }
    }
}

fn escape_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    for &b in bytes {
        if b == 0x00 {
            out.extend_from_slice(&[0x00, 0xFF]);
        } else {
            out.push(b);
        }
    }
    out.extend_from_slice(&[0x00, 0x01]);
}

/// Record-space key for a row: `t/<table>/<pk>`.
pub fn record_key(table: &str, pk: &Datum) -> Key {
    let mut k = Vec::with_capacity(table.len() + 16);
    record_key_into(&mut k, table, pk);
    k
}

/// [`record_key`] into a caller-owned buffer (cleared first), so the serve
/// path can reuse one scratch allocation across requests.
pub fn record_key_into(k: &mut Key, table: &str, pk: &Datum) {
    k.clear();
    k.extend_from_slice(b"t/");
    k.extend_from_slice(table.as_bytes());
    k.push(b'/');
    encode_key_datum(k, pk);
}

/// Prefix covering all rows of a table.
pub fn record_prefix(table: &str) -> Key {
    let mut k = Vec::with_capacity(table.len() + 3);
    k.extend_from_slice(b"t/");
    k.extend_from_slice(table.as_bytes());
    k.push(b'/');
    k
}

/// Conservative byte bounds for record keys whose primary key lies in
/// `[lo, hi]`; same contract as [`index_range_bounds`].
pub fn record_range_bounds(table: &str, lo: Option<&Datum>, hi: Option<&Datum>) -> (Key, Option<Key>) {
    let prefix = record_prefix(table);
    let start = match lo {
        Some(d) => {
            let mut k = prefix.clone();
            encode_key_datum(&mut k, d);
            k
        }
        None => prefix.clone(),
    };
    let end = match hi {
        Some(d) => {
            let mut k = prefix.clone();
            encode_key_datum(&mut k, d);
            k.push(0xFF);
            Some(k)
        }
        None => {
            let mut k = prefix;
            let last = k.last_mut().expect("prefix non-empty");
            *last += 1;
            Some(k)
        }
    };
    (start, end)
}

/// Index-space key: `i/<table>/<col>/<val>/<pk>`.
pub fn index_key(table: &str, column: usize, value: &Datum, pk: &Datum) -> Key {
    let mut k = index_prefix(table, column, value);
    encode_key_datum(&mut k, pk);
    k
}

/// Prefix covering all index entries for one (column, value) pair.
pub fn index_prefix(table: &str, column: usize, value: &Datum) -> Key {
    let mut k = index_column_prefix(table, column);
    encode_key_datum(&mut k, value);
    k
}

/// Prefix covering *all* index entries of one column (any value).
pub fn index_column_prefix(table: &str, column: usize) -> Key {
    let mut k = Vec::with_capacity(table.len() + 24);
    k.extend_from_slice(b"i/");
    k.extend_from_slice(table.as_bytes());
    k.push(b'/');
    k.extend_from_slice(&(column as u32).to_be_bytes());
    k.push(b'/');
    k
}

/// Conservative byte bounds for index entries whose column value lies in
/// `[lo, hi]` (either side optional). The returned range may include a few
/// neighbors — callers re-filter rows with the original predicate — but
/// never excludes a matching entry. Works because `encode_key_datum` is
/// order-preserving and prefix-free.
pub fn index_range_bounds(
    table: &str,
    column: usize,
    lo: Option<&Datum>,
    hi: Option<&Datum>,
) -> (Key, Option<Key>) {
    let prefix = index_column_prefix(table, column);
    let start = match lo {
        Some(d) => {
            let mut k = prefix.clone();
            encode_key_datum(&mut k, d);
            k
        }
        None => prefix.clone(),
    };
    let end = match hi {
        Some(d) => {
            let mut k = prefix.clone();
            encode_key_datum(&mut k, d);
            k.push(0xFF); // strictly after every pk suffix for this value
            Some(k)
        }
        None => {
            // End of the column prefix: bump the last byte ('/' < 0xFF).
            let mut k = prefix;
            let last = k.last_mut().expect("prefix non-empty");
            *last += 1;
            Some(k)
        }
    };
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Key {
        s.as_bytes().to_vec()
    }

    #[test]
    fn put_then_get_latest() {
        let mut kv = KvEngine::new();
        let v1 = kv.put(key("a"), b"one".to_vec());
        let got = kv.get_latest(b"a").unwrap();
        assert_eq!(got.value, b"one");
        assert_eq!(got.version, v1);
    }

    #[test]
    fn versions_are_monotonic_and_snapshot_reads_work() {
        let mut kv = KvEngine::new();
        let v1 = kv.put(key("a"), b"one".to_vec());
        let v2 = kv.put(key("a"), b"two".to_vec());
        assert!(v2 > v1);
        assert_eq!(kv.get_at(b"a", v1).unwrap().value, b"one");
        assert_eq!(kv.get_at(b"a", v2).unwrap().value, b"two");
        assert_eq!(kv.get_at(b"a", v1 - 1), None);
        assert_eq!(kv.get_latest(b"a").unwrap().value, b"two");
    }

    #[test]
    fn delete_writes_tombstone_with_version() {
        let mut kv = KvEngine::new();
        let v1 = kv.put(key("a"), b"x".to_vec());
        let v2 = kv.delete(key("a"));
        assert_eq!(kv.get_latest(b"a"), None);
        assert_eq!(kv.get_at(b"a", v1).unwrap().value, b"x");
        assert_eq!(kv.latest_version(b"a"), Some(v2));
        assert_eq!(kv.live_keys(), 0);
    }

    #[test]
    fn put_at_replays_deterministically() {
        let mut leader = KvEngine::new();
        let mut follower = KvEngine::new();
        let v1 = leader.put(key("a"), b"1".to_vec());
        let v2 = leader.put(key("b"), b"2".to_vec());
        follower.put_at(key("a"), Some(b"1".to_vec()), v1);
        follower.put_at(key("b"), Some(b"2".to_vec()), v2);
        assert_eq!(leader.get_latest(b"a"), follower.get_latest(b"a"));
        assert_eq!(follower.next_version(), leader.next_version());
    }

    #[test]
    fn scan_prefix_returns_sorted_live_rows() {
        let mut kv = KvEngine::new();
        kv.put(key("t/users/b"), b"2".to_vec());
        kv.put(key("t/users/a"), b"1".to_vec());
        kv.put(key("t/orders/z"), b"9".to_vec());
        kv.delete(key("t/users/b"));
        let hits: Vec<_> = kv
            .scan_prefix(b"t/users/", u64::MAX)
            .map(|(k, v)| (k.clone(), v.value.to_vec()))
            .collect();
        assert_eq!(hits, vec![(key("t/users/a"), b"1".to_vec())]);
    }

    #[test]
    fn scan_respects_snapshot() {
        let mut kv = KvEngine::new();
        let v1 = kv.put(key("p/a"), b"old".to_vec());
        kv.put(key("p/a"), b"new".to_vec());
        kv.put(key("p/b"), b"later".to_vec());
        let at_v1: Vec<_> = kv.scan_prefix(b"p/", v1).map(|(_, v)| v.value.to_vec()).collect();
        assert_eq!(at_v1, vec![b"old".to_vec()]);
    }

    #[test]
    fn gc_keeps_latest_and_reclaims_old() {
        let mut kv = KvEngine::new();
        for i in 0..10 {
            kv.put(key("a"), vec![i]);
        }
        let horizon = kv.next_version();
        assert_eq!(kv.version_entries(), 10);
        let reclaimed = kv.gc(horizon);
        assert_eq!(reclaimed, 9);
        assert_eq!(kv.version_entries(), 1);
        assert_eq!(kv.get_latest(b"a").unwrap().value, &[9]);
    }

    #[test]
    fn gc_drops_dead_keys_entirely() {
        let mut kv = KvEngine::new();
        kv.put(key("a"), b"x".to_vec());
        kv.delete(key("a"));
        kv.gc(kv.next_version());
        assert_eq!(kv.version_entries(), 0);
        assert_eq!(kv.latest_version(b"a"), None);
    }

    #[test]
    fn int_key_encoding_preserves_order() {
        let ints = [i64::MIN, -5, -1, 0, 1, 7, i64::MAX];
        let mut keys: Vec<Key> = ints
            .iter()
            .map(|&i| record_key("t", &Datum::Int(i)))
            .collect();
        let sorted = keys.clone();
        keys.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn float_key_encoding_preserves_order() {
        let floats = [f64::NEG_INFINITY, -2.5, -0.0, 0.0, 1.5, f64::INFINITY];
        let enc = |x: f64| {
            let mut k = Vec::new();
            encode_key_datum(&mut k, &Datum::Float(x));
            k
        };
        for w in floats.windows(2) {
            assert!(enc(w[0]) <= enc(w[1]), "{} !<= {}", w[0], w[1]);
        }
    }

    #[test]
    fn text_keys_with_embedded_nul_do_not_collide() {
        let a = record_key("t", &Datum::Text("a\0b".into()));
        let b = record_key("t", &Datum::Text("a".into()));
        let c = record_key("t", &Datum::Text("a\0".into()));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // "a" < "a\0" < "a\0b" in value order must hold in byte order.
        assert!(b < c && c < a);
    }

    #[test]
    fn scan_between_respects_bounds() {
        let mut kv = KvEngine::new();
        for i in 0..10u8 {
            kv.put(vec![b'k', i], vec![i]);
        }
        let hits: Vec<u8> = kv
            .scan_between(&[b'k', 3], Some(&[b'k', 7]), u64::MAX)
            .map(|(_, v)| v.value[0])
            .collect();
        assert_eq!(hits, vec![3, 4, 5, 6]);
        let open_ended: Vec<u8> = kv
            .scan_between(&[b'k', 8], None, u64::MAX)
            .map(|(_, v)| v.value[0])
            .collect();
        assert_eq!(open_ended, vec![8, 9]);
    }

    #[test]
    fn index_range_bounds_cover_matching_values_exactly() {
        // Build index keys for ints 0..20 and check the [5, 12] bounds.
        let keys: Vec<Key> = (0..20i64)
            .map(|v| index_key("t", 1, &Datum::Int(v), &Datum::Int(v * 100)))
            .collect();
        let (start, end) = index_range_bounds("t", 1, Some(&Datum::Int(5)), Some(&Datum::Int(12)));
        let end = end.unwrap();
        let selected: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| k.as_slice() >= start.as_slice() && k.as_slice() < end.as_slice())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(selected, (5..=12).collect::<Vec<_>>());
        // Unbounded sides cover everything on that side.
        let (start, _) = index_range_bounds("t", 1, None, Some(&Datum::Int(3)));
        assert!(keys.iter().take(4).all(|k| k.as_slice() >= start.as_slice()));
        let (_, end) = index_range_bounds("t", 1, Some(&Datum::Int(17)), None);
        let end = end.unwrap();
        assert!(keys.iter().skip(17).all(|k| k.as_slice() < end.as_slice()));
        // Other columns are never inside the bounds.
        let other = index_key("t", 2, &Datum::Int(7), &Datum::Int(0));
        assert!(other.as_slice() >= end.as_slice() || other.as_slice() < start.as_slice());
    }

    #[test]
    fn index_prefix_isolates_column_and_value() {
        let p1 = index_prefix("t", 1, &Datum::Int(5));
        let k_same = index_key("t", 1, &Datum::Int(5), &Datum::Int(1));
        let k_other_val = index_key("t", 1, &Datum::Int(6), &Datum::Int(1));
        let k_other_col = index_key("t", 2, &Datum::Int(5), &Datum::Int(1));
        assert!(k_same.starts_with(&p1));
        assert!(!k_other_val.starts_with(&p1));
        assert!(!k_other_col.starts_with(&p1));
    }

    #[test]
    fn record_prefix_covers_only_that_table() {
        let k = record_key("users", &Datum::Int(1));
        assert!(k.starts_with(&record_prefix("users")));
        assert!(!k.starts_with(&record_prefix("user")));
        // distinct tables with common prefixes stay separate
        let k2 = record_key("users_ext", &Datum::Int(1));
        assert!(!k2.starts_with(&record_prefix("users")));
    }
}
