//! SQL values.
//!
//! A [`Datum`] is one cell of a row. The encoded size matters as much as the
//! value: the paper's cost results hinge on bytes moved and (de)serialized,
//! so every datum knows its wire size and encodes to a real binary format
//! (see [`crate::row`]).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// One SQL value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Datum {
    Null,
    Bool(bool),
    /// 64-bit integer (also used for ids and versions).
    Int(i64),
    Float(f64),
    Text(String),
    /// Opaque bytes (serialized application payloads).
    Bytes(Vec<u8>),
    /// A synthetic application payload: behaves like `Bytes` of length `len`
    /// for all size accounting, but is stored in 16 physical bytes. The
    /// evaluation sweeps value sizes up to 1 MB over 100K keys — materializing
    /// those would need ~100 GB of host RAM, while the paper's cost metrics
    /// depend only on byte *counts*. `seed` distinguishes payload contents
    /// (two payloads are equal iff `len` and `seed` match).
    Payload { len: u64, seed: u64 },
}

impl Datum {
    /// Type tag used in the binary encoding and error messages.
    pub const fn type_name(&self) -> &'static str {
        match self {
            Datum::Null => "null",
            Datum::Bool(_) => "bool",
            Datum::Int(_) => "int",
            Datum::Float(_) => "float",
            Datum::Text(_) => "text",
            Datum::Bytes(_) => "bytes",
            Datum::Payload { .. } => "payload",
        }
    }

    /// Encoded wire size in bytes: 1 tag byte plus the payload.
    pub fn encoded_size(&self) -> u64 {
        1 + match self {
            Datum::Null => 0,
            Datum::Bool(_) => 1,
            Datum::Int(_) => 8,
            Datum::Float(_) => 8,
            Datum::Text(s) => 4 + s.len() as u64,
            Datum::Bytes(b) => 4 + b.len() as u64,
            // Accounted as if it were `Bytes` of the declared length.
            Datum::Payload { len, .. } => 4 + *len,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Datum::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// SQL comparison semantics: NULL compares with nothing (returns None),
    /// numerics compare across Int/Float, other type mixes are incomparable.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            (Datum::Float(a), Datum::Float(b)) => a.partial_cmp(b),
            (Datum::Int(a), Datum::Float(b)) => (*a as f64).partial_cmp(b),
            (Datum::Float(a), Datum::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Datum::Text(a), Datum::Text(b)) => Some(a.cmp(b)),
            (Datum::Bytes(a), Datum::Bytes(b)) => Some(a.cmp(b)),
            (Datum::Payload { len: l1, seed: s1 }, Datum::Payload { len: l2, seed: s2 }) => {
                Some((l1, s1).cmp(&(l2, s2)))
            }
            _ => None,
        }
    }

    /// SQL equality: NULL equals nothing, including NULL.
    pub fn sql_eq(&self, other: &Datum) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Float(x) => write!(f, "{x}"),
            Datum::Text(s) => write!(f, "'{s}'"),
            Datum::Bytes(b) => write!(f, "x'{}B'", b.len()),
            Datum::Payload { len, seed } => write!(f, "payload({len}B, seed={seed:#x})"),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Text(v.to_string())
    }
}

impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Text(v)
    }
}

impl From<Vec<u8>> for Datum {
    fn from(v: Vec<u8>) -> Self {
        Datum::Bytes(v)
    }
}

impl From<bool> for Datum {
    fn from(v: bool) -> Self {
        Datum::Bool(v)
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_sizes_count_payloads() {
        assert_eq!(Datum::Null.encoded_size(), 1);
        assert_eq!(Datum::Int(5).encoded_size(), 9);
        assert_eq!(Datum::Text("abc".into()).encoded_size(), 8);
        assert_eq!(Datum::Bytes(vec![0; 100]).encoded_size(), 105);
    }

    #[test]
    fn null_never_equals_anything() {
        assert!(!Datum::Null.sql_eq(&Datum::Null));
        assert!(!Datum::Null.sql_eq(&Datum::Int(0)));
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert!(Datum::Int(2).sql_eq(&Datum::Float(2.0)));
        assert_eq!(
            Datum::Int(1).sql_cmp(&Datum::Float(1.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incompatible_types_are_incomparable() {
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Text("1".into())), None);
        assert!(!Datum::Bool(true).sql_eq(&Datum::Int(1)));
    }

    #[test]
    fn text_compares_lexicographically() {
        assert_eq!(
            Datum::Text("abc".into()).sql_cmp(&Datum::Text("abd".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn payload_accounts_at_declared_length() {
        let p = Datum::Payload { len: 1 << 20, seed: 7 };
        assert_eq!(p.encoded_size(), 5 + (1 << 20));
        assert!(p.sql_eq(&Datum::Payload { len: 1 << 20, seed: 7 }));
        assert!(!p.sql_eq(&Datum::Payload { len: 1 << 20, seed: 8 }));
        assert!(!p.sql_eq(&Datum::Bytes(vec![])));
    }

    #[test]
    fn from_impls_build_expected_variants() {
        assert_eq!(Datum::from(3i64), Datum::Int(3));
        assert_eq!(Datum::from("x"), Datum::Text("x".into()));
        assert_eq!(Datum::from(true), Datum::Bool(true));
    }
}
