//! The storage-layer block cache — the paper's `s_D` knob.
//!
//! TiKV serves reads from RocksDB, whose hot blocks live in a DRAM block
//! cache; cold reads pay the disk path. We model the same structure: the
//! keyspace is divided into fixed-size logical blocks, a [`BlockCache`]
//! (an LRU from `cachekit`) tracks which blocks are DRAM-resident, and each
//! row access reports whether it hit. The *cost* of a miss (disk read CPU +
//! latency) is charged by the cluster layer using
//! [`crate::cost::StorageCostConfig`].
//!
//! Blocks are identified by hashing the row key and bucketing: rows that are
//! key-adjacent share blocks imperfectly under hashing, but popularity-based
//! residency — the property the cost model depends on — is preserved, and
//! hashing avoids pathological co-location of hot synthetic keys.

use cachekit::{Cache, PolicyKind};
use cachekit::ring::stable_hash;
use serde::{Deserialize, Serialize};

/// Identifier of one logical block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u64);

impl cachekit::CacheKeyHash for BlockId {}

/// Outcome of one row access against the block cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockAccess {
    /// Block was DRAM-resident.
    Hit,
    /// Block had to be read from disk (and is now resident).
    Miss,
}

/// Configuration for block layout.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BlockConfig {
    /// Logical block size in bytes (RocksDB defaults to 4–32 KiB; TiKV
    /// commonly 32 KiB). Large values occupy multiple blocks.
    pub block_bytes: u64,
}

impl Default for BlockConfig {
    fn default() -> Self {
        BlockConfig {
            block_bytes: 32 * 1024,
        }
    }
}

/// The per-storage-node block cache.
#[derive(Debug)]
pub struct BlockCache {
    cache: Cache<BlockId, ()>,
    config: BlockConfig,
}

impl BlockCache {
    /// A block cache holding at most `capacity_bytes` of blocks.
    pub fn new(capacity_bytes: u64, config: BlockConfig) -> Self {
        BlockCache {
            cache: Cache::new(capacity_bytes, PolicyKind::Lru),
            config,
        }
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.cache.capacity_bytes()
    }

    /// How many blocks a value of `value_bytes` spans.
    pub fn blocks_spanned(&self, value_bytes: u64) -> u64 {
        value_bytes.div_ceil(self.config.block_bytes).max(1)
    }

    /// Access the row stored at `row_key` whose record occupies
    /// `value_bytes`. Returns how many of its blocks hit and missed;
    /// missed blocks become resident (read-through).
    pub fn access(&mut self, row_key: &[u8], value_bytes: u64) -> (u64, u64) {
        let base = stable_hash(row_key);
        let span = self.blocks_spanned(value_bytes);
        let mut hits = 0;
        let mut misses = 0;
        for i in 0..span {
            let id = BlockId(base.wrapping_add(i));
            if self.cache.get(&id, 0).is_some() {
                hits += 1;
            } else {
                misses += 1;
                self.cache.insert(id, (), self.config.block_bytes, 0);
            }
        }
        (hits, misses)
    }

    /// Convenience for single-block accesses.
    pub fn access_one(&mut self, row_key: &[u8]) -> BlockAccess {
        let (hits, _) = self.access(row_key, 1);
        if hits > 0 {
            BlockAccess::Hit
        } else {
            BlockAccess::Miss
        }
    }

    /// Hit ratio observed so far.
    pub fn hit_ratio(&self) -> f64 {
        self.cache.stats().hit_ratio()
    }

    /// Raw `(hits, misses)` counters — the mergeable form of
    /// [`BlockCache::hit_ratio`] for sharded experiment runs.
    pub fn counts(&self) -> (u64, u64) {
        let s = self.cache.stats();
        (s.hits, s.misses)
    }

    /// Number of DRAM-resident blocks right now.
    pub fn resident_blocks(&self) -> usize {
        self.cache.len()
    }

    /// Drop every resident block (a crash: the block cache is volatile).
    /// Stats are preserved — the refill misses that follow are the point.
    pub fn wipe(&mut self) {
        self.cache.clear();
    }

    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap_blocks: u64) -> BlockCache {
        let cfg = BlockConfig { block_bytes: 1024 };
        // Account for cachekit's per-entry overhead so `cap_blocks` blocks fit.
        BlockCache::new(cap_blocks * (1024 + 64), cfg)
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut bc = cache(16);
        assert_eq!(bc.access_one(b"k1"), BlockAccess::Miss);
        assert_eq!(bc.access_one(b"k1"), BlockAccess::Hit);
    }

    #[test]
    fn large_values_span_multiple_blocks() {
        let mut bc = cache(100);
        assert_eq!(bc.blocks_spanned(1), 1);
        assert_eq!(bc.blocks_spanned(1024), 1);
        assert_eq!(bc.blocks_spanned(1025), 2);
        let (h, m) = bc.access(b"big", 10 * 1024);
        assert_eq!((h, m), (0, 10));
        let (h, m) = bc.access(b"big", 10 * 1024);
        assert_eq!((h, m), (10, 0));
    }

    #[test]
    fn cold_keys_evict_under_pressure() {
        let mut bc = cache(4);
        for i in 0..8 {
            bc.access_one(format!("key{i}").as_bytes());
        }
        // Cache holds 4 blocks; re-touching the first key must miss again.
        assert_eq!(bc.access_one(b"key0"), BlockAccess::Miss);
    }

    #[test]
    fn hot_key_stays_resident_under_mixed_traffic() {
        let mut bc = cache(8);
        bc.access_one(b"hot");
        for i in 0..100 {
            bc.access_one(b"hot");
            bc.access_one(format!("cold{i}").as_bytes());
        }
        assert_eq!(bc.access_one(b"hot"), BlockAccess::Hit);
        assert!(bc.hit_ratio() > 0.3);
    }

    #[test]
    fn zero_byte_values_still_occupy_a_block() {
        let mut bc = cache(4);
        let (h, m) = bc.access(b"empty", 0);
        assert_eq!((h, m), (0, 1));
    }

    #[test]
    fn wipe_empties_residency_but_keeps_stats() {
        let mut bc = cache(8);
        bc.access_one(b"a");
        bc.access_one(b"a");
        assert_eq!(bc.resident_blocks(), 1);
        let ratio_before = bc.hit_ratio();
        bc.wipe();
        assert_eq!(bc.resident_blocks(), 0);
        assert_eq!(bc.hit_ratio(), ratio_before, "wipe is not a stats reset");
        // Post-crash traffic is cold again.
        assert_eq!(bc.access_one(b"a"), BlockAccess::Miss);
    }
}
