//! Per-pod durability: write-ahead log, group-commit fsync, snapshots and
//! crash recovery.
//!
//! With durability off (the default, and the legacy model) storage pods are
//! implicitly stable: a fault only toggles raft liveness and no state is
//! ever lost. With durability on, a pod's memtables and block cache are
//! *volatile*: every raft entry the pod applies is also appended to its
//! [`DurableStore`] WAL on a log-structured SSD tier, fsynced per
//! [`FsyncPolicy`], and periodically folded into a full snapshot that
//! truncates the WAL. A crash discards everything volatile; recovery loads
//! the snapshot, replays the *synced* WAL prefix and rejoins each hosted
//! region claiming exactly that prefix — the quorum re-replicates the lost
//! tail, so committed writes survive any single-pod crash while the pod's
//! local un-fsynced tail (bounded by the group-commit window) does not.
//!
//! All IO is charged through [`StorageCostConfig`] constants so the crash
//! ablation can sweep fsync policy × snapshot cadence × crash interval and
//! put a dollar figure on each point.

use crate::cost::StorageCostConfig;
use crate::kv::KvEngine;
use serde::{Deserialize, Serialize};
use simnet::SimDuration;

/// When appended WAL records become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsyncPolicy {
    /// fsync after every append: nothing applied is ever lost locally, at
    /// maximum IO cost (and the fsync latency rides every write).
    EveryEntry,
    /// Group commit: one fsync per `n` appends. The un-synced tail (fewer
    /// than `n` records) is lost on crash and must be re-replicated from
    /// the quorum.
    Group(u32),
}

impl FsyncPolicy {
    /// Appends per fsync (`EveryEntry` = 1).
    pub fn group_size(&self) -> u32 {
        match self {
            FsyncPolicy::EveryEntry => 1,
            FsyncPolicy::Group(n) => (*n).max(1),
        }
    }

    /// Stable label for tables and sweep specs.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::EveryEntry => "every".to_string(),
            FsyncPolicy::Group(n) => format!("group{n}"),
        }
    }
}

/// Durability knobs. Default **off**: pods behave exactly as before this
/// layer existed, and no counter ever moves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurabilityConfig {
    pub enabled: bool,
    pub fsync: FsyncPolicy,
    /// WAL appends between snapshots (per pod). A snapshot persists the
    /// whole KV engine and truncates the WAL.
    pub snapshot_every_entries: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            enabled: false,
            fsync: FsyncPolicy::Group(8),
            snapshot_every_entries: 4_096,
        }
    }
}

impl DurabilityConfig {
    pub fn enabled(&self) -> bool {
        self.enabled
    }
}

/// Resettable durability counters (summed across pods for reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityStats {
    pub wal_appends: u64,
    pub wal_bytes: u64,
    pub fsync_batches: u64,
    pub snapshots: u64,
    /// Bytes written by snapshots taken in the window.
    pub snapshot_bytes: u64,
    pub recoveries: u64,
    /// Summed simulated recovery wall time (snapshot load + WAL replay).
    pub recovery_time_us: u64,
    pub replayed_entries: u64,
    pub replayed_bytes: u64,
    /// Un-fsynced WAL records discarded by crashes.
    pub lost_tail_entries: u64,
    /// Estimated CPU to re-fill block-cache blocks lost to crashes.
    pub cold_refill_cpu_us: u64,
}

impl DurabilityStats {
    pub fn merge(&mut self, other: &DurabilityStats) {
        self.wal_appends += other.wal_appends;
        self.wal_bytes += other.wal_bytes;
        self.fsync_batches += other.fsync_batches;
        self.snapshots += other.snapshots;
        self.snapshot_bytes += other.snapshot_bytes;
        self.recoveries += other.recoveries;
        self.recovery_time_us += other.recovery_time_us;
        self.replayed_entries += other.replayed_entries;
        self.replayed_bytes += other.replayed_bytes;
        self.lost_tail_entries += other.lost_tail_entries;
        self.cold_refill_cpu_us += other.cold_refill_cpu_us;
    }

    pub fn reset(&mut self) {
        *self = DurabilityStats::default();
    }
}

/// One WAL record: the writes one raft entry applied at this pod.
#[derive(Debug, Clone)]
struct WalRecord {
    region: usize,
    version: u64,
    bytes: u64,
    writes: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

/// What a recovery rebuilt and what it cost.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The recovered KV engine (snapshot + synced WAL replayed).
    pub kv: KvEngine,
    /// Per-region applied counts the recovered state covers; the pod's
    /// raft slots rejoin claiming exactly these prefixes.
    pub durable_applied: Vec<usize>,
    pub replayed_entries: u64,
    pub replayed_bytes: u64,
    pub lost_tail_entries: u64,
    /// Simulated wall time of the recovery (IO latency + replay CPU).
    pub recovery_time: SimDuration,
    /// CPU to charge the pod for the replay work.
    pub replay_cpu: SimDuration,
}

/// Per-pod durable state: the current snapshot plus the WAL tail since it.
#[derive(Debug)]
pub struct DurableStore {
    cfg: DurabilityConfig,
    snapshot: Option<KvEngine>,
    snapshot_size_bytes: u64,
    wal: Vec<WalRecord>,
    /// Records fsynced (durable): `wal[..synced]`.
    synced: usize,
    appends_since_snapshot: u64,
    /// Per-region applied count covered by snapshot + synced WAL.
    durable_applied: Vec<usize>,
    /// Per-region applied count covered by snapshot + whole WAL.
    tail_applied: Vec<usize>,
    pub stats: DurabilityStats,
}

impl DurableStore {
    pub fn new(cfg: DurabilityConfig, region_count: usize) -> Self {
        DurableStore {
            cfg,
            snapshot: None,
            snapshot_size_bytes: 0,
            wal: Vec::new(),
            synced: 0,
            appends_since_snapshot: 0,
            durable_applied: vec![0; region_count],
            tail_applied: vec![0; region_count],
            stats: DurabilityStats::default(),
        }
    }

    /// Per-region applied count covered by durable state (snapshot + synced
    /// WAL) — the prefix a recovered replica may claim.
    pub fn durable_applied(&self, region: usize) -> usize {
        self.durable_applied[region]
    }

    /// Bytes resident on the SSD tier right now (snapshot + WAL), the
    /// basis for $/GB billing.
    pub fn ssd_resident_bytes(&self) -> u64 {
        self.snapshot_size_bytes + self.wal.iter().map(|r| r.bytes).sum::<u64>()
    }

    /// Log one applied raft entry. Returns the CPU to charge (WAL append,
    /// plus the fsync when this append closes a group-commit batch).
    pub fn on_apply(
        &mut self,
        region: usize,
        version: u64,
        writes: Vec<(Vec<u8>, Option<Vec<u8>>)>,
        bytes: u64,
        cost: &StorageCostConfig,
    ) -> SimDuration {
        self.wal.push(WalRecord {
            region,
            version,
            bytes,
            writes,
        });
        self.tail_applied[region] += 1;
        self.appends_since_snapshot += 1;
        self.stats.wal_appends += 1;
        self.stats.wal_bytes += bytes;
        let mut cpu = cost.wal_append_cost(bytes);
        if (self.wal.len() - self.synced) as u32 >= self.cfg.fsync.group_size() {
            cpu += self.fsync(cost);
        }
        cpu
    }

    fn fsync(&mut self, cost: &StorageCostConfig) -> SimDuration {
        for rec in &self.wal[self.synced..] {
            self.durable_applied[rec.region] += 1;
        }
        self.synced = self.wal.len();
        self.stats.fsync_batches += 1;
        cost.wal_fsync_cost()
    }

    /// Take a snapshot when the cadence is due. Returns the CPU to charge.
    pub fn maybe_snapshot(&mut self, kv: &KvEngine, cost: &StorageCostConfig) -> Option<SimDuration> {
        if self.appends_since_snapshot < self.cfg.snapshot_every_entries {
            return None;
        }
        Some(self.snapshot_now(kv, cost))
    }

    /// Persist the whole engine: the snapshot covers everything applied, so
    /// the WAL truncates and the durable prefix jumps to the applied prefix.
    pub fn snapshot_now(&mut self, kv: &KvEngine, cost: &StorageCostConfig) -> SimDuration {
        let bytes = kv.live_bytes();
        self.snapshot = Some(kv.clone());
        self.snapshot_size_bytes = bytes;
        self.durable_applied = self.tail_applied.clone();
        self.wal.clear();
        self.synced = 0;
        self.appends_since_snapshot = 0;
        self.stats.snapshots += 1;
        self.stats.snapshot_bytes += bytes;
        cost.snapshot_write_cost(bytes)
    }

    /// Crash: volatile state is gone. Rebuild from the snapshot plus the
    /// synced WAL prefix; the un-synced tail is dropped (the quorum still
    /// holds those entries and re-replicates them after rejoin).
    pub fn crash_and_recover(&mut self, cost: &StorageCostConfig) -> RecoveryOutcome {
        let lost = (self.wal.len() - self.synced) as u64;
        self.wal.truncate(self.synced);
        for (region, tail) in self.tail_applied.iter_mut().enumerate() {
            *tail = self.durable_applied[region];
        }

        let mut kv = self.snapshot.clone().unwrap_or_default();
        let mut replay_cpu = SimDuration::ZERO;
        let mut replayed_bytes = 0u64;
        for rec in &self.wal {
            for (key, value) in &rec.writes {
                kv.put_at(key.clone(), value.clone(), rec.version);
            }
            replay_cpu += cost.wal_replay_cost(rec.bytes);
            replayed_bytes += rec.bytes;
        }
        let recovery_time = cost.ssd_seek_latency()
            + cost.snapshot_load_cost(self.snapshot_size_bytes)
            + replay_cpu;

        let replayed_entries = self.wal.len() as u64;
        self.stats.recoveries += 1;
        self.stats.recovery_time_us += recovery_time.as_nanos() / 1_000;
        self.stats.replayed_entries += replayed_entries;
        self.stats.replayed_bytes += replayed_bytes;
        self.stats.lost_tail_entries += lost;

        RecoveryOutcome {
            kv,
            durable_applied: self.durable_applied.clone(),
            replayed_entries,
            replayed_bytes,
            lost_tail_entries: lost,
            recovery_time,
            replay_cpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(fsync: FsyncPolicy, snap: u64) -> DurabilityConfig {
        DurabilityConfig {
            enabled: true,
            fsync,
            snapshot_every_entries: snap,
        }
    }

    fn write(tag: u8) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        vec![(vec![tag], Some(vec![tag; 4]))]
    }

    #[test]
    fn defaults_are_off() {
        let d = DurabilityConfig::default();
        assert!(!d.enabled());
        assert_eq!(d.fsync.group_size(), 8);
    }

    #[test]
    fn every_entry_fsyncs_each_append() {
        let cost = StorageCostConfig::default();
        let mut d = DurableStore::new(cfg(FsyncPolicy::EveryEntry, 1_000), 2);
        for v in 1..=3u64 {
            d.on_apply(0, v, write(v as u8), 64, &cost);
        }
        assert_eq!(d.stats.wal_appends, 3);
        assert_eq!(d.stats.fsync_batches, 3);
        assert_eq!(d.durable_applied(0), 3);
    }

    #[test]
    fn group_commit_leaves_an_unsynced_tail() {
        let cost = StorageCostConfig::default();
        let mut d = DurableStore::new(cfg(FsyncPolicy::Group(4), 1_000), 1);
        for v in 1..=6u64 {
            d.on_apply(0, v, write(v as u8), 64, &cost);
        }
        // One fsync at 4 appends; records 5..6 are volatile.
        assert_eq!(d.stats.fsync_batches, 1);
        assert_eq!(d.durable_applied(0), 4);

        let out = d.crash_and_recover(&cost);
        assert_eq!(out.lost_tail_entries, 2);
        assert_eq!(out.replayed_entries, 4);
        assert_eq!(out.durable_applied, vec![4]);
        // Recovered engine holds exactly the synced writes.
        assert_eq!(out.kv.get_latest(&[4u8][..]).unwrap().value, &[4u8; 4][..]);
        assert!(out.kv.get_latest(&[5u8][..]).is_none());
    }

    #[test]
    fn snapshot_truncates_wal_and_makes_tail_durable() {
        let cost = StorageCostConfig::default();
        let mut d = DurableStore::new(cfg(FsyncPolicy::Group(64), 3), 1);
        let mut kv = KvEngine::new();
        for v in 1..=3u64 {
            kv.put_at(vec![v as u8], Some(vec![v as u8; 4]), v);
            d.on_apply(0, v, write(v as u8), 64, &cost);
        }
        // Third append crosses the cadence; the caller snapshots.
        assert!(d.maybe_snapshot(&kv, &cost).is_some());
        assert_eq!(d.stats.snapshots, 1);
        assert_eq!(d.durable_applied(0), 3, "snapshot covers the whole tail");

        let out = d.crash_and_recover(&cost);
        assert_eq!(out.replayed_entries, 0, "WAL was truncated by snapshot");
        assert_eq!(out.durable_applied, vec![3]);
        assert_eq!(out.kv.get_latest(&[2u8][..]).unwrap().value, &[2u8; 4][..]);
    }

    #[test]
    fn recovery_replays_only_the_synced_prefix() {
        let cost = StorageCostConfig::default();
        let mut d = DurableStore::new(cfg(FsyncPolicy::Group(2), 1_000), 1);
        for v in 1..=5u64 {
            d.on_apply(0, v, write(v as u8), 100, &cost);
        }
        let out = d.crash_and_recover(&cost);
        assert_eq!(out.replayed_entries, 4);
        assert_eq!(out.lost_tail_entries, 1);
        assert!(out.recovery_time > SimDuration::ZERO);
        assert!(out.replay_cpu > SimDuration::ZERO);
        // A second crash immediately after recovers the same state.
        let again = d.crash_and_recover(&cost);
        assert_eq!(again.durable_applied, out.durable_applied);
        assert_eq!(again.lost_tail_entries, 0);
    }

    #[test]
    fn ssd_resident_bytes_tracks_snapshot_plus_wal() {
        let cost = StorageCostConfig::default();
        let mut d = DurableStore::new(cfg(FsyncPolicy::EveryEntry, 1_000), 1);
        assert_eq!(d.ssd_resident_bytes(), 0);
        d.on_apply(0, 1, write(1), 128, &cost);
        assert_eq!(d.ssd_resident_bytes(), 128);
        let mut kv = KvEngine::new();
        kv.put_at(vec![1], Some(vec![1; 4]), 1);
        d.snapshot_now(&kv, &cost);
        assert_eq!(d.ssd_resident_bytes(), kv.live_bytes());
    }
}
