//! Error types for the storage substrate.

use std::fmt;

/// All the ways a query or storage operation can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Lexing/parsing failure, with position and message.
    Syntax { pos: usize, message: String },
    /// Reference to an unknown table.
    UnknownTable(String),
    /// Reference to an unknown column.
    UnknownColumn { table: String, column: String },
    /// Value incompatible with the column type.
    TypeMismatch { column: String, expected: &'static str },
    /// INSERT arity doesn't match the schema.
    ArityMismatch { expected: usize, got: usize },
    /// Duplicate primary key on INSERT.
    DuplicateKey(String),
    /// The Raft leader for a region is unavailable (crashed / partitioned).
    NoLeader { region: u64 },
    /// A consistent read could not validate the leader lease.
    LeaseExpired { region: u64 },
    /// Operation routed to a node that does not lead the region (stale
    /// routing after failover).
    NotLeader { region: u64, node: usize },
    /// Feature deliberately outside the SQL subset.
    Unsupported(String),
    /// A required component (e.g. a cache shard) is down and the caller's
    /// policy forbids degraded fallback.
    Unavailable { what: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Syntax { pos, message } => {
                write!(f, "syntax error at byte {pos}: {message}")
            }
            StoreError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            StoreError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column} on table {table}")
            }
            StoreError::TypeMismatch { column, expected } => {
                write!(f, "type mismatch for column {column}: expected {expected}")
            }
            StoreError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            StoreError::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            StoreError::NoLeader { region } => write!(f, "region {region} has no live leader"),
            StoreError::LeaseExpired { region } => {
                write!(f, "leader lease expired for region {region}")
            }
            StoreError::NotLeader { region, node } => {
                write!(f, "node {node} is not the leader of region {region}")
            }
            StoreError::Unsupported(what) => write!(f, "unsupported SQL: {what}"),
            StoreError::Unavailable { what } => write!(f, "unavailable: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

pub type StoreResult<T> = Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_usefully() {
        let e = StoreError::UnknownColumn {
            table: "tables".into(),
            column: "nope".into(),
        };
        assert!(e.to_string().contains("nope"));
        assert!(e.to_string().contains("tables"));
        let e = StoreError::Syntax {
            pos: 7,
            message: "expected FROM".into(),
        };
        assert!(e.to_string().contains("byte 7"));
    }
}
