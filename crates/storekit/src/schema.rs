//! Table schemas and the catalog.
//!
//! A schema names columns, gives them types, designates a primary key and
//! optional secondary indexes. The planner consults the catalog to choose
//! between point gets, index scans, and full scans — the distinction that
//! drives storage CPU cost.

use crate::error::{StoreError, StoreResult};
use crate::row::Row;
use crate::value::Datum;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Column types in the SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    Bool,
    Int,
    Float,
    Text,
    Bytes,
}

impl ColumnType {
    pub const fn name(self) -> &'static str {
        match self {
            ColumnType::Bool => "bool",
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Text => "text",
            ColumnType::Bytes => "bytes",
        }
    }

    /// Whether `datum` is admissible in a column of this type (NULL always is).
    pub fn admits(self, datum: &Datum) -> bool {
        matches!(
            (self, datum),
            (_, Datum::Null)
                | (ColumnType::Bool, Datum::Bool(_))
                | (ColumnType::Int, Datum::Int(_))
                | (ColumnType::Float, Datum::Float(_))
                | (ColumnType::Float, Datum::Int(_))
                | (ColumnType::Text, Datum::Text(_))
                | (ColumnType::Bytes, Datum::Bytes(_))
                | (ColumnType::Bytes, Datum::Payload { .. })
        )
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
}

impl ColumnDef {
    pub fn new(name: &str, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.to_string(),
            ty,
        }
    }
}

/// A table schema: ordered columns, primary key, secondary indexes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Index into `columns` of the primary key (single-column PKs only —
    /// matches what the workloads need and keeps key encoding simple).
    pub primary_key: usize,
    /// Column indices with secondary indexes.
    pub indexes: Vec<usize>,
}

impl TableSchema {
    /// Build a schema. `primary_key` and `indexed` are column names.
    pub fn new(
        name: &str,
        columns: Vec<ColumnDef>,
        primary_key: &str,
        indexed: &[&str],
    ) -> StoreResult<Self> {
        let find = |col: &str| -> StoreResult<usize> {
            columns
                .iter()
                .position(|c| c.name == col)
                .ok_or_else(|| StoreError::UnknownColumn {
                    table: name.to_string(),
                    column: col.to_string(),
                })
        };
        let pk = find(primary_key)?;
        let mut indexes = Vec::new();
        for col in indexed {
            let idx = find(col)?;
            if idx != pk && !indexes.contains(&idx) {
                indexes.push(idx);
            }
        }
        Ok(TableSchema {
            name: name.to_string(),
            columns,
            primary_key: pk,
            indexes,
        })
    }

    pub fn column_index(&self, name: &str) -> StoreResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StoreError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    pub fn is_indexed(&self, column: usize) -> bool {
        column == self.primary_key || self.indexes.contains(&column)
    }

    /// Validate a row against the schema (arity and types).
    pub fn validate(&self, row: &Row) -> StoreResult<()> {
        if row.len() != self.columns.len() {
            return Err(StoreError::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (col, datum) in self.columns.iter().zip(row.0.iter()) {
            if !col.ty.admits(datum) {
                return Err(StoreError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty.name(),
                });
            }
        }
        let pk = &row.0[self.primary_key];
        if pk.is_null() {
            return Err(StoreError::TypeMismatch {
                column: self.columns[self.primary_key].name.clone(),
                expected: "non-null primary key",
            });
        }
        Ok(())
    }

    /// The primary key datum of a row.
    pub fn pk_of<'r>(&self, row: &'r Row) -> &'r Datum {
        &row.0[self.primary_key]
    }
}

/// All table schemas in a database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: HashMap<String, TableSchema>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, schema: TableSchema) {
        self.tables.insert(schema.name.clone(), schema);
    }

    pub fn get(&self, table: &str) -> StoreResult<&TableSchema> {
        self.tables
            .get(table)
            .ok_or_else(|| StoreError::UnknownTable(table.to_string()))
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "users",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Text),
                ColumnDef::new("score", ColumnType::Float),
            ],
            "id",
            &["name"],
        )
        .unwrap()
    }

    #[test]
    fn schema_resolves_pk_and_indexes() {
        let s = schema();
        assert_eq!(s.primary_key, 0);
        assert_eq!(s.indexes, vec![1]);
        assert!(s.is_indexed(0));
        assert!(s.is_indexed(1));
        assert!(!s.is_indexed(2));
    }

    #[test]
    fn unknown_pk_column_is_an_error() {
        let err = TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ColumnType::Int)],
            "nope",
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::UnknownColumn { .. }));
    }

    #[test]
    fn validate_checks_arity_and_types() {
        let s = schema();
        assert!(s
            .validate(&Row(vec![1i64.into(), "bob".into(), 1.5.into()]))
            .is_ok());
        // float column admits int
        assert!(s
            .validate(&Row(vec![1i64.into(), "bob".into(), 2i64.into()]))
            .is_ok());
        assert!(matches!(
            s.validate(&Row(vec![1i64.into()])),
            Err(StoreError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.validate(&Row(vec!["x".into(), "bob".into(), 1.5.into()])),
            Err(StoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn null_pk_is_rejected_but_other_nulls_admitted() {
        let s = schema();
        assert!(s
            .validate(&Row(vec![Datum::Null, "bob".into(), 1.5.into()]))
            .is_err());
        assert!(s
            .validate(&Row(vec![1i64.into(), Datum::Null, Datum::Null]))
            .is_ok());
    }

    #[test]
    fn catalog_lookups() {
        let mut c = Catalog::new();
        c.add(schema());
        assert!(c.get("users").is_ok());
        assert!(matches!(c.get("ghosts"), Err(StoreError::UnknownTable(_))));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_index_and_pk_index_are_deduped() {
        let s = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("a", ColumnType::Int),
            ],
            "id",
            &["id", "a", "a"],
        )
        .unwrap();
        assert_eq!(s.indexes, vec![1]);
    }
}
