//! # storekit — the distributed SQL storage substrate
//!
//! The paper's testbed stores data in TiDB: stateless SQL front-ends (TiDB
//! pods) that parse, plan and drive queries, and Raft-replicated storage
//! pods (TiKV) holding MVCC key-value data behind a block cache. Its §5.5
//! finding — that even a trivial version check re-traverses the whole read
//! path (SQL front-end → transaction-layer lease validation → gRPC → row
//! fetch) — only reproduces if that path actually exists in code. So this
//! crate implements it:
//!
//! * [`sql`] — a real SQL subset engine: lexer → recursive-descent parser →
//!   planner (point-get / index-scan / full-scan / nested-loop join) →
//!   executor.
//! * [`kv`] — an MVCC key-value engine: versioned rows, snapshot reads,
//!   tombstones, and garbage collection.
//! * [`block`] — the storage-layer block cache (the paper's `s_D` knob): row
//!   reads either hit DRAM-resident blocks or pay the disk path.
//! * [`raft`] — replicated regions: leader append, quorum commit, follower
//!   apply, leader leases for consistent reads, and crash/failover handling
//!   (used by the Figure 8 delayed-writes scenario).
//! * [`cluster`] — the deployment façade: N SQL front-ends + M storage pods,
//!   each metered with [`simnet::CpuMeter`]; every query returns rows plus a
//!   [`cluster::QueryReceipt`] describing the work done, and charges CPU to
//!   the pods that did it.
//! * [`cost`] — the calibrated CPU cost constants (see DESIGN.md §5).
//! * [`durability`] — per-pod WAL + snapshots on a log-structured SSD tier,
//!   with group-commit fsync and crash recovery (snapshot load + WAL
//!   replay). Off by default; see DESIGN.md §10.

pub mod block;
pub mod cluster;
pub mod cost;
pub mod durability;
pub mod error;
pub mod kv;
pub mod raft;
pub mod row;
pub mod schema;
pub mod sql;
pub mod value;

pub use cluster::{ClusterConfig, QueryReceipt, SqlCluster};
pub use cost::StorageCostConfig;
pub use durability::{DurabilityConfig, DurabilityStats, FsyncPolicy};
pub use error::{StoreError, StoreResult};
pub use row::Row;
pub use schema::{Catalog, ColumnDef, TableSchema};
pub use value::Datum;
