//! Property-based safety tests for the Raft layer: under arbitrary
//! interleavings of proposals, crashes, restarts, elections and heartbeats,
//! committed entries are never lost and replica state machines never
//! diverge.

// The offline `proptest` stub swallows `proptest!` blocks, leaving the
// strategy helpers (and some imports) unreferenced in offline builds.
#![allow(dead_code, unused_imports)]
use proptest::prelude::*;
use simnet::{SimDuration, SimTime};
use storekit::raft::RaftGroup;
use storekit::sql::exec::WriteBatch;

#[derive(Debug, Clone)]
enum Step {
    Propose(u8),
    Crash(u8),
    Restart(u8),
    Elect,
    Tick,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => any::<u8>().prop_map(Step::Propose),
        1 => (0u8..3).prop_map(Step::Crash),
        1 => (0u8..3).prop_map(Step::Restart),
        1 => Just(Step::Elect),
        2 => Just(Step::Tick),
    ]
}

fn batch(tag: u8) -> WriteBatch {
    WriteBatch {
        table: format!("t{tag}"),
        logical_bytes: tag as u64,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core Raft safety argument, checked mechanically:
    /// 1. the commit index never regresses;
    /// 2. once an entry is committed, its (index → version) binding never
    ///    changes across failovers;
    /// 3. per-replica applied prefixes match the leader's log;
    /// 4. a live quorum can always eventually elect a leader.
    #[test]
    fn committed_entries_survive_any_schedule(steps in proptest::collection::vec(step_strategy(), 1..120)) {
        let mut g = RaftGroup::new(0, vec![10, 11, 12], SimTime::ZERO, SimDuration::from_secs(10));
        let mut next_version = 1u64;
        // Ground truth: versions of entries at each committed index.
        let mut committed_log: Vec<u64> = Vec::new();
        // Per-replica applied versions, in order.
        let mut applied: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let now = SimTime::ZERO;

        let record_ops = |g: &RaftGroup, ops: Vec<storekit::raft::ApplyOp>,
                              applied: &mut [Vec<u64>; 3]| {
            for op in ops {
                let version = g.entry(op.index).version;
                // Applies arrive in order per replica.
                assert_eq!(applied[op.slot].len(), op.index, "out-of-order apply");
                applied[op.slot].push(version);
            }
        };

        for step in steps {
            let commit_before = g.committed();
            match step {
                Step::Propose(tag) => {
                    let version = next_version;
                    if let Ok(ops) = g.propose(batch(tag), version, now) {
                        next_version += 1;
                        record_ops(&g, ops, &mut applied);
                    }
                }
                Step::Crash(slot) => g.crash(slot as usize),
                Step::Restart(slot) => g.restart(slot as usize),
                Step::Elect => {
                    let _ = g.elect(now);
                }
                Step::Tick => {
                    let ops = g.tick(now);
                    record_ops(&g, ops, &mut applied);
                }
            }
            // (1) commit never regresses.
            prop_assert!(g.committed() >= commit_before, "commit regressed");
            // (2) committed bindings are stable.
            for (index, &version) in committed_log.iter().enumerate() {
                prop_assert!(
                    g.log_len() > index,
                    "committed entry {index} truncated"
                );
                prop_assert_eq!(
                    g.entry(index).version,
                    version,
                    "committed entry {} changed identity",
                    index
                );
            }
            for index in committed_log.len()..g.committed() {
                committed_log.push(g.entry(index).version);
            }
            // (3) every replica's applied sequence is a prefix of the
            // committed log.
            for (slot, seq) in applied.iter().enumerate() {
                prop_assert!(seq.len() <= committed_log.len().max(g.committed()),
                    "replica {} applied beyond commit", slot);
                for (i, &v) in seq.iter().enumerate() {
                    prop_assert_eq!(v, g.entry(i).version,
                        "replica {} diverged at {}", slot, i);
                }
            }
        }

        // (4) liveness escape hatch: restart everyone, elect, tick — all
        // replicas converge to the full committed log.
        for slot in 0..3 {
            g.restart(slot);
        }
        let _ = g.elect(now);
        let ops = g.tick(now);
        record_ops(&g, ops, &mut applied);
        for (slot, seq) in applied.iter().enumerate() {
            prop_assert_eq!(seq.len(), g.committed(), "replica {} did not converge", slot);
        }
    }
}
