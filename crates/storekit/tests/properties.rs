//! Property-based tests for the storage substrate: MVCC visibility,
//! key-encoding order preservation, row codec totality, and SQL engine
//! equivalence against a naive reference implementation.

// The offline `proptest` stub swallows `proptest!` blocks, leaving the
// strategy helpers (and some imports) unreferenced in offline builds.
#![allow(dead_code, unused_imports)]
use proptest::prelude::*;
use storekit::kv::{encode_key_datum, KvEngine};
use storekit::row::Row;
use storekit::schema::{Catalog, ColumnDef, ColumnType, TableSchema};
use storekit::sql::exec::MemStore;
use storekit::value::Datum;
use std::collections::HashMap;

fn datum_strategy() -> impl Strategy<Value = Datum> {
    prop_oneof![
        Just(Datum::Null),
        any::<bool>().prop_map(Datum::Bool),
        any::<i64>().prop_map(Datum::Int),
        any::<f64>().prop_filter("finite", |x| x.is_finite()).prop_map(Datum::Float),
        "[a-zA-Z0-9 _'-]{0,40}".prop_map(Datum::Text),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Datum::Bytes),
        (0u64..1_000_000, any::<u64>()).prop_map(|(len, seed)| Datum::Payload { len, seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Row encode/decode is a bijection on well-formed rows.
    #[test]
    fn row_codec_round_trips(datums in proptest::collection::vec(datum_strategy(), 0..12)) {
        let row = Row(datums);
        let decoded = Row::decode(&row.encode()).unwrap();
        prop_assert_eq!(decoded, row);
    }

    /// Decoding never panics on arbitrary bytes — it returns Ok or Err.
    #[test]
    fn row_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Row::decode(&bytes);
    }

    /// Key encoding preserves value order for ints and text.
    #[test]
    fn int_key_order(a in any::<i64>(), b in any::<i64>()) {
        let enc = |v: i64| {
            let mut k = Vec::new();
            encode_key_datum(&mut k, &Datum::Int(v));
            k
        };
        prop_assert_eq!(a.cmp(&b), enc(a).cmp(&enc(b)));
    }

    #[test]
    fn text_key_order(a in "[\\x00-\\x7f]{0,24}", b in "[\\x00-\\x7f]{0,24}") {
        let enc = |v: &str| {
            let mut k = Vec::new();
            encode_key_datum(&mut k, &Datum::Text(v.to_string()));
            k
        };
        prop_assert_eq!(a.as_bytes().cmp(b.as_bytes()), enc(&a).cmp(&enc(&b)));
    }

    /// MVCC: a snapshot taken at version v always sees exactly the state as
    /// of v, regardless of later writes or deletes.
    #[test]
    fn mvcc_snapshots_are_stable(ops in proptest::collection::vec(
        (0u8..16, proptest::option::of(proptest::collection::vec(any::<u8>(), 0..8))), 1..60))
    {
        let mut kv = KvEngine::new();
        // Apply ops, remembering (version, full state) after each.
        let mut state: HashMap<u8, Vec<u8>> = HashMap::new();
        let mut checkpoints: Vec<(u64, HashMap<u8, Vec<u8>>)> = Vec::new();
        for (key, val) in &ops {
            let k = vec![*key];
            let version = match val {
                Some(v) => {
                    state.insert(*key, v.clone());
                    kv.put(k, v.clone())
                }
                None => {
                    state.remove(key);
                    kv.delete(k)
                }
            };
            checkpoints.push((version, state.clone()));
        }
        // Every historical snapshot must still read exactly its state.
        for (version, snapshot) in &checkpoints {
            for key in 0u8..16 {
                let got = kv.get_at(&[key], *version).map(|v| v.value.to_vec());
                prop_assert_eq!(got.as_ref(), snapshot.get(&key), "key {} at v{}", key, version);
            }
        }
    }

    /// SQL engine vs a naive in-memory table: point reads, indexed reads,
    /// updates and deletes agree.
    #[test]
    fn sql_engine_matches_reference(ops in proptest::collection::vec(
        (0u8..3, 0i64..24, 0i64..6, any::<u8>()), 1..80))
    {
        let mut catalog = Catalog::new();
        catalog.add(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("grp", ColumnType::Int),
                ColumnDef::new("val", ColumnType::Int),
            ],
            "id",
            &["grp"],
        ).unwrap());
        let mut store = MemStore::new(catalog);
        let mut reference: HashMap<i64, (i64, i64)> = HashMap::new();

        for (op, id, grp, val) in ops {
            let val = val as i64;
            match op {
                0 => { // upsert
                    store.run(
                        "REPLACE INTO t VALUES (?, ?, ?)",
                        &[id.into(), grp.into(), val.into()],
                    ).unwrap();
                    reference.insert(id, (grp, val));
                }
                1 => { // delete
                    store.run("DELETE FROM t WHERE id = ?", &[id.into()]).unwrap();
                    reference.remove(&id);
                }
                _ => { // update val by group
                    store.run(
                        "UPDATE t SET val = ? WHERE grp = ?",
                        &[val.into(), grp.into()],
                    ).unwrap();
                    for (_, v) in reference.values_mut().filter(|(g, _)| *g == grp) {
                        *v = val;
                    }
                }
            }
            // Point read agreement for the touched id.
            let got = store.run("SELECT grp, val FROM t WHERE id = ?", &[id.into()]).unwrap();
            match reference.get(&id) {
                None => prop_assert!(got.rows.is_empty()),
                Some((g, v)) => {
                    prop_assert_eq!(&got.rows[0], &Row(vec![Datum::Int(*g), Datum::Int(*v)]));
                }
            }
            // Indexed read agreement for the touched group.
            let got = store.run("SELECT COUNT(*) FROM t WHERE grp = ?", &[grp.into()]).unwrap();
            let expect = reference.values().filter(|(g, _)| *g == grp).count() as i64;
            prop_assert_eq!(got.rows[0].get(0), Some(&Datum::Int(expect)));
        }
    }
}
