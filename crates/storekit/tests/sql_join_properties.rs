//! Property tests for the SQL engine's joins, ranges, ordering and limits
//! against a brute-force reference over the same data.

// The offline `proptest` stub swallows `proptest!` blocks, leaving the
// strategy helpers (and some imports) unreferenced in offline builds.
#![allow(dead_code, unused_imports)]
use proptest::prelude::*;
use std::collections::HashMap;
use storekit::schema::{Catalog, ColumnDef, ColumnType, TableSchema};
use storekit::sql::exec::MemStore;
use storekit::value::Datum;

/// A small random database: `left(id, fk, x)` and `right(id, y)`.
#[derive(Debug, Clone)]
struct Db {
    left: Vec<(i64, i64, i64)>,
    right: Vec<(i64, i64)>,
}

fn db_strategy() -> impl Strategy<Value = Db> {
    let left = proptest::collection::vec((0i64..40, 0i64..12, 0i64..10), 0..30)
        .prop_map(|rows| {
            // de-duplicate primary keys, keeping first occurrence
            let mut seen = std::collections::HashSet::new();
            rows.into_iter()
                .filter(|(id, _, _)| seen.insert(*id))
                .collect::<Vec<_>>()
        });
    let right = proptest::collection::vec((0i64..12, 0i64..10), 0..12).prop_map(|rows| {
        let mut seen = std::collections::HashSet::new();
        rows.into_iter()
            .filter(|(id, _)| seen.insert(*id))
            .collect::<Vec<_>>()
    });
    (left, right).prop_map(|(left, right)| Db { left, right })
}

fn load(db: &Db) -> MemStore {
    let mut catalog = Catalog::new();
    catalog.add(
        TableSchema::new(
            "left",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("fk", ColumnType::Int),
                ColumnDef::new("x", ColumnType::Int),
            ],
            "id",
            &["fk"],
        )
        .unwrap(),
    );
    catalog.add(
        TableSchema::new(
            "right",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("y", ColumnType::Int),
            ],
            "id",
            &[],
        )
        .unwrap(),
    );
    let mut store = MemStore::new(catalog);
    for &(id, fk, x) in &db.left {
        store
            .run(
                "INSERT INTO left VALUES (?, ?, ?)",
                &[id.into(), fk.into(), x.into()],
            )
            .unwrap();
    }
    for &(id, y) in &db.right {
        store
            .run("INSERT INTO right VALUES (?, ?)", &[id.into(), y.into()])
            .unwrap();
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The equi-join matches the brute-force cross product filter, as a
    /// multiset of (x, y) pairs.
    #[test]
    fn join_matches_brute_force(db in db_strategy(), x_min in 0i64..10) {
        let mut store = load(&db);
        let out = store
            .run(
                "SELECT x, y FROM left JOIN right ON left.fk = right.id WHERE x >= ?",
                &[x_min.into()],
            )
            .unwrap();
        let mut got: Vec<(i64, i64)> = out
            .rows
            .iter()
            .map(|r| (r.get(0).unwrap().as_int().unwrap(), r.get(1).unwrap().as_int().unwrap()))
            .collect();
        got.sort_unstable();

        let right_by_id: HashMap<i64, i64> = db.right.iter().copied().collect();
        let mut expect: Vec<(i64, i64)> = db
            .left
            .iter()
            .filter(|(_, _, x)| *x >= x_min)
            .filter_map(|(_, fk, x)| right_by_id.get(fk).map(|y| (*x, *y)))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// COUNT(*) with an indexed equality agrees with direct counting, and
    /// the fk index returns exactly the matching rows after updates.
    #[test]
    fn indexed_count_is_exact(db in db_strategy(), probe_fk in 0i64..12) {
        let mut store = load(&db);
        let out = store
            .run("SELECT COUNT(*) FROM left WHERE fk = ?", &[probe_fk.into()])
            .unwrap();
        let expect = db.left.iter().filter(|(_, fk, _)| *fk == probe_fk).count() as i64;
        prop_assert_eq!(out.rows[0].get(0), Some(&Datum::Int(expect)));
    }

    /// ORDER BY x DESC LIMIT n returns the true top-n multiset, sorted.
    #[test]
    fn top_n_matches_reference(db in db_strategy(), n in 0i64..8) {
        let mut store = load(&db);
        let sql = format!("SELECT x FROM left ORDER BY x DESC LIMIT {n}");
        let out = store.run(&sql, &[]).unwrap();
        let got: Vec<i64> = out
            .rows
            .iter()
            .map(|r| r.get(0).unwrap().as_int().unwrap())
            .collect();
        let mut xs: Vec<i64> = db.left.iter().map(|(_, _, x)| *x).collect();
        xs.sort_unstable_by(|a, b| b.cmp(a));
        xs.truncate(n as usize);
        prop_assert_eq!(got, xs);
    }

    /// PK range scans agree with direct filtering at arbitrary bounds.
    #[test]
    fn pk_ranges_match_reference(db in db_strategy(), lo in 0i64..40, width in 0i64..40) {
        let mut store = load(&db);
        let hi = lo + width;
        let out = store
            .run(
                "SELECT id FROM left WHERE id >= ? AND id < ?",
                &[lo.into(), hi.into()],
            )
            .unwrap();
        let mut got: Vec<i64> = out
            .rows
            .iter()
            .map(|r| r.get(0).unwrap().as_int().unwrap())
            .collect();
        got.sort_unstable();
        let mut expect: Vec<i64> = db
            .left
            .iter()
            .map(|(id, _, _)| *id)
            .filter(|id| (lo..hi).contains(id))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
