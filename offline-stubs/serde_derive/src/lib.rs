//! No-op `Serialize`/`Deserialize` derives. The serde stub blanket-implements
//! both traits, so the derives only need to exist and emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
