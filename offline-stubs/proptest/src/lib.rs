//! Offline stand-in for `proptest`.
//!
//! KNOWN BEHAVIOR (documented in .claude/skills/verify/SKILL.md): the
//! `proptest!` macro compiles to NOTHING — property bodies are swallowed, so
//! plain `#[test]` drivers alongside the proptest blocks are the real
//! randomized coverage in this environment. Strategy combinators
//! (`prop_map`, `prop_oneof!`, `Just`, ranges, `collection::vec`, …) are
//! phantom types that typecheck with the real signatures but never generate
//! values, so strategy helper functions written outside the macro still
//! compile unchanged.

pub mod strategy {
    use std::marker::PhantomData;

    /// Phantom value-generation strategy. `Value` mirrors the real crate's
    /// associated type so `impl Strategy<Value = T>` signatures compile.
    pub trait Strategy {
        type Value;

        fn prop_map<O, F>(self, _f: F) -> BoxedStrategy<O>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            BoxedStrategy::phantom()
        }

        fn prop_filter<R, F>(self, _reason: R, _pred: F) -> Self
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            self
        }

        fn prop_flat_map<O, F>(self, _f: F) -> BoxedStrategy<O::Value>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            BoxedStrategy::phantom()
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy::phantom()
        }
    }

    /// Type-erased strategy handle.
    pub struct BoxedStrategy<T>(PhantomData<fn() -> T>);

    impl<T> BoxedStrategy<T> {
        pub fn phantom() -> Self {
            BoxedStrategy(PhantomData)
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(PhantomData)
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "BoxedStrategy<..>")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
    }

    /// Always-this-value strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T> Strategy for Just<T> {
        type Value = T;
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
            }
        )*};
    }

    impl_range_strategies!(
        u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32,
        f64
    );

    /// String-regex strategy: a `&str` literal generates matching `String`s
    /// in real proptest.
    impl Strategy for &'static str {
        type Value = String;
    }

    macro_rules! impl_tuple_strategies {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
            }
        )*};
    }

    impl_tuple_strategies!(
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    );

    /// Union of same-valued strategies — the target of `prop_oneof!`.
    pub fn union<T>(_arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        BoxedStrategy::phantom()
    }
}

pub mod arbitrary {
    use super::strategy::BoxedStrategy;

    /// `any::<T>()` — unconstrained in the stub; every type is "arbitrary".
    pub fn any<T>() -> BoxedStrategy<T> {
        BoxedStrategy::phantom()
    }
}

pub mod collection {
    use super::strategy::{BoxedStrategy, Strategy};

    /// `vec(strategy, size_range)` — the size argument is accepted
    /// generically (usize, Range<usize>, …) and ignored.
    pub fn vec<S: Strategy, R>(_element: S, _size: R) -> BoxedStrategy<Vec<S::Value>> {
        BoxedStrategy::phantom()
    }
}

pub mod option {
    use super::strategy::{BoxedStrategy, Strategy};

    pub fn of<S: Strategy>(_inner: S) -> BoxedStrategy<Option<S::Value>> {
        BoxedStrategy::phantom()
    }
}

pub mod test_runner {
    /// Runner configuration. Only constructed, never consulted — the
    /// `proptest!` macro this would configure compiles to nothing.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, ..Config::default() }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_shrink_iters: 1024 }
        }
    }
}

/// The whole-block property macro: swallowed. See crate docs.
#[macro_export]
macro_rules! proptest {
    ($($t:tt)*) => {};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($_weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => {
        assert!($($t)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => {
        assert_eq!($($t)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => {
        assert_ne!($($t)*)
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    // A representative out-of-macro strategy helper, in the style the
    // workspace writes them — must typecheck.
    fn _op_strategy() -> impl Strategy<Value = (u8, String)> {
        (0u8..4, "[a-z]{1,8}").prop_filter("nonzero", |(op, _)| *op != 3)
    }

    fn _union_of_boxed() -> BoxedStrategy<i64> {
        prop_oneof![
            3 => (0i64..40).boxed(),
            1 => Just(-1i64).boxed(),
        ]
    }

    #[test]
    fn strategies_construct() {
        let _ = _op_strategy();
        let _ = _union_of_boxed();
        let _ = crate::collection::vec(any::<u64>(), 0..256usize);
        let _ = crate::option::of(0u32..10);
        let cfg = ProptestConfig::with_cases(16);
        assert_eq!(cfg.cases, 16);
    }

    // Must expand to nothing.
    proptest! {
        #[test]
        fn swallowed(_x in 0u8..) {
            unreachable!("proptest! bodies never run in the offline stub");
        }
    }
}
