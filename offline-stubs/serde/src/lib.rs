//! Offline stand-in for `serde`.
//!
//! Serialization is a no-op in this environment (the JSON writer emits empty
//! strings; stdout tables are the observable output), so `Serialize` and
//! `Deserialize` are blanket-implemented marker traits and the derives are
//! no-ops. Bounds like `T: Serialize` and `#[derive(Serialize)]` compile
//! unchanged.

pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    /// Owned-deserialization marker, blanket-implemented like the real
    /// `DeserializeOwned` (which is auto-implemented for all
    /// `for<'de> Deserialize<'de>` types).
    pub trait DeserializeOwned: Sized {}

    impl<T> DeserializeOwned for T {}
}

pub mod ser {
    pub use super::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
