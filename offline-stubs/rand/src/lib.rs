//! Offline stand-in for `rand` 0.8.
//!
//! Implements the API subset the workspace uses (`StdRng`, `SeedableRng`,
//! `Rng::{gen, gen_bool, gen_range}`) with a deterministic splitmix64
//! generator. The simulator's headline invariant is *determinism*, not any
//! particular stream: same seed → same sequence, forever, on every platform.
//! Golden figures and calibration bands are blessed against this stream.
//!
//! Distribution details (kept stable — goldens depend on them):
//! - `next_u64` is one splitmix64 step (Steele et al., the SplitMix64
//!   finalizer over a Weyl sequence).
//! - `gen::<f64>()` is the standard 53-bit mantissa construction,
//!   `(next_u64 >> 11) * 2^-53`, uniform in `[0, 1)`.
//! - `gen_bool(p)` consumes one `f64` draw unless `p >= 1.0` (always true,
//!   no draw — mirrors rand's `Bernoulli` short-circuit so pure-read
//!   workloads don't burn stream positions).
//! - `gen_range(a..b)` maps one `next_u64` by modulo. The bias is < 2^-11
//!   for every range the workspace draws from; determinism matters here,
//!   statistical perfection does not.

use std::ops::Range;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Types drawable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn draw_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn draw_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn draw_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// One Bernoulli draw. `p >= 1` is always-true without consuming a
    /// stream position (mirrors rand's short-circuit); `p <= 0` consumes
    /// one draw and is always false.
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        f64::draw(self) < p
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.draw_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (rand-core shaped).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Seed from a bare u64. The full seed is the splitmix64 expansion of
    /// the input, so nearby integer seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut s = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic RNG: a splitmix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut first = [0u8; 8];
            first.copy_from_slice(&seed[..8]);
            StdRng {
                state: u64::from_le_bytes(first),
            }
        }
    }

    /// Small-footprint RNG: same stream family as [`StdRng`] here.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 16];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut first = [0u8; 8];
            first.copy_from_slice(&seed[..8]);
            SmallRng {
                state: u64::from_le_bytes(first),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_edge_cases() {
        let mut rng = StdRng::seed_from_u64(3);
        let before = rng.clone();
        assert!(rng.gen_bool(1.0));
        // p >= 1 must not consume a stream position.
        assert_eq!(rng.gen::<u64>(), before.clone().gen::<u64>());
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_800..3_200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
        let x = rng.gen_range(0.25f64..0.75);
        assert!((0.25..0.75).contains(&x));
    }
}
