//! Offline stand-in for `bytes` 1.x.
//!
//! `Bytes` and `BytesMut` are plain `Vec<u8>` wrappers — no refcounted
//! zero-copy slabs. The workspace's frames are small (KV protocol messages),
//! so copy-on-split is fine; what matters is API fidelity for the subset the
//! `netrpc` codec and the tokio stub use:
//! `put_u8/put_u32_le/put_u64_le/put_slice/extend_from_slice`,
//! `get_u8/get_u32_le/get_u64_le/remaining/advance/copy_to_bytes`,
//! `split_to/freeze`, indexing, and `Deref<[u8]>`.

use std::ops::{Deref, DerefMut};

/// Read-side cursor operations.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes past end of buffer");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write-side append operations.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte buffer. Here: an owned `Vec` plus a read cursor.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub const fn new() -> Self {
        Bytes { data: Vec::new(), pos: 0 }
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: src.to_vec(), pos: 0 }
    }

    pub fn from_static(src: &'static [u8]) -> Self {
        Bytes::copy_from_slice(src)
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.as_slice()[range])
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::copy_from_slice(src)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

/// Growable byte buffer with a read cursor at the front.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    pos: usize,
}

impl BytesMut {
    pub const fn new() -> Self {
        BytesMut { data: Vec::new(), pos: 0 }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap), pos: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    pub fn clear(&mut self) {
        self.data.clear();
        self.pos = 0;
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn capacity(&self) -> usize {
        self.data.capacity() - self.pos
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Split off the first `at` readable bytes into a new `BytesMut`,
    /// leaving the rest in `self`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to past end of BytesMut");
        let head = BytesMut {
            data: self.as_slice()[..at].to_vec(),
            pos: 0,
        };
        self.pos += at;
        self.compact();
        head
    }

    pub fn split(&mut self) -> BytesMut {
        let n = self.len();
        self.split_to(n)
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.as_slice().to_vec(), pos: 0 }
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.data.drain(..self.pos);
            self.pos = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of BytesMut");
        self.pos += cnt;
        self.compact();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let pos = self.pos;
        &mut self.data[pos..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: src.to_vec(), pos: 0 }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", self.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_slice(b"hello");

        let mut frame = buf.freeze();
        assert_eq!(frame.get_u8(), 7);
        assert_eq!(frame.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frame.get_u64_le(), 42);
        assert_eq!(frame.copy_to_bytes(5).to_vec(), b"hello");
        assert_eq!(frame.remaining(), 0);
    }

    #[test]
    fn split_to_and_freeze() {
        let mut buf = BytesMut::from(&b"0123456789"[..]);
        let head = buf.split_to(4).freeze();
        assert_eq!(&head[..], b"0123");
        assert_eq!(&buf[..], b"456789");
        assert_eq!(buf.len(), 6);
    }

    #[test]
    fn advance_then_index() {
        let mut buf = BytesMut::from(&b"abcdef"[..]);
        buf.advance(2);
        assert_eq!(&buf[0..2], b"cd");
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn length_prefix_framing_shape() {
        // The exact pattern split_frame uses: peek 4-byte LE length, then
        // advance + split_to + freeze.
        let mut buf = BytesMut::new();
        let payload = b"payload";
        buf.put_u32_le(payload.len() as u32);
        buf.put_slice(payload);
        buf.put_slice(b"next-frame-partial");

        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        buf.advance(4);
        let frame = buf.split_to(len).freeze();
        assert_eq!(&frame[..], payload);
        assert_eq!(&buf[..], b"next-frame-partial");
    }
}
