//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Same API shape for the subset the workspace uses: `lock()` returns the
//! guard directly (no `Result`), poisoning is swallowed by taking the inner
//! value — matching parking_lot's no-poisoning semantics closely enough for
//! test workloads.

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
