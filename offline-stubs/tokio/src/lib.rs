//! Offline stand-in for `tokio`.
//!
//! A deliberately simple runtime with real concurrency semantics:
//!
//! - `block_on` drives a future by polling with a no-op waker, sleeping
//!   ~200µs between `Pending` polls. No reactor, no wakeups — just cheap
//!   re-polls. Latency floor per await point is one poll interval, which is
//!   well inside every timeout the workspace's tests use.
//! - `spawn` runs each task on its own OS thread with the same polling
//!   loop, so spawned servers and clients are genuinely concurrent.
//! - `net::TcpStream`/`net::TcpListener` wrap std sockets in nonblocking
//!   mode; `WouldBlock` maps to `Pending`, so `time::timeout` really does
//!   preempt a stalled read (the resilience tests depend on this).
//! - `select!` supports the two-arm form the workspace uses, polling arms
//!   in order and dropping the loser (cancel-safe the same way the real
//!   one is for these futures: a pending `read_buf`/`changed` holds no
//!   partial state).
//!
//! Everything here is driven by the test suite that uses it; it is not a
//! general-purpose runtime.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::time::Duration;

pub use tokio_macros::{main, test};

/// Interval between polls of a pending future. Low enough that network
/// round-trips stay in the tens-of-microseconds-to-millisecond range.
const POLL_INTERVAL: Duration = Duration::from_micros(200);

fn noop_waker() -> Waker {
    fn clone(_: *const ()) -> RawWaker {
        RawWaker::new(std::ptr::null(), &VTABLE)
    }
    fn noop(_: *const ()) {}
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, noop, noop, noop);
    // SAFETY: every vtable entry is a no-op on a null pointer.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
}

pub mod runtime {
    use super::*;

    /// Drive a future to completion on the current thread.
    pub fn block_on<F: Future>(fut: F) -> F::Output {
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => std::thread::sleep(POLL_INTERVAL),
            }
        }
    }
}

pub mod task {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    /// Why a join completed without a value.
    #[derive(Debug)]
    pub struct JoinError {
        panicked: bool,
    }

    impl JoinError {
        pub fn is_panic(&self) -> bool {
            self.panicked
        }

        pub fn is_cancelled(&self) -> bool {
            !self.panicked
        }
    }

    impl std::fmt::Display for JoinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            if self.panicked {
                write!(f, "task panicked")
            } else {
                write!(f, "task was cancelled")
            }
        }
    }

    impl std::error::Error for JoinError {}

    pub(crate) struct TaskState<T> {
        pub(crate) result: Mutex<Option<Result<T, JoinError>>>,
        pub(crate) aborted: AtomicBool,
        pub(crate) finished: AtomicBool,
    }

    /// Await to join; `abort()` to request cancellation at the next poll
    /// boundary.
    pub struct JoinHandle<T> {
        pub(crate) state: Arc<TaskState<T>>,
    }

    impl<T> JoinHandle<T> {
        pub fn abort(&self) {
            self.state.aborted.store(true, Ordering::SeqCst);
        }

        pub fn is_finished(&self) -> bool {
            self.state.finished.load(Ordering::SeqCst)
        }
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;

        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            if !self.state.finished.load(Ordering::Acquire) {
                return Poll::Pending;
            }
            let taken = self
                .state
                .result
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("JoinHandle polled after completion was consumed");
            Poll::Ready(taken)
        }
    }

    pub(crate) fn spawn_inner<F>(fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let state = Arc::new(TaskState {
            result: Mutex::new(None),
            aborted: AtomicBool::new(false),
            finished: AtomicBool::new(false),
        });
        let task_state = state.clone();
        std::thread::spawn(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let waker = noop_waker();
                let mut cx = Context::from_waker(&waker);
                let mut fut = Box::pin(fut);
                loop {
                    if task_state.aborted.load(Ordering::SeqCst) {
                        return None;
                    }
                    match fut.as_mut().poll(&mut cx) {
                        Poll::Ready(v) => return Some(v),
                        Poll::Pending => std::thread::sleep(POLL_INTERVAL),
                    }
                }
            }));
            let stored = match outcome {
                Ok(Some(v)) => Ok(v),
                Ok(None) => Err(JoinError { panicked: false }),
                Err(_) => Err(JoinError { panicked: true }),
            };
            *task_state
                .result
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(stored);
            task_state.finished.store(true, Ordering::Release);
        });
        JoinHandle { state }
    }
}

/// Spawn a task on its own thread; returns a handle that is a future.
pub fn spawn<F>(fut: F) -> task::JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    task::spawn_inner(fut)
}

pub mod net {
    use super::*;
    use std::io::{self, Read, Write};
    use std::net::{SocketAddr, ToSocketAddrs};

    /// Nonblocking std TCP stream driven by polling.
    pub struct TcpStream {
        pub(crate) inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Connects synchronously (loopback dials resolve immediately —
        /// either established or refused), then switches to nonblocking for
        /// all I/O so read/write futures can yield.
        pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
            let inner = std::net::TcpStream::connect(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpStream { inner })
        }

        pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
            self.inner.set_nodelay(nodelay)
        }

        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        pub(crate) fn poll_read_into(&self, sink: &mut dyn FnMut(&[u8])) -> Poll<io::Result<usize>> {
            let mut scratch = [0u8; 16 * 1024];
            match (&self.inner).read(&mut scratch) {
                Ok(0) => Poll::Ready(Ok(0)),
                Ok(n) => {
                    sink(&scratch[..n]);
                    Poll::Ready(Ok(n))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => Poll::Pending,
                Err(e) => Poll::Ready(Err(e)),
            }
        }

        pub(crate) fn poll_write_some(&self, data: &[u8]) -> Poll<io::Result<usize>> {
            match (&self.inner).write(data) {
                Ok(n) => Poll::Ready(Ok(n)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => Poll::Pending,
                Err(e) => Poll::Ready(Err(e)),
            }
        }
    }

    /// Nonblocking std TCP listener driven by polling.
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
            let inner = std::net::TcpListener::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpListener { inner })
        }

        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        pub fn accept(&self) -> Accept<'_> {
            Accept { listener: self }
        }
    }

    pub struct Accept<'a> {
        listener: &'a TcpListener,
    }

    impl Future for Accept<'_> {
        type Output = io::Result<(TcpStream, SocketAddr)>;

        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            match self.listener.inner.accept() {
                Ok((stream, peer)) => {
                    if let Err(e) = stream.set_nonblocking(true) {
                        return Poll::Ready(Err(e));
                    }
                    Poll::Ready(Ok((TcpStream { inner: stream }, peer)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => Poll::Pending,
                Err(e) => Poll::Ready(Err(e)),
            }
        }
    }
}

pub mod io {
    use super::net::TcpStream;
    use super::*;
    use bytes::BytesMut;
    use std::io as stdio;

    /// Async read combinators for [`TcpStream`]. (Implemented concretely,
    /// not over a generic `AsyncRead` — this runtime has one stream type.)
    pub trait AsyncReadExt {
        fn read_buf<'a>(&'a mut self, buf: &'a mut BytesMut) -> ReadBuf<'a>;
        fn read_to_end<'a>(&'a mut self, buf: &'a mut Vec<u8>) -> ReadToEnd<'a>;
    }

    impl AsyncReadExt for TcpStream {
        fn read_buf<'a>(&'a mut self, buf: &'a mut BytesMut) -> ReadBuf<'a> {
            ReadBuf { stream: self, buf }
        }

        fn read_to_end<'a>(&'a mut self, buf: &'a mut Vec<u8>) -> ReadToEnd<'a> {
            ReadToEnd { stream: self, buf, total: 0 }
        }
    }

    /// Async write combinators for [`TcpStream`].
    pub trait AsyncWriteExt {
        fn write_all<'a>(&'a mut self, data: &'a [u8]) -> WriteAll<'a>;
    }

    impl AsyncWriteExt for TcpStream {
        fn write_all<'a>(&'a mut self, data: &'a [u8]) -> WriteAll<'a> {
            WriteAll { stream: self, data, written: 0 }
        }
    }

    pub struct ReadBuf<'a> {
        stream: &'a TcpStream,
        buf: &'a mut BytesMut,
    }

    impl Future for ReadBuf<'_> {
        type Output = stdio::Result<usize>;

        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = self.get_mut();
            let buf = &mut *this.buf;
            this.stream.poll_read_into(&mut |chunk| buf.extend_from_slice(chunk))
        }
    }

    pub struct ReadToEnd<'a> {
        stream: &'a TcpStream,
        buf: &'a mut Vec<u8>,
        total: usize,
    }

    impl Future for ReadToEnd<'_> {
        type Output = stdio::Result<usize>;

        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = self.get_mut();
            loop {
                let buf = &mut *this.buf;
                match this.stream.poll_read_into(&mut |chunk| buf.extend_from_slice(chunk)) {
                    Poll::Ready(Ok(0)) => return Poll::Ready(Ok(this.total)),
                    Poll::Ready(Ok(n)) => this.total += n,
                    Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                    Poll::Pending => return Poll::Pending,
                }
            }
        }
    }

    pub struct WriteAll<'a> {
        stream: &'a TcpStream,
        data: &'a [u8],
        written: usize,
    }

    impl Future for WriteAll<'_> {
        type Output = stdio::Result<()>;

        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = self.get_mut();
            while this.written < this.data.len() {
                match this.stream.poll_write_some(&this.data[this.written..]) {
                    Poll::Ready(Ok(0)) => {
                        return Poll::Ready(Err(stdio::Error::new(
                            stdio::ErrorKind::WriteZero,
                            "wrote zero bytes",
                        )))
                    }
                    Poll::Ready(Ok(n)) => this.written += n,
                    Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                    Poll::Pending => return Poll::Pending,
                }
            }
            Poll::Ready(Ok(()))
        }
    }
}

pub mod sync {
    pub mod watch {
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::{Arc, Mutex, PoisonError};
        use std::task::{Context, Poll};

        pub mod error {
            /// All senders are gone and the current value was already seen.
            #[derive(Debug, PartialEq, Eq)]
            pub struct RecvError(pub(crate) ());

            impl std::fmt::Display for RecvError {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    write!(f, "watch channel closed")
                }
            }

            impl std::error::Error for RecvError {}

            #[derive(Debug)]
            pub struct SendError<T>(pub T);

            impl<T> std::fmt::Display for SendError<T> {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    write!(f, "watch channel closed")
                }
            }
        }

        struct State<T> {
            value: T,
            version: u64,
            closed: bool,
        }

        struct Shared<T> {
            state: Mutex<State<T>>,
        }

        impl<T> Shared<T> {
            fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
                self.state.lock().unwrap_or_else(PoisonError::into_inner)
            }
        }

        pub struct Sender<T> {
            shared: Arc<Shared<T>>,
        }

        impl<T> Sender<T> {
            pub fn send(&self, value: T) -> Result<(), error::SendError<T>> {
                let mut st = self.shared.lock();
                st.value = value;
                st.version += 1;
                Ok(())
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                self.shared.lock().closed = true;
            }
        }

        pub struct Receiver<T> {
            shared: Arc<Shared<T>>,
            seen: u64,
        }

        impl<T> Receiver<T> {
            /// Completes when a value newer than the last-seen one is
            /// available, marking it seen. Dropping the returned future
            /// before completion marks nothing (cancel-safe).
            pub fn changed(&mut self) -> Changed<'_, T> {
                Changed { rx: self }
            }

            pub fn borrow(&self) -> Ref<'_, T> {
                Ref { guard: self.shared.lock() }
            }
        }

        impl<T> Clone for Receiver<T> {
            /// The clone starts having seen whatever the source has seen.
            fn clone(&self) -> Self {
                Receiver { shared: self.shared.clone(), seen: self.seen }
            }
        }

        pub struct Ref<'a, T> {
            guard: std::sync::MutexGuard<'a, super::watch::State<T>>,
        }

        impl<T> std::ops::Deref for Ref<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.guard.value
            }
        }

        pub struct Changed<'a, T> {
            rx: &'a mut Receiver<T>,
        }

        impl<T> Future for Changed<'_, T> {
            type Output = Result<(), error::RecvError>;

            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
                let this = self.get_mut();
                let (version, closed) = {
                    let st = this.rx.shared.lock();
                    (st.version, st.closed)
                };
                if version != this.rx.seen {
                    this.rx.seen = version;
                    Poll::Ready(Ok(()))
                } else if closed {
                    Poll::Ready(Err(error::RecvError(())))
                } else {
                    Poll::Pending
                }
            }
        }

        pub fn channel<T>(initial: T) -> (Sender<T>, Receiver<T>) {
            let shared = Arc::new(Shared {
                state: Mutex::new(State { value: initial, version: 0, closed: false }),
            });
            (
                Sender { shared: shared.clone() },
                Receiver { shared, seen: 0 },
            )
        }
    }
}

pub mod time {
    use super::*;
    use std::time::Instant;

    pub mod error {
        /// A [`super::timeout`] deadline fired before the inner future
        /// finished.
        #[derive(Debug, PartialEq, Eq)]
        pub struct Elapsed(pub(crate) ());

        impl std::fmt::Display for Elapsed {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "deadline has elapsed")
            }
        }

        impl std::error::Error for Elapsed {}
    }

    pub use error::Elapsed;

    pub struct Sleep {
        deadline: Instant,
    }

    impl Future for Sleep {
        type Output = ();

        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
            if Instant::now() >= self.deadline {
                Poll::Ready(())
            } else {
                Poll::Pending
            }
        }
    }

    pub fn sleep(duration: Duration) -> Sleep {
        Sleep { deadline: Instant::now() + duration }
    }

    pub struct Timeout<F> {
        fut: F,
        deadline: Instant,
    }

    impl<F: Future> Future for Timeout<F> {
        type Output = Result<F::Output, Elapsed>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            // SAFETY: `fut` is structurally pinned — never moved out of
            // `self`, and `Timeout` has no Drop impl that would move it.
            let this = unsafe { self.get_unchecked_mut() };
            let fut = unsafe { Pin::new_unchecked(&mut this.fut) };
            match fut.poll(cx) {
                Poll::Ready(v) => Poll::Ready(Ok(v)),
                Poll::Pending => {
                    if Instant::now() >= this.deadline {
                        Poll::Ready(Err(Elapsed(())))
                    } else {
                        Poll::Pending
                    }
                }
            }
        }
    }

    /// Deadline starts now, like the real `tokio::time::timeout`.
    pub fn timeout<F: Future>(duration: Duration, fut: F) -> Timeout<F> {
        Timeout { fut, deadline: Instant::now() + duration }
    }
}

pub mod signal {
    /// Never resolves in the stub: the standalone server bins run until
    /// killed, which is how they are used in this environment.
    pub async fn ctrl_c() -> std::io::Result<()> {
        std::future::pending::<()>().await;
        Ok(())
    }
}

#[doc(hidden)]
pub mod macros_support {
    use super::*;

    pub enum Either2<A, B> {
        A(A),
        B(B),
    }

    /// Two-future race for `select!`: polls in declaration order, first
    /// ready wins, the loser is dropped with the `Select2`.
    pub struct Select2<A: Future, B: Future> {
        a: Pin<Box<A>>,
        b: Pin<Box<B>>,
    }

    impl<A: Future, B: Future> Select2<A, B> {
        pub fn new(a: A, b: B) -> Self {
            Select2 { a: Box::pin(a), b: Box::pin(b) }
        }
    }

    impl<A: Future, B: Future> Future for Select2<A, B> {
        type Output = Either2<A::Output, B::Output>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = self.get_mut();
            if let Poll::Ready(v) = this.a.as_mut().poll(cx) {
                return Poll::Ready(Either2::A(v));
            }
            if let Poll::Ready(v) = this.b.as_mut().poll(cx) {
                return Poll::Ready(Either2::B(v));
            }
            Poll::Pending
        }
    }
}

/// Two-arm `select!`. Arms are polled in order (biased); `break`,
/// `continue`, `return`, and `?` work inside arm bodies because the
/// expansion is a plain `match` in the enclosing scope.
#[macro_export]
macro_rules! select {
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:expr $(,)?) => {
        match $crate::macros_support::Select2::new($f1, $f2).await {
            $crate::macros_support::Either2::A($p1) => $b1,
            $crate::macros_support::Either2::B($p2) => $b2,
        }
    };
    ($p1:pat = $f1:expr => $b1:expr, $p2:pat = $f2:expr => $b2:expr $(,)?) => {
        match $crate::macros_support::Select2::new($f1, $f2).await {
            $crate::macros_support::Either2::A($p1) => $b1,
            $crate::macros_support::Either2::B($p2) => $b2,
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_and_spawn_round_trip() {
        let out = runtime::block_on(async {
            let handle = spawn(async { 21 * 2 });
            handle.await.unwrap()
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn abort_cancels_a_pending_task() {
        runtime::block_on(async {
            let handle = spawn(async {
                std::future::pending::<()>().await;
            });
            handle.abort();
            let err = (handle).await.unwrap_err();
            assert!(err.is_cancelled());
        });
    }

    #[test]
    fn timeout_fires_on_pending() {
        runtime::block_on(async {
            let r = time::timeout(Duration::from_millis(20), std::future::pending::<()>()).await;
            assert!(r.is_err());
            let r = time::timeout(Duration::from_millis(200), async { 5 }).await;
            assert_eq!(r.unwrap(), 5);
        });
    }

    #[test]
    fn sleep_waits_roughly_the_duration() {
        let start = std::time::Instant::now();
        runtime::block_on(time::sleep(Duration::from_millis(30)));
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn watch_changed_sees_send_and_close() {
        runtime::block_on(async {
            let (tx, mut rx) = sync::watch::channel(false);
            let mut rx2 = rx.clone();
            tx.send(true).unwrap();
            rx.changed().await.unwrap();
            assert!(*rx.borrow());
            rx2.changed().await.unwrap();
            drop(tx);
            assert!(rx.changed().await.is_err(), "closed channel errors");
        });
    }

    #[test]
    fn select_is_biased_and_supports_break() {
        runtime::block_on(async {
            let mut hits = 0;
            loop {
                select! {
                    v = async { 1 } => {
                        hits += v;
                        if hits >= 3 {
                            break;
                        }
                    }
                    _ = std::future::pending::<()>() => unreachable!(),
                }
            }
            assert_eq!(hits, 3);
            // Second-arm completion with the expr-arm syntax.
            let picked = select! {
                _ = std::future::pending::<()>() => 0,
                v = async { 7 } => v,
            };
            assert_eq!(picked, 7);
        });
    }

    #[test]
    fn tcp_echo_between_tasks() {
        use crate::io::{AsyncReadExt, AsyncWriteExt};
        runtime::block_on(async {
            let listener = net::TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = spawn(async move {
                let (mut sock, _) = listener.accept().await.unwrap();
                let mut buf = bytes::BytesMut::new();
                while sock.read_buf(&mut buf).await.unwrap() > 0 {
                    if buf.len() >= 4 {
                        break;
                    }
                }
                let echoed = buf.to_vec();
                sock.write_all(&echoed).await.unwrap();
                echoed
            });
            let mut client = net::TcpStream::connect(addr).await.unwrap();
            client.set_nodelay(true).unwrap();
            client.write_all(b"ping").await.unwrap();
            let mut back = Vec::new();
            client.read_to_end(&mut back).await.unwrap();
            assert_eq!(back, b"ping");
            assert_eq!(server.await.unwrap(), b"ping");
        });
    }
}
