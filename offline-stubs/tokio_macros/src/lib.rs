//! `#[tokio::main]` / `#[tokio::test]` without syn/quote: a token-level
//! rewrite. Given an `async fn`, drop the `async` qualifier and wrap the
//! body in `::tokio::runtime::block_on(async move { ... })`. Attribute
//! arguments (`flavor`, `worker_threads`, …) are accepted and ignored — the
//! stub runtime has one flavor.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

fn transform(item: TokenStream, is_test: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let body_idx = tokens
        .iter()
        .rposition(|t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace))
        .expect("tokio attribute macros require a fn with a body");

    let mut out = TokenStream::new();
    if is_test {
        out.extend("#[test]".parse::<TokenStream>().unwrap());
    }
    for (i, token) in tokens.iter().enumerate() {
        if i == body_idx {
            let body = match token {
                TokenTree::Group(g) => g.stream(),
                _ => unreachable!(),
            };
            // { ::tokio::runtime::block_on(async move { <body> }) }
            let mut async_block = TokenStream::new();
            async_block.extend("async move".parse::<TokenStream>().unwrap());
            async_block.extend([TokenTree::Group(Group::new(Delimiter::Brace, body))]);

            let mut call = TokenStream::new();
            call.extend("::tokio::runtime::block_on".parse::<TokenStream>().unwrap());
            call.extend([TokenTree::Group(Group::new(
                Delimiter::Parenthesis,
                async_block,
            ))]);

            out.extend([TokenTree::Group(Group::new(Delimiter::Brace, call))]);
        } else if matches!(token, TokenTree::Ident(id) if id.to_string() == "async") {
            // The fn qualifier; everything before the body is signature, so
            // this cannot be an async block inside user code.
            continue;
        } else {
            out.extend([token.clone()]);
        }
    }
    out
}

#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    transform(item, false)
}

#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    transform(item, true)
}
