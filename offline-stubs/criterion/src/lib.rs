//! Offline stand-in for `criterion` 0.5.
//!
//! `cargo bench` compiles and each benchmark body executes exactly once as a
//! smoke test — no statistics, no reports. This keeps `benches/micro.rs`
//! honest (the closures still run against real code) without criterion's
//! dependency tree.

use std::time::Instant;

pub use std::hint::black_box;

/// Per-iteration driver handed to benchmark closures.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        black_box(body());
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut body: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(body(setup()));
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(&format!("{}/{}", self.name, id), &mut body);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let start = Instant::now();
        let mut b = Bencher { _private: () };
        body(&mut b, input);
        eprintln!("bench {label}: ran once in {:?} (offline stub)", start.elapsed());
        self
    }

    pub fn finish(self) {}
}

fn run_once<F: FnMut(&mut Bencher)>(label: &str, body: &mut F) {
    let start = Instant::now();
    let mut b = Bencher { _private: () };
    body(&mut b);
    eprintln!("bench {label}: ran once in {:?} (offline stub)", start.elapsed());
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(id, &mut body);
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(20);
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("range", 100u64), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("fixed", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    #[test]
    fn bodies_run_once() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
