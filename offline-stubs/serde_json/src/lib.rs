//! Offline stand-in for `serde_json`.
//!
//! KNOWN BEHAVIOR (documented in .claude/skills/verify/SKILL.md): all
//! serializers succeed but emit NOTHING. `to_string` returns `""` and
//! `to_writer_pretty` writes zero bytes, so every `results/*.json` artifact
//! comes out empty. The stdout tables printed by the bins are the real
//! observable output; goldens snapshot report values in-process, not via
//! JSON. Run `git checkout -- results/` after invoking bins to restore the
//! committed artifacts.

use serde::Serialize;
use std::fmt;

#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json offline stub error")
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::other(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized + Serialize>(_value: &T) -> Result<String> {
    Ok(String::new())
}

pub fn to_string_pretty<T: ?Sized + Serialize>(_value: &T) -> Result<String> {
    Ok(String::new())
}

pub fn to_writer<W: std::io::Write, T: ?Sized + Serialize>(
    _writer: W,
    _value: &T,
) -> Result<()> {
    Ok(())
}

pub fn to_writer_pretty<W: std::io::Write, T: ?Sized + Serialize>(
    _writer: W,
    _value: &T,
) -> Result<()> {
    Ok(())
}
