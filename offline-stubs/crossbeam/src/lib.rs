//! Offline stand-in for `crossbeam`. Nothing in the workspace uses it today;
//! the patch entry exists so the dependency table stays complete offline.
