//! # dcache-cost — the cost of distributed caches, reproduced
//!
//! This crate is the facade over a from-scratch Rust reproduction of
//! *Rethinking the Cost of Distributed Caches for Datacenter Services*
//! (HotNets '25): do distributed in-memory caches add cost (DRAM is
//! expensive) or save it (CPU is more expensive)? The paper's answer —
//! they cut total operating cost by multiples — is reproduced here on a
//! deterministic simulated substrate.
//!
//! ## The pieces (re-exported from the workspace crates)
//!
//! | module | crate | what it is |
//! |---|---|---|
//! | [`sim`] | `simnet` | deterministic event kernel, CPU meters, network + faults |
//! | [`cache`] | `cachekit` | eviction policies, bounded caches, sharding, MRC estimation |
//! | [`store`] | `storekit` | SQL subset engine, MVCC KV + block cache, Raft regions |
//! | [`net`] | `netrpc` | a *real* tokio TCP remote-cache (protocol + server + client) |
//! | [`workload`] | `workloads` | Zipf/Meta/Twitter/Unity-Catalog trace generators |
//! | [`cost`] | `costmodel` | GCP pricing + the §4 analytical model |
//! | [`study`] | `dcache` | the architectures, experiment runner, consistency machinery |
//! | [`obs`] | `telemetry` | request tracing, metrics registry, CPU-attribution profiler |
//!
//! ## Quickstart
//!
//! ```
//! use dcache_cost::study::{
//!     experiment::{run_kv_experiment, KvExperimentConfig},
//!     ArchKind, DeploymentConfig,
//! };
//! use dcache_cost::workload::{KvWorkloadConfig, SizeDist};
//! use dcache_cost::cost::Pricing;
//!
//! let cfg = KvExperimentConfig {
//!     deployment: DeploymentConfig::test_small(ArchKind::Linked),
//!     workload: KvWorkloadConfig {
//!         keys: 1_000,
//!         alpha: 1.2,
//!         read_ratio: 0.95,
//!         sizes: SizeDist::Fixed(1_024),
//!         seed: 42,
//!         churn_period: None,
//!     },
//!     qps: 50_000.0,
//!     warmup_requests: 2_000,
//!     requests: 2_000,
//!     prewarm: false,
//!     crash_leaders_at_request: None,
//!     cache_fault_schedule: None,
//!     trace_sample_every: None,
//!     diurnal: None,
//!     observability: None,
//!     tenants: None,
//!     pricing: Pricing::default(),
//! };
//! let report = run_kv_experiment(&cfg).unwrap();
//! assert!(report.total_cost.total() > 0.0);
//! println!("linked cache costs ${:.2}/month", report.total_cost.total());
//! ```
//!
//! See `examples/` for the full tour and `crates/bench` for the binaries
//! that regenerate every figure in the paper.

pub use cachekit as cache;
pub use costmodel as cost;
pub use dcache as study;
pub use netrpc as net;
pub use simnet as sim;
pub use storekit as store;
pub use telemetry as obs;
pub use workloads as workload;
