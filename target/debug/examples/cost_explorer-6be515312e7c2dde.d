/root/repo/target/debug/examples/cost_explorer-6be515312e7c2dde.d: examples/cost_explorer.rs

/root/repo/target/debug/examples/cost_explorer-6be515312e7c2dde: examples/cost_explorer.rs

examples/cost_explorer.rs:
