/root/repo/target/debug/examples/consistent_cache-d1c9046e312775e1.d: examples/consistent_cache.rs

/root/repo/target/debug/examples/consistent_cache-d1c9046e312775e1: examples/consistent_cache.rs

examples/consistent_cache.rs:
