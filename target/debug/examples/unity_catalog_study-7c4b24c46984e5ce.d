/root/repo/target/debug/examples/unity_catalog_study-7c4b24c46984e5ce.d: examples/unity_catalog_study.rs

/root/repo/target/debug/examples/libunity_catalog_study-7c4b24c46984e5ce.rmeta: examples/unity_catalog_study.rs

examples/unity_catalog_study.rs:
