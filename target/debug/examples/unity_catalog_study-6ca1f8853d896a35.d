/root/repo/target/debug/examples/unity_catalog_study-6ca1f8853d896a35.d: examples/unity_catalog_study.rs

/root/repo/target/debug/examples/libunity_catalog_study-6ca1f8853d896a35.rmeta: examples/unity_catalog_study.rs

examples/unity_catalog_study.rs:
