/root/repo/target/debug/examples/unity_catalog_study-b05187bb4a690eca.d: examples/unity_catalog_study.rs

/root/repo/target/debug/examples/unity_catalog_study-b05187bb4a690eca: examples/unity_catalog_study.rs

examples/unity_catalog_study.rs:
