/root/repo/target/debug/examples/consistent_cache-323ad94c5033ce6c.d: examples/consistent_cache.rs

/root/repo/target/debug/examples/libconsistent_cache-323ad94c5033ce6c.rmeta: examples/consistent_cache.rs

examples/consistent_cache.rs:
