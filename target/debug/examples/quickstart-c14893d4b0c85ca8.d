/root/repo/target/debug/examples/quickstart-c14893d4b0c85ca8.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-c14893d4b0c85ca8.rmeta: examples/quickstart.rs

examples/quickstart.rs:
