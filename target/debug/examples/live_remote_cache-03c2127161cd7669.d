/root/repo/target/debug/examples/live_remote_cache-03c2127161cd7669.d: examples/live_remote_cache.rs

/root/repo/target/debug/examples/live_remote_cache-03c2127161cd7669: examples/live_remote_cache.rs

examples/live_remote_cache.rs:
