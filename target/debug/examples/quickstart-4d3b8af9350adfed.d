/root/repo/target/debug/examples/quickstart-4d3b8af9350adfed.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4d3b8af9350adfed: examples/quickstart.rs

examples/quickstart.rs:
