/root/repo/target/debug/examples/cost_explorer-a4d2610322afac24.d: examples/cost_explorer.rs

/root/repo/target/debug/examples/libcost_explorer-a4d2610322afac24.rmeta: examples/cost_explorer.rs

examples/cost_explorer.rs:
