/root/repo/target/debug/examples/live_remote_cache-b2e5f5ae4e38b512.d: examples/live_remote_cache.rs

/root/repo/target/debug/examples/liblive_remote_cache-b2e5f5ae4e38b512.rmeta: examples/live_remote_cache.rs

examples/live_remote_cache.rs:
