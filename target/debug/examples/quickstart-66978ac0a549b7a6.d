/root/repo/target/debug/examples/quickstart-66978ac0a549b7a6.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-66978ac0a549b7a6.rmeta: examples/quickstart.rs

examples/quickstart.rs:
