/root/repo/target/debug/examples/cost_explorer-e9183657d3ad6188.d: examples/cost_explorer.rs

/root/repo/target/debug/examples/libcost_explorer-e9183657d3ad6188.rmeta: examples/cost_explorer.rs

examples/cost_explorer.rs:
