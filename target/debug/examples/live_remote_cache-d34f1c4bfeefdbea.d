/root/repo/target/debug/examples/live_remote_cache-d34f1c4bfeefdbea.d: examples/live_remote_cache.rs

/root/repo/target/debug/examples/liblive_remote_cache-d34f1c4bfeefdbea.rmeta: examples/live_remote_cache.rs

examples/live_remote_cache.rs:
