/root/repo/target/debug/examples/consistent_cache-a92b3bc6416a4de9.d: examples/consistent_cache.rs

/root/repo/target/debug/examples/libconsistent_cache-a92b3bc6416a4de9.rmeta: examples/consistent_cache.rs

examples/consistent_cache.rs:
