/root/repo/target/debug/deps/repro_all-4ebe54bd54d6b176.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/librepro_all-4ebe54bd54d6b176.rmeta: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
