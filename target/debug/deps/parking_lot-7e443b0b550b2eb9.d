/root/repo/target/debug/deps/parking_lot-7e443b0b550b2eb9.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-7e443b0b550b2eb9.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
