/root/repo/target/debug/deps/live-a135a188547f238a.d: crates/netrpc/tests/live.rs

/root/repo/target/debug/deps/liblive-a135a188547f238a.rmeta: crates/netrpc/tests/live.rs

crates/netrpc/tests/live.rs:
