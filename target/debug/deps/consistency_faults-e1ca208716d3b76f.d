/root/repo/target/debug/deps/consistency_faults-e1ca208716d3b76f.d: tests/consistency_faults.rs

/root/repo/target/debug/deps/consistency_faults-e1ca208716d3b76f: tests/consistency_faults.rs

tests/consistency_faults.rs:
