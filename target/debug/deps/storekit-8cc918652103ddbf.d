/root/repo/target/debug/deps/storekit-8cc918652103ddbf.d: crates/storekit/src/lib.rs crates/storekit/src/block.rs crates/storekit/src/cluster.rs crates/storekit/src/cost.rs crates/storekit/src/error.rs crates/storekit/src/kv.rs crates/storekit/src/raft.rs crates/storekit/src/row.rs crates/storekit/src/schema.rs crates/storekit/src/sql/mod.rs crates/storekit/src/sql/ast.rs crates/storekit/src/sql/exec.rs crates/storekit/src/sql/lexer.rs crates/storekit/src/sql/parser.rs crates/storekit/src/sql/plan.rs crates/storekit/src/value.rs

/root/repo/target/debug/deps/libstorekit-8cc918652103ddbf.rmeta: crates/storekit/src/lib.rs crates/storekit/src/block.rs crates/storekit/src/cluster.rs crates/storekit/src/cost.rs crates/storekit/src/error.rs crates/storekit/src/kv.rs crates/storekit/src/raft.rs crates/storekit/src/row.rs crates/storekit/src/schema.rs crates/storekit/src/sql/mod.rs crates/storekit/src/sql/ast.rs crates/storekit/src/sql/exec.rs crates/storekit/src/sql/lexer.rs crates/storekit/src/sql/parser.rs crates/storekit/src/sql/plan.rs crates/storekit/src/value.rs

crates/storekit/src/lib.rs:
crates/storekit/src/block.rs:
crates/storekit/src/cluster.rs:
crates/storekit/src/cost.rs:
crates/storekit/src/error.rs:
crates/storekit/src/kv.rs:
crates/storekit/src/raft.rs:
crates/storekit/src/row.rs:
crates/storekit/src/schema.rs:
crates/storekit/src/sql/mod.rs:
crates/storekit/src/sql/ast.rs:
crates/storekit/src/sql/exec.rs:
crates/storekit/src/sql/lexer.rs:
crates/storekit/src/sql/parser.rs:
crates/storekit/src/sql/plan.rs:
crates/storekit/src/value.rs:
