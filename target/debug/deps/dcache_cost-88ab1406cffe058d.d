/root/repo/target/debug/deps/dcache_cost-88ab1406cffe058d.d: src/lib.rs

/root/repo/target/debug/deps/libdcache_cost-88ab1406cffe058d.rmeta: src/lib.rs

src/lib.rs:
