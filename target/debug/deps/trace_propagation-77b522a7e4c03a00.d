/root/repo/target/debug/deps/trace_propagation-77b522a7e4c03a00.d: crates/dcache/tests/trace_propagation.rs

/root/repo/target/debug/deps/trace_propagation-77b522a7e4c03a00: crates/dcache/tests/trace_propagation.rs

crates/dcache/tests/trace_propagation.rs:
