/root/repo/target/debug/deps/dcache_cost-470bdd50df1a3a41.d: src/lib.rs

/root/repo/target/debug/deps/libdcache_cost-470bdd50df1a3a41.rmeta: src/lib.rs

src/lib.rs:
