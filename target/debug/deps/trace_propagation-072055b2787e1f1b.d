/root/repo/target/debug/deps/trace_propagation-072055b2787e1f1b.d: crates/dcache/tests/trace_propagation.rs

/root/repo/target/debug/deps/libtrace_propagation-072055b2787e1f1b.rmeta: crates/dcache/tests/trace_propagation.rs

crates/dcache/tests/trace_propagation.rs:
