/root/repo/target/debug/deps/repro_all-5ffb23576b512980.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-5ffb23576b512980: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
