/root/repo/target/debug/deps/resilience-89c77b004434433a.d: crates/netrpc/tests/resilience.rs

/root/repo/target/debug/deps/libresilience-89c77b004434433a.rmeta: crates/netrpc/tests/resilience.rs

crates/netrpc/tests/resilience.rs:
