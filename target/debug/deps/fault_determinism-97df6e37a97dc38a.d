/root/repo/target/debug/deps/fault_determinism-97df6e37a97dc38a.d: tests/fault_determinism.rs

/root/repo/target/debug/deps/fault_determinism-97df6e37a97dc38a: tests/fault_determinism.rs

tests/fault_determinism.rs:
