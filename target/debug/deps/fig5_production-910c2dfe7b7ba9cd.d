/root/repo/target/debug/deps/fig5_production-910c2dfe7b7ba9cd.d: crates/bench/src/bin/fig5_production.rs

/root/repo/target/debug/deps/libfig5_production-910c2dfe7b7ba9cd.rmeta: crates/bench/src/bin/fig5_production.rs

crates/bench/src/bin/fig5_production.rs:
