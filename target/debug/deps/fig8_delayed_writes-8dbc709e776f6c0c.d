/root/repo/target/debug/deps/fig8_delayed_writes-8dbc709e776f6c0c.d: crates/bench/src/bin/fig8_delayed_writes.rs

/root/repo/target/debug/deps/libfig8_delayed_writes-8dbc709e776f6c0c.rmeta: crates/bench/src/bin/fig8_delayed_writes.rs

crates/bench/src/bin/fig8_delayed_writes.rs:
