/root/repo/target/debug/deps/telemetry-85650476321417ab.d: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs

/root/repo/target/debug/deps/libtelemetry-85650476321417ab.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/profile.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
crates/telemetry/src/json.rs:
