/root/repo/target/debug/deps/costmodel-e0c44b97a64bb7f4.d: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

/root/repo/target/debug/deps/libcostmodel-e0c44b97a64bb7f4.rmeta: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

crates/costmodel/src/lib.rs:
crates/costmodel/src/pricing.rs:
crates/costmodel/src/ssd.rs:
crates/costmodel/src/theory.rs:
