/root/repo/target/debug/deps/bytes-630e493b695d4828.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-630e493b695d4828.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
