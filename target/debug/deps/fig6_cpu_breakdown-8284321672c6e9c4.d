/root/repo/target/debug/deps/fig6_cpu_breakdown-8284321672c6e9c4.d: crates/bench/src/bin/fig6_cpu_breakdown.rs

/root/repo/target/debug/deps/fig6_cpu_breakdown-8284321672c6e9c4: crates/bench/src/bin/fig6_cpu_breakdown.rs

crates/bench/src/bin/fig6_cpu_breakdown.rs:
