/root/repo/target/debug/deps/fig3_unity_trace-06d5faeae613e2f4.d: crates/bench/src/bin/fig3_unity_trace.rs

/root/repo/target/debug/deps/fig3_unity_trace-06d5faeae613e2f4: crates/bench/src/bin/fig3_unity_trace.rs

crates/bench/src/bin/fig3_unity_trace.rs:
