/root/repo/target/debug/deps/netrpc-294ac5da1255bbb3.d: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/obs.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

/root/repo/target/debug/deps/libnetrpc-294ac5da1255bbb3.rmeta: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/obs.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

crates/netrpc/src/lib.rs:
crates/netrpc/src/client.rs:
crates/netrpc/src/codec.rs:
crates/netrpc/src/obs.rs:
crates/netrpc/src/resilient.rs:
crates/netrpc/src/server.rs:
