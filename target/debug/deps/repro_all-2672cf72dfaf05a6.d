/root/repo/target/debug/deps/repro_all-2672cf72dfaf05a6.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/librepro_all-2672cf72dfaf05a6.rmeta: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
