/root/repo/target/debug/deps/ablation_faults-8cf556f0d980fc11.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/debug/deps/libablation_faults-8cf556f0d980fc11.rmeta: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
