/root/repo/target/debug/deps/telemetry-9c6720cd87e257ee.d: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs

/root/repo/target/debug/deps/libtelemetry-9c6720cd87e257ee.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs

/root/repo/target/debug/deps/libtelemetry-9c6720cd87e257ee.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/profile.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
crates/telemetry/src/json.rs:
