/root/repo/target/debug/deps/netrpc-7dc72fbc1e54ede6.d: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/obs.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

/root/repo/target/debug/deps/libnetrpc-7dc72fbc1e54ede6.rlib: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/obs.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

/root/repo/target/debug/deps/libnetrpc-7dc72fbc1e54ede6.rmeta: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/obs.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

crates/netrpc/src/lib.rs:
crates/netrpc/src/client.rs:
crates/netrpc/src/codec.rs:
crates/netrpc/src/obs.rs:
crates/netrpc/src/resilient.rs:
crates/netrpc/src/server.rs:
