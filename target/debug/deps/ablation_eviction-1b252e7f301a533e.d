/root/repo/target/debug/deps/ablation_eviction-1b252e7f301a533e.d: crates/bench/src/bin/ablation_eviction.rs

/root/repo/target/debug/deps/ablation_eviction-1b252e7f301a533e: crates/bench/src/bin/ablation_eviction.rs

crates/bench/src/bin/ablation_eviction.rs:
