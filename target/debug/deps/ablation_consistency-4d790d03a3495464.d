/root/repo/target/debug/deps/ablation_consistency-4d790d03a3495464.d: crates/bench/src/bin/ablation_consistency.rs

/root/repo/target/debug/deps/ablation_consistency-4d790d03a3495464: crates/bench/src/bin/ablation_consistency.rs

crates/bench/src/bin/ablation_consistency.rs:
