/root/repo/target/debug/deps/properties-c9261eb7981b5e83.d: crates/cachekit/tests/properties.rs

/root/repo/target/debug/deps/libproperties-c9261eb7981b5e83.rmeta: crates/cachekit/tests/properties.rs

crates/cachekit/tests/properties.rs:
