/root/repo/target/debug/deps/exp_sessions-a96781cdf5fd39e7.d: crates/bench/src/bin/exp_sessions.rs

/root/repo/target/debug/deps/libexp_sessions-a96781cdf5fd39e7.rmeta: crates/bench/src/bin/exp_sessions.rs

crates/bench/src/bin/exp_sessions.rs:
