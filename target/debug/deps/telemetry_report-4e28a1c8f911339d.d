/root/repo/target/debug/deps/telemetry_report-4e28a1c8f911339d.d: crates/bench/src/bin/telemetry_report.rs

/root/repo/target/debug/deps/telemetry_report-4e28a1c8f911339d: crates/bench/src/bin/telemetry_report.rs

crates/bench/src/bin/telemetry_report.rs:
