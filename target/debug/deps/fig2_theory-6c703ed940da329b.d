/root/repo/target/debug/deps/fig2_theory-6c703ed940da329b.d: crates/bench/src/bin/fig2_theory.rs

/root/repo/target/debug/deps/libfig2_theory-6c703ed940da329b.rmeta: crates/bench/src/bin/fig2_theory.rs

crates/bench/src/bin/fig2_theory.rs:
