/root/repo/target/debug/deps/fig8_delayed_writes-2093544d3e61abe9.d: crates/bench/src/bin/fig8_delayed_writes.rs

/root/repo/target/debug/deps/libfig8_delayed_writes-2093544d3e61abe9.rmeta: crates/bench/src/bin/fig8_delayed_writes.rs

crates/bench/src/bin/fig8_delayed_writes.rs:
