/root/repo/target/debug/deps/ablation_eviction-42ca6de116903b01.d: crates/bench/src/bin/ablation_eviction.rs

/root/repo/target/debug/deps/libablation_eviction-42ca6de116903b01.rmeta: crates/bench/src/bin/ablation_eviction.rs

crates/bench/src/bin/ablation_eviction.rs:
