/root/repo/target/debug/deps/fig5_production-92ad2b9c83378840.d: crates/bench/src/bin/fig5_production.rs

/root/repo/target/debug/deps/libfig5_production-92ad2b9c83378840.rmeta: crates/bench/src/bin/fig5_production.rs

crates/bench/src/bin/fig5_production.rs:
