/root/repo/target/debug/deps/ablation_consistency-b033bf2bd9b26aeb.d: crates/bench/src/bin/ablation_consistency.rs

/root/repo/target/debug/deps/libablation_consistency-b033bf2bd9b26aeb.rmeta: crates/bench/src/bin/ablation_consistency.rs

crates/bench/src/bin/ablation_consistency.rs:
