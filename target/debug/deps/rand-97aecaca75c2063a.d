/root/repo/target/debug/deps/rand-97aecaca75c2063a.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-97aecaca75c2063a.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-97aecaca75c2063a.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
