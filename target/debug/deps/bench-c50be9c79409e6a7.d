/root/repo/target/debug/deps/bench-c50be9c79409e6a7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-c50be9c79409e6a7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
