/root/repo/target/debug/deps/end_to_end-9ab29eff54a8a84e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9ab29eff54a8a84e: tests/end_to_end.rs

tests/end_to_end.rs:
