/root/repo/target/debug/deps/ablation_churn-c0ebd20979a84507.d: crates/bench/src/bin/ablation_churn.rs

/root/repo/target/debug/deps/libablation_churn-c0ebd20979a84507.rmeta: crates/bench/src/bin/ablation_churn.rs

crates/bench/src/bin/ablation_churn.rs:
