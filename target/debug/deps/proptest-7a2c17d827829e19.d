/root/repo/target/debug/deps/proptest-7a2c17d827829e19.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7a2c17d827829e19.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
