/root/repo/target/debug/deps/ablation_ttl-ede488081ce16d69.d: crates/bench/src/bin/ablation_ttl.rs

/root/repo/target/debug/deps/libablation_ttl-ede488081ce16d69.rmeta: crates/bench/src/bin/ablation_ttl.rs

crates/bench/src/bin/ablation_ttl.rs:
