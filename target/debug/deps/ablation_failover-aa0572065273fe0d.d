/root/repo/target/debug/deps/ablation_failover-aa0572065273fe0d.d: crates/bench/src/bin/ablation_failover.rs

/root/repo/target/debug/deps/libablation_failover-aa0572065273fe0d.rmeta: crates/bench/src/bin/ablation_failover.rs

crates/bench/src/bin/ablation_failover.rs:
