/root/repo/target/debug/deps/ablation_ttl-09406e58d951e5dc.d: crates/bench/src/bin/ablation_ttl.rs

/root/repo/target/debug/deps/libablation_ttl-09406e58d951e5dc.rmeta: crates/bench/src/bin/ablation_ttl.rs

crates/bench/src/bin/ablation_ttl.rs:
