/root/repo/target/debug/deps/costmodel-531a809a13fb7af1.d: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

/root/repo/target/debug/deps/libcostmodel-531a809a13fb7af1.rmeta: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

crates/costmodel/src/lib.rs:
crates/costmodel/src/pricing.rs:
crates/costmodel/src/ssd.rs:
crates/costmodel/src/theory.rs:
