/root/repo/target/debug/deps/costmodel-c90eab5cb8d7833f.d: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

/root/repo/target/debug/deps/costmodel-c90eab5cb8d7833f: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

crates/costmodel/src/lib.rs:
crates/costmodel/src/pricing.rs:
crates/costmodel/src/ssd.rs:
crates/costmodel/src/theory.rs:
