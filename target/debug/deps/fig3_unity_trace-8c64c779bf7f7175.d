/root/repo/target/debug/deps/fig3_unity_trace-8c64c779bf7f7175.d: crates/bench/src/bin/fig3_unity_trace.rs

/root/repo/target/debug/deps/libfig3_unity_trace-8c64c779bf7f7175.rmeta: crates/bench/src/bin/fig3_unity_trace.rs

crates/bench/src/bin/fig3_unity_trace.rs:
