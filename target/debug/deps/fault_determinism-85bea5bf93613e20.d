/root/repo/target/debug/deps/fault_determinism-85bea5bf93613e20.d: tests/fault_determinism.rs

/root/repo/target/debug/deps/libfault_determinism-85bea5bf93613e20.rmeta: tests/fault_determinism.rs

tests/fault_determinism.rs:
