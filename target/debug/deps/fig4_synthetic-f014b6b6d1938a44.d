/root/repo/target/debug/deps/fig4_synthetic-f014b6b6d1938a44.d: crates/bench/src/bin/fig4_synthetic.rs

/root/repo/target/debug/deps/libfig4_synthetic-f014b6b6d1938a44.rmeta: crates/bench/src/bin/fig4_synthetic.rs

crates/bench/src/bin/fig4_synthetic.rs:
