/root/repo/target/debug/deps/raft_safety-de085fc0ac016a7a.d: crates/storekit/tests/raft_safety.rs

/root/repo/target/debug/deps/raft_safety-de085fc0ac016a7a: crates/storekit/tests/raft_safety.rs

crates/storekit/tests/raft_safety.rs:
