/root/repo/target/debug/deps/cachekit-741a17a8779d74f7.d: crates/cachekit/src/lib.rs crates/cachekit/src/admission.rs crates/cachekit/src/cache.rs crates/cachekit/src/list.rs crates/cachekit/src/mrc.rs crates/cachekit/src/policy.rs crates/cachekit/src/ring.rs crates/cachekit/src/sharded.rs crates/cachekit/src/stats.rs

/root/repo/target/debug/deps/libcachekit-741a17a8779d74f7.rmeta: crates/cachekit/src/lib.rs crates/cachekit/src/admission.rs crates/cachekit/src/cache.rs crates/cachekit/src/list.rs crates/cachekit/src/mrc.rs crates/cachekit/src/policy.rs crates/cachekit/src/ring.rs crates/cachekit/src/sharded.rs crates/cachekit/src/stats.rs

crates/cachekit/src/lib.rs:
crates/cachekit/src/admission.rs:
crates/cachekit/src/cache.rs:
crates/cachekit/src/list.rs:
crates/cachekit/src/mrc.rs:
crates/cachekit/src/policy.rs:
crates/cachekit/src/ring.rs:
crates/cachekit/src/sharded.rs:
crates/cachekit/src/stats.rs:
