/root/repo/target/debug/deps/fault_determinism-af2f850b7a6a7cdf.d: tests/fault_determinism.rs

/root/repo/target/debug/deps/libfault_determinism-af2f850b7a6a7cdf.rmeta: tests/fault_determinism.rs

tests/fault_determinism.rs:
