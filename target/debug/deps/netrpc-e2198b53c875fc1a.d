/root/repo/target/debug/deps/netrpc-e2198b53c875fc1a.d: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/obs.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

/root/repo/target/debug/deps/libnetrpc-e2198b53c875fc1a.rmeta: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/obs.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

crates/netrpc/src/lib.rs:
crates/netrpc/src/client.rs:
crates/netrpc/src/codec.rs:
crates/netrpc/src/obs.rs:
crates/netrpc/src/resilient.rs:
crates/netrpc/src/server.rs:
