/root/repo/target/debug/deps/ablation_consistency-e77ead0522583a15.d: crates/bench/src/bin/ablation_consistency.rs

/root/repo/target/debug/deps/libablation_consistency-e77ead0522583a15.rmeta: crates/bench/src/bin/ablation_consistency.rs

crates/bench/src/bin/ablation_consistency.rs:
