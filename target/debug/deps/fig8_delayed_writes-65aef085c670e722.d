/root/repo/target/debug/deps/fig8_delayed_writes-65aef085c670e722.d: crates/bench/src/bin/fig8_delayed_writes.rs

/root/repo/target/debug/deps/libfig8_delayed_writes-65aef085c670e722.rmeta: crates/bench/src/bin/fig8_delayed_writes.rs

crates/bench/src/bin/fig8_delayed_writes.rs:
