/root/repo/target/debug/deps/end_to_end-76c72893678a4c68.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-76c72893678a4c68.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
