/root/repo/target/debug/deps/dcache-7436bf3568dab5cd.d: crates/dcache/src/lib.rs crates/dcache/src/config.rs crates/dcache/src/consistency.rs crates/dcache/src/deployment.rs crates/dcache/src/experiment.rs crates/dcache/src/lease.rs crates/dcache/src/sessionapp.rs crates/dcache/src/unityapp.rs

/root/repo/target/debug/deps/dcache-7436bf3568dab5cd: crates/dcache/src/lib.rs crates/dcache/src/config.rs crates/dcache/src/consistency.rs crates/dcache/src/deployment.rs crates/dcache/src/experiment.rs crates/dcache/src/lease.rs crates/dcache/src/sessionapp.rs crates/dcache/src/unityapp.rs

crates/dcache/src/lib.rs:
crates/dcache/src/config.rs:
crates/dcache/src/consistency.rs:
crates/dcache/src/deployment.rs:
crates/dcache/src/experiment.rs:
crates/dcache/src/lease.rs:
crates/dcache/src/sessionapp.rs:
crates/dcache/src/unityapp.rs:
