/root/repo/target/debug/deps/ablation_churn-9ce3464a4dcb79ee.d: crates/bench/src/bin/ablation_churn.rs

/root/repo/target/debug/deps/ablation_churn-9ce3464a4dcb79ee: crates/bench/src/bin/ablation_churn.rs

crates/bench/src/bin/ablation_churn.rs:
