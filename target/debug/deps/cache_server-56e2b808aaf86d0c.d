/root/repo/target/debug/deps/cache_server-56e2b808aaf86d0c.d: crates/netrpc/src/bin/cache_server.rs

/root/repo/target/debug/deps/cache_server-56e2b808aaf86d0c: crates/netrpc/src/bin/cache_server.rs

crates/netrpc/src/bin/cache_server.rs:
