/root/repo/target/debug/deps/rand-4f8659ede78343d7.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4f8659ede78343d7.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
