/root/repo/target/debug/deps/ablation_faults-012e644fc9c90c2e.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/debug/deps/libablation_faults-012e644fc9c90c2e.rmeta: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
