/root/repo/target/debug/deps/telemetry-cba6f0e1f0fd0288.d: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-cba6f0e1f0fd0288.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/profile.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
crates/telemetry/src/json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
