/root/repo/target/debug/deps/telemetry_report-05ebdd5ebdf1e362.d: crates/bench/src/bin/telemetry_report.rs

/root/repo/target/debug/deps/libtelemetry_report-05ebdd5ebdf1e362.rmeta: crates/bench/src/bin/telemetry_report.rs

crates/bench/src/bin/telemetry_report.rs:
