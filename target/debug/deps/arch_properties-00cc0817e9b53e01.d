/root/repo/target/debug/deps/arch_properties-00cc0817e9b53e01.d: crates/dcache/tests/arch_properties.rs

/root/repo/target/debug/deps/libarch_properties-00cc0817e9b53e01.rmeta: crates/dcache/tests/arch_properties.rs

crates/dcache/tests/arch_properties.rs:
