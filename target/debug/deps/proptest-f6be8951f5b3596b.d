/root/repo/target/debug/deps/proptest-f6be8951f5b3596b.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f6be8951f5b3596b.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f6be8951f5b3596b.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
