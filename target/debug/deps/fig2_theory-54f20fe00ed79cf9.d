/root/repo/target/debug/deps/fig2_theory-54f20fe00ed79cf9.d: crates/bench/src/bin/fig2_theory.rs

/root/repo/target/debug/deps/libfig2_theory-54f20fe00ed79cf9.rmeta: crates/bench/src/bin/fig2_theory.rs

crates/bench/src/bin/fig2_theory.rs:
