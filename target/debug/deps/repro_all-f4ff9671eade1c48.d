/root/repo/target/debug/deps/repro_all-f4ff9671eade1c48.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/librepro_all-f4ff9671eade1c48.rmeta: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
