/root/repo/target/debug/deps/costmodel-9699e40c7006efb4.d: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

/root/repo/target/debug/deps/libcostmodel-9699e40c7006efb4.rmeta: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

crates/costmodel/src/lib.rs:
crates/costmodel/src/pricing.rs:
crates/costmodel/src/ssd.rs:
crates/costmodel/src/theory.rs:
