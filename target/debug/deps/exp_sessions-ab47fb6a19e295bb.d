/root/repo/target/debug/deps/exp_sessions-ab47fb6a19e295bb.d: crates/bench/src/bin/exp_sessions.rs

/root/repo/target/debug/deps/libexp_sessions-ab47fb6a19e295bb.rmeta: crates/bench/src/bin/exp_sessions.rs

crates/bench/src/bin/exp_sessions.rs:
