/root/repo/target/debug/deps/fig7_rich_objects-023272e80a8b2a08.d: crates/bench/src/bin/fig7_rich_objects.rs

/root/repo/target/debug/deps/libfig7_rich_objects-023272e80a8b2a08.rmeta: crates/bench/src/bin/fig7_rich_objects.rs

crates/bench/src/bin/fig7_rich_objects.rs:
