/root/repo/target/debug/deps/ablation_consistency-9c04475af35892f8.d: crates/bench/src/bin/ablation_consistency.rs

/root/repo/target/debug/deps/libablation_consistency-9c04475af35892f8.rmeta: crates/bench/src/bin/ablation_consistency.rs

crates/bench/src/bin/ablation_consistency.rs:
