/root/repo/target/debug/deps/model_validation-4705d681f44c72cf.d: tests/model_validation.rs tests/../calibration/model_validation.json

/root/repo/target/debug/deps/model_validation-4705d681f44c72cf: tests/model_validation.rs tests/../calibration/model_validation.json

tests/model_validation.rs:
tests/../calibration/model_validation.json:
