/root/repo/target/debug/deps/raft_safety-ae1d973a0b52d49b.d: crates/storekit/tests/raft_safety.rs

/root/repo/target/debug/deps/libraft_safety-ae1d973a0b52d49b.rmeta: crates/storekit/tests/raft_safety.rs

crates/storekit/tests/raft_safety.rs:
