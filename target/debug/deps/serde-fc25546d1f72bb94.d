/root/repo/target/debug/deps/serde-fc25546d1f72bb94.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-fc25546d1f72bb94.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-fc25546d1f72bb94.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
