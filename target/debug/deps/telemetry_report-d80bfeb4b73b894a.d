/root/repo/target/debug/deps/telemetry_report-d80bfeb4b73b894a.d: crates/bench/src/bin/telemetry_report.rs

/root/repo/target/debug/deps/libtelemetry_report-d80bfeb4b73b894a.rmeta: crates/bench/src/bin/telemetry_report.rs

crates/bench/src/bin/telemetry_report.rs:
