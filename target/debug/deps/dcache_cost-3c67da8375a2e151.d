/root/repo/target/debug/deps/dcache_cost-3c67da8375a2e151.d: src/lib.rs

/root/repo/target/debug/deps/dcache_cost-3c67da8375a2e151: src/lib.rs

src/lib.rs:
