/root/repo/target/debug/deps/criterion-f7dc4c26f7afc502.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f7dc4c26f7afc502.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
