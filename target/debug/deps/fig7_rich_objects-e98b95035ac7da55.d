/root/repo/target/debug/deps/fig7_rich_objects-e98b95035ac7da55.d: crates/bench/src/bin/fig7_rich_objects.rs

/root/repo/target/debug/deps/fig7_rich_objects-e98b95035ac7da55: crates/bench/src/bin/fig7_rich_objects.rs

crates/bench/src/bin/fig7_rich_objects.rs:
