/root/repo/target/debug/deps/ablation_consistency-3a3aac8397b7f066.d: crates/bench/src/bin/ablation_consistency.rs

/root/repo/target/debug/deps/libablation_consistency-3a3aac8397b7f066.rmeta: crates/bench/src/bin/ablation_consistency.rs

crates/bench/src/bin/ablation_consistency.rs:
