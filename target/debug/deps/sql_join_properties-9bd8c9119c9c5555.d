/root/repo/target/debug/deps/sql_join_properties-9bd8c9119c9c5555.d: crates/storekit/tests/sql_join_properties.rs

/root/repo/target/debug/deps/libsql_join_properties-9bd8c9119c9c5555.rmeta: crates/storekit/tests/sql_join_properties.rs

crates/storekit/tests/sql_join_properties.rs:
