/root/repo/target/debug/deps/telemetry-691a49ea5a1402fb.d: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs

/root/repo/target/debug/deps/libtelemetry-691a49ea5a1402fb.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/profile.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
crates/telemetry/src/json.rs:
