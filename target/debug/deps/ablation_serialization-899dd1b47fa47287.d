/root/repo/target/debug/deps/ablation_serialization-899dd1b47fa47287.d: crates/bench/src/bin/ablation_serialization.rs

/root/repo/target/debug/deps/libablation_serialization-899dd1b47fa47287.rmeta: crates/bench/src/bin/ablation_serialization.rs

crates/bench/src/bin/ablation_serialization.rs:
