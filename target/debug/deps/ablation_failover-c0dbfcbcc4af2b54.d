/root/repo/target/debug/deps/ablation_failover-c0dbfcbcc4af2b54.d: crates/bench/src/bin/ablation_failover.rs

/root/repo/target/debug/deps/ablation_failover-c0dbfcbcc4af2b54: crates/bench/src/bin/ablation_failover.rs

crates/bench/src/bin/ablation_failover.rs:
