/root/repo/target/debug/deps/cache_server-58162f4149e9cc17.d: crates/netrpc/src/bin/cache_server.rs

/root/repo/target/debug/deps/cache_server-58162f4149e9cc17: crates/netrpc/src/bin/cache_server.rs

crates/netrpc/src/bin/cache_server.rs:
