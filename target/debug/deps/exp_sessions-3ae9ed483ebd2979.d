/root/repo/target/debug/deps/exp_sessions-3ae9ed483ebd2979.d: crates/bench/src/bin/exp_sessions.rs

/root/repo/target/debug/deps/libexp_sessions-3ae9ed483ebd2979.rmeta: crates/bench/src/bin/exp_sessions.rs

crates/bench/src/bin/exp_sessions.rs:
