/root/repo/target/debug/deps/cache_server-2297a0af8186513f.d: crates/netrpc/src/bin/cache_server.rs

/root/repo/target/debug/deps/libcache_server-2297a0af8186513f.rmeta: crates/netrpc/src/bin/cache_server.rs

crates/netrpc/src/bin/cache_server.rs:
