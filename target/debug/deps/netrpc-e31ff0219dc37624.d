/root/repo/target/debug/deps/netrpc-e31ff0219dc37624.d: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

/root/repo/target/debug/deps/libnetrpc-e31ff0219dc37624.rmeta: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

crates/netrpc/src/lib.rs:
crates/netrpc/src/client.rs:
crates/netrpc/src/codec.rs:
crates/netrpc/src/resilient.rs:
crates/netrpc/src/server.rs:
