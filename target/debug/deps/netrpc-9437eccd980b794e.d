/root/repo/target/debug/deps/netrpc-9437eccd980b794e.d: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

/root/repo/target/debug/deps/libnetrpc-9437eccd980b794e.rmeta: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

crates/netrpc/src/lib.rs:
crates/netrpc/src/client.rs:
crates/netrpc/src/codec.rs:
crates/netrpc/src/resilient.rs:
crates/netrpc/src/server.rs:
