/root/repo/target/debug/deps/repro_all-16eba67de775b2ad.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/librepro_all-16eba67de775b2ad.rmeta: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
