/root/repo/target/debug/deps/fig5_production-369b0ce3481d11db.d: crates/bench/src/bin/fig5_production.rs

/root/repo/target/debug/deps/fig5_production-369b0ce3481d11db: crates/bench/src/bin/fig5_production.rs

crates/bench/src/bin/fig5_production.rs:
