/root/repo/target/debug/deps/tokio-0fd3337d1f40b497.d: /tmp/stubs/tokio/src/lib.rs

/root/repo/target/debug/deps/libtokio-0fd3337d1f40b497.rlib: /tmp/stubs/tokio/src/lib.rs

/root/repo/target/debug/deps/libtokio-0fd3337d1f40b497.rmeta: /tmp/stubs/tokio/src/lib.rs

/tmp/stubs/tokio/src/lib.rs:
