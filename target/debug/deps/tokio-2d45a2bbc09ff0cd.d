/root/repo/target/debug/deps/tokio-2d45a2bbc09ff0cd.d: /tmp/stubs/tokio/src/lib.rs

/root/repo/target/debug/deps/libtokio-2d45a2bbc09ff0cd.rmeta: /tmp/stubs/tokio/src/lib.rs

/tmp/stubs/tokio/src/lib.rs:
