/root/repo/target/debug/deps/cache_server-3141d6292c83382f.d: crates/netrpc/src/bin/cache_server.rs

/root/repo/target/debug/deps/libcache_server-3141d6292c83382f.rmeta: crates/netrpc/src/bin/cache_server.rs

crates/netrpc/src/bin/cache_server.rs:
