/root/repo/target/debug/deps/ablation_faults-c20d21bba35e85b5.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/debug/deps/libablation_faults-c20d21bba35e85b5.rmeta: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
