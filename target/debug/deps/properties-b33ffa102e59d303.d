/root/repo/target/debug/deps/properties-b33ffa102e59d303.d: crates/storekit/tests/properties.rs

/root/repo/target/debug/deps/properties-b33ffa102e59d303: crates/storekit/tests/properties.rs

crates/storekit/tests/properties.rs:
