/root/repo/target/debug/deps/costmodel-5d24a9b710777240.d: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

/root/repo/target/debug/deps/libcostmodel-5d24a9b710777240.rmeta: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

crates/costmodel/src/lib.rs:
crates/costmodel/src/pricing.rs:
crates/costmodel/src/ssd.rs:
crates/costmodel/src/theory.rs:
