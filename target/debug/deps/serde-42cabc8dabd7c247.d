/root/repo/target/debug/deps/serde-42cabc8dabd7c247.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-42cabc8dabd7c247.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
