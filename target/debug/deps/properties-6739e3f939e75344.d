/root/repo/target/debug/deps/properties-6739e3f939e75344.d: crates/cachekit/tests/properties.rs

/root/repo/target/debug/deps/libproperties-6739e3f939e75344.rmeta: crates/cachekit/tests/properties.rs

crates/cachekit/tests/properties.rs:
