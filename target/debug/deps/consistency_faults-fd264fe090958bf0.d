/root/repo/target/debug/deps/consistency_faults-fd264fe090958bf0.d: tests/consistency_faults.rs

/root/repo/target/debug/deps/libconsistency_faults-fd264fe090958bf0.rmeta: tests/consistency_faults.rs

tests/consistency_faults.rs:
