/root/repo/target/debug/deps/bench-2db60f9ff8c573c7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-2db60f9ff8c573c7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
