/root/repo/target/debug/deps/fig7_rich_objects-765744d66f92a2ab.d: crates/bench/src/bin/fig7_rich_objects.rs

/root/repo/target/debug/deps/libfig7_rich_objects-765744d66f92a2ab.rmeta: crates/bench/src/bin/fig7_rich_objects.rs

crates/bench/src/bin/fig7_rich_objects.rs:
