/root/repo/target/debug/deps/fig4_synthetic-7d91bbecc7478e56.d: crates/bench/src/bin/fig4_synthetic.rs

/root/repo/target/debug/deps/fig4_synthetic-7d91bbecc7478e56: crates/bench/src/bin/fig4_synthetic.rs

crates/bench/src/bin/fig4_synthetic.rs:
