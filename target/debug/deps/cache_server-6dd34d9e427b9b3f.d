/root/repo/target/debug/deps/cache_server-6dd34d9e427b9b3f.d: crates/netrpc/src/bin/cache_server.rs

/root/repo/target/debug/deps/libcache_server-6dd34d9e427b9b3f.rmeta: crates/netrpc/src/bin/cache_server.rs

crates/netrpc/src/bin/cache_server.rs:
