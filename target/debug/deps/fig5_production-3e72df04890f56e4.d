/root/repo/target/debug/deps/fig5_production-3e72df04890f56e4.d: crates/bench/src/bin/fig5_production.rs

/root/repo/target/debug/deps/libfig5_production-3e72df04890f56e4.rmeta: crates/bench/src/bin/fig5_production.rs

crates/bench/src/bin/fig5_production.rs:
