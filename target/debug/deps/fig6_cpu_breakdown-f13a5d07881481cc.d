/root/repo/target/debug/deps/fig6_cpu_breakdown-f13a5d07881481cc.d: crates/bench/src/bin/fig6_cpu_breakdown.rs

/root/repo/target/debug/deps/libfig6_cpu_breakdown-f13a5d07881481cc.rmeta: crates/bench/src/bin/fig6_cpu_breakdown.rs

crates/bench/src/bin/fig6_cpu_breakdown.rs:
