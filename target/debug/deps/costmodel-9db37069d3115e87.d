/root/repo/target/debug/deps/costmodel-9db37069d3115e87.d: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

/root/repo/target/debug/deps/libcostmodel-9db37069d3115e87.rlib: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

/root/repo/target/debug/deps/libcostmodel-9db37069d3115e87.rmeta: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

crates/costmodel/src/lib.rs:
crates/costmodel/src/pricing.rs:
crates/costmodel/src/ssd.rs:
crates/costmodel/src/theory.rs:
