/root/repo/target/debug/deps/sql_join_properties-65f980ff5affde2b.d: crates/storekit/tests/sql_join_properties.rs

/root/repo/target/debug/deps/sql_join_properties-65f980ff5affde2b: crates/storekit/tests/sql_join_properties.rs

crates/storekit/tests/sql_join_properties.rs:
