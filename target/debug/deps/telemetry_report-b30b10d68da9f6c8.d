/root/repo/target/debug/deps/telemetry_report-b30b10d68da9f6c8.d: crates/bench/src/bin/telemetry_report.rs

/root/repo/target/debug/deps/telemetry_report-b30b10d68da9f6c8: crates/bench/src/bin/telemetry_report.rs

crates/bench/src/bin/telemetry_report.rs:
