/root/repo/target/debug/deps/resilience-6bfa331c71804f39.d: crates/netrpc/tests/resilience.rs

/root/repo/target/debug/deps/resilience-6bfa331c71804f39: crates/netrpc/tests/resilience.rs

crates/netrpc/tests/resilience.rs:
