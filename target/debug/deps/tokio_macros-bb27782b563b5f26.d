/root/repo/target/debug/deps/tokio_macros-bb27782b563b5f26.d: /tmp/stubs/tokio_macros/src/lib.rs

/root/repo/target/debug/deps/libtokio_macros-bb27782b563b5f26.so: /tmp/stubs/tokio_macros/src/lib.rs

/tmp/stubs/tokio_macros/src/lib.rs:
