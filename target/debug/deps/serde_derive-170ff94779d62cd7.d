/root/repo/target/debug/deps/serde_derive-170ff94779d62cd7.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-170ff94779d62cd7.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
