/root/repo/target/debug/deps/serde_json-c67c065181924600.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c67c065181924600.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c67c065181924600.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
