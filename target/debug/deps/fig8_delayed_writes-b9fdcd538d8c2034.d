/root/repo/target/debug/deps/fig8_delayed_writes-b9fdcd538d8c2034.d: crates/bench/src/bin/fig8_delayed_writes.rs

/root/repo/target/debug/deps/fig8_delayed_writes-b9fdcd538d8c2034: crates/bench/src/bin/fig8_delayed_writes.rs

crates/bench/src/bin/fig8_delayed_writes.rs:
