/root/repo/target/debug/deps/fig6_cpu_breakdown-78530210b7bf77d7.d: crates/bench/src/bin/fig6_cpu_breakdown.rs

/root/repo/target/debug/deps/libfig6_cpu_breakdown-78530210b7bf77d7.rmeta: crates/bench/src/bin/fig6_cpu_breakdown.rs

crates/bench/src/bin/fig6_cpu_breakdown.rs:
