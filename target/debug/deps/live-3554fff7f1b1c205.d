/root/repo/target/debug/deps/live-3554fff7f1b1c205.d: crates/netrpc/tests/live.rs

/root/repo/target/debug/deps/liblive-3554fff7f1b1c205.rmeta: crates/netrpc/tests/live.rs

crates/netrpc/tests/live.rs:
