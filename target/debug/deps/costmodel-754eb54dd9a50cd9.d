/root/repo/target/debug/deps/costmodel-754eb54dd9a50cd9.d: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

/root/repo/target/debug/deps/libcostmodel-754eb54dd9a50cd9.rmeta: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

crates/costmodel/src/lib.rs:
crates/costmodel/src/pricing.rs:
crates/costmodel/src/ssd.rs:
crates/costmodel/src/theory.rs:
