/root/repo/target/debug/deps/ablation_churn-67f97ca82773998f.d: crates/bench/src/bin/ablation_churn.rs

/root/repo/target/debug/deps/libablation_churn-67f97ca82773998f.rmeta: crates/bench/src/bin/ablation_churn.rs

crates/bench/src/bin/ablation_churn.rs:
