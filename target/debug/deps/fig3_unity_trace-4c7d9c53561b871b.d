/root/repo/target/debug/deps/fig3_unity_trace-4c7d9c53561b871b.d: crates/bench/src/bin/fig3_unity_trace.rs

/root/repo/target/debug/deps/libfig3_unity_trace-4c7d9c53561b871b.rmeta: crates/bench/src/bin/fig3_unity_trace.rs

crates/bench/src/bin/fig3_unity_trace.rs:
