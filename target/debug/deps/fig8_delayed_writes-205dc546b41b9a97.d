/root/repo/target/debug/deps/fig8_delayed_writes-205dc546b41b9a97.d: crates/bench/src/bin/fig8_delayed_writes.rs

/root/repo/target/debug/deps/libfig8_delayed_writes-205dc546b41b9a97.rmeta: crates/bench/src/bin/fig8_delayed_writes.rs

crates/bench/src/bin/fig8_delayed_writes.rs:
