/root/repo/target/debug/deps/ablation_ttl-2efb6188cc15866e.d: crates/bench/src/bin/ablation_ttl.rs

/root/repo/target/debug/deps/libablation_ttl-2efb6188cc15866e.rmeta: crates/bench/src/bin/ablation_ttl.rs

crates/bench/src/bin/ablation_ttl.rs:
