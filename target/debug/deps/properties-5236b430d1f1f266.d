/root/repo/target/debug/deps/properties-5236b430d1f1f266.d: crates/storekit/tests/properties.rs

/root/repo/target/debug/deps/libproperties-5236b430d1f1f266.rmeta: crates/storekit/tests/properties.rs

crates/storekit/tests/properties.rs:
