/root/repo/target/debug/deps/cache_server-da5ee065ba7e2912.d: crates/netrpc/src/bin/cache_server.rs

/root/repo/target/debug/deps/libcache_server-da5ee065ba7e2912.rmeta: crates/netrpc/src/bin/cache_server.rs

crates/netrpc/src/bin/cache_server.rs:
