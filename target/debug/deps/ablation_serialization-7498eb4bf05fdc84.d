/root/repo/target/debug/deps/ablation_serialization-7498eb4bf05fdc84.d: crates/bench/src/bin/ablation_serialization.rs

/root/repo/target/debug/deps/libablation_serialization-7498eb4bf05fdc84.rmeta: crates/bench/src/bin/ablation_serialization.rs

crates/bench/src/bin/ablation_serialization.rs:
