/root/repo/target/debug/deps/fig4_synthetic-5d7d8874cba5db2b.d: crates/bench/src/bin/fig4_synthetic.rs

/root/repo/target/debug/deps/libfig4_synthetic-5d7d8874cba5db2b.rmeta: crates/bench/src/bin/fig4_synthetic.rs

crates/bench/src/bin/fig4_synthetic.rs:
