/root/repo/target/debug/deps/ablation_churn-442122bf55d99461.d: crates/bench/src/bin/ablation_churn.rs

/root/repo/target/debug/deps/libablation_churn-442122bf55d99461.rmeta: crates/bench/src/bin/ablation_churn.rs

crates/bench/src/bin/ablation_churn.rs:
