/root/repo/target/debug/deps/live-e169129cd0150609.d: crates/netrpc/tests/live.rs

/root/repo/target/debug/deps/live-e169129cd0150609: crates/netrpc/tests/live.rs

crates/netrpc/tests/live.rs:
