/root/repo/target/debug/deps/ablation_churn-4d3740ad867311b6.d: crates/bench/src/bin/ablation_churn.rs

/root/repo/target/debug/deps/libablation_churn-4d3740ad867311b6.rmeta: crates/bench/src/bin/ablation_churn.rs

crates/bench/src/bin/ablation_churn.rs:
