/root/repo/target/debug/deps/arch_properties-706a67691c0a5364.d: crates/dcache/tests/arch_properties.rs

/root/repo/target/debug/deps/libarch_properties-706a67691c0a5364.rmeta: crates/dcache/tests/arch_properties.rs

crates/dcache/tests/arch_properties.rs:
