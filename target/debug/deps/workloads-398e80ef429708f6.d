/root/repo/target/debug/deps/workloads-398e80ef429708f6.d: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/meta.rs crates/workloads/src/sessions.rs crates/workloads/src/sizes.rs crates/workloads/src/trace.rs crates/workloads/src/twitter.rs crates/workloads/src/unity.rs crates/workloads/src/zipf.rs

/root/repo/target/debug/deps/libworkloads-398e80ef429708f6.rlib: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/meta.rs crates/workloads/src/sessions.rs crates/workloads/src/sizes.rs crates/workloads/src/trace.rs crates/workloads/src/twitter.rs crates/workloads/src/unity.rs crates/workloads/src/zipf.rs

/root/repo/target/debug/deps/libworkloads-398e80ef429708f6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/meta.rs crates/workloads/src/sessions.rs crates/workloads/src/sizes.rs crates/workloads/src/trace.rs crates/workloads/src/twitter.rs crates/workloads/src/unity.rs crates/workloads/src/zipf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kv.rs:
crates/workloads/src/meta.rs:
crates/workloads/src/sessions.rs:
crates/workloads/src/sizes.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/twitter.rs:
crates/workloads/src/unity.rs:
crates/workloads/src/zipf.rs:
