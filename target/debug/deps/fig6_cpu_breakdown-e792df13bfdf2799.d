/root/repo/target/debug/deps/fig6_cpu_breakdown-e792df13bfdf2799.d: crates/bench/src/bin/fig6_cpu_breakdown.rs

/root/repo/target/debug/deps/libfig6_cpu_breakdown-e792df13bfdf2799.rmeta: crates/bench/src/bin/fig6_cpu_breakdown.rs

crates/bench/src/bin/fig6_cpu_breakdown.rs:
