/root/repo/target/debug/deps/fig2_theory-44d961d0766886b8.d: crates/bench/src/bin/fig2_theory.rs

/root/repo/target/debug/deps/fig2_theory-44d961d0766886b8: crates/bench/src/bin/fig2_theory.rs

crates/bench/src/bin/fig2_theory.rs:
