/root/repo/target/debug/deps/arch_properties-2521bfe0c271e35f.d: crates/dcache/tests/arch_properties.rs

/root/repo/target/debug/deps/arch_properties-2521bfe0c271e35f: crates/dcache/tests/arch_properties.rs

crates/dcache/tests/arch_properties.rs:
