/root/repo/target/debug/deps/telemetry-94b92bf404f987f8.d: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-94b92bf404f987f8.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/profile.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
crates/telemetry/src/json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
