/root/repo/target/debug/deps/dcache_cost-783e89920b678179.d: src/lib.rs

/root/repo/target/debug/deps/libdcache_cost-783e89920b678179.rmeta: src/lib.rs

src/lib.rs:
