/root/repo/target/debug/deps/fig6_cpu_breakdown-155c4d790fdaec1c.d: crates/bench/src/bin/fig6_cpu_breakdown.rs

/root/repo/target/debug/deps/libfig6_cpu_breakdown-155c4d790fdaec1c.rmeta: crates/bench/src/bin/fig6_cpu_breakdown.rs

crates/bench/src/bin/fig6_cpu_breakdown.rs:
