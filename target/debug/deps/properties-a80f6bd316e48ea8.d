/root/repo/target/debug/deps/properties-a80f6bd316e48ea8.d: crates/storekit/tests/properties.rs

/root/repo/target/debug/deps/libproperties-a80f6bd316e48ea8.rmeta: crates/storekit/tests/properties.rs

crates/storekit/tests/properties.rs:
