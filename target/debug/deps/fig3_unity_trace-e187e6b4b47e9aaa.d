/root/repo/target/debug/deps/fig3_unity_trace-e187e6b4b47e9aaa.d: crates/bench/src/bin/fig3_unity_trace.rs

/root/repo/target/debug/deps/libfig3_unity_trace-e187e6b4b47e9aaa.rmeta: crates/bench/src/bin/fig3_unity_trace.rs

crates/bench/src/bin/fig3_unity_trace.rs:
