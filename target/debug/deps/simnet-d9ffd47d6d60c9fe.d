/root/repo/target/debug/deps/simnet-d9ffd47d6d60c9fe.d: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/engine.rs crates/simnet/src/fault.rs crates/simnet/src/metrics.rs crates/simnet/src/net.rs crates/simnet/src/node.rs crates/simnet/src/queueing.rs crates/simnet/src/time.rs

/root/repo/target/debug/deps/libsimnet-d9ffd47d6d60c9fe.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/engine.rs crates/simnet/src/fault.rs crates/simnet/src/metrics.rs crates/simnet/src/net.rs crates/simnet/src/node.rs crates/simnet/src/queueing.rs crates/simnet/src/time.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cpu.rs:
crates/simnet/src/engine.rs:
crates/simnet/src/fault.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/net.rs:
crates/simnet/src/node.rs:
crates/simnet/src/queueing.rs:
crates/simnet/src/time.rs:
