/root/repo/target/debug/deps/cachekit-e0258f2efa7a6647.d: crates/cachekit/src/lib.rs crates/cachekit/src/admission.rs crates/cachekit/src/cache.rs crates/cachekit/src/list.rs crates/cachekit/src/mrc.rs crates/cachekit/src/policy.rs crates/cachekit/src/ring.rs crates/cachekit/src/sharded.rs crates/cachekit/src/stats.rs

/root/repo/target/debug/deps/libcachekit-e0258f2efa7a6647.rmeta: crates/cachekit/src/lib.rs crates/cachekit/src/admission.rs crates/cachekit/src/cache.rs crates/cachekit/src/list.rs crates/cachekit/src/mrc.rs crates/cachekit/src/policy.rs crates/cachekit/src/ring.rs crates/cachekit/src/sharded.rs crates/cachekit/src/stats.rs

crates/cachekit/src/lib.rs:
crates/cachekit/src/admission.rs:
crates/cachekit/src/cache.rs:
crates/cachekit/src/list.rs:
crates/cachekit/src/mrc.rs:
crates/cachekit/src/policy.rs:
crates/cachekit/src/ring.rs:
crates/cachekit/src/sharded.rs:
crates/cachekit/src/stats.rs:
