/root/repo/target/debug/deps/resilience-35557e5211120bad.d: crates/netrpc/tests/resilience.rs

/root/repo/target/debug/deps/libresilience-35557e5211120bad.rmeta: crates/netrpc/tests/resilience.rs

crates/netrpc/tests/resilience.rs:
