/root/repo/target/debug/deps/ablation_failover-9b675a5bf19c96c5.d: crates/bench/src/bin/ablation_failover.rs

/root/repo/target/debug/deps/libablation_failover-9b675a5bf19c96c5.rmeta: crates/bench/src/bin/ablation_failover.rs

crates/bench/src/bin/ablation_failover.rs:
