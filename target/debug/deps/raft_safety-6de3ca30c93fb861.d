/root/repo/target/debug/deps/raft_safety-6de3ca30c93fb861.d: crates/storekit/tests/raft_safety.rs

/root/repo/target/debug/deps/libraft_safety-6de3ca30c93fb861.rmeta: crates/storekit/tests/raft_safety.rs

crates/storekit/tests/raft_safety.rs:
