/root/repo/target/debug/deps/model_validation-fca9fff1dc5db418.d: tests/model_validation.rs

/root/repo/target/debug/deps/libmodel_validation-fca9fff1dc5db418.rmeta: tests/model_validation.rs

tests/model_validation.rs:
