/root/repo/target/debug/deps/dcache_cost-e79c8b2a60d4b686.d: src/lib.rs

/root/repo/target/debug/deps/libdcache_cost-e79c8b2a60d4b686.rmeta: src/lib.rs

src/lib.rs:
