/root/repo/target/debug/deps/end_to_end-07ca6b77836f6451.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-07ca6b77836f6451.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
