/root/repo/target/debug/deps/exp_sessions-cb70179bc359efb4.d: crates/bench/src/bin/exp_sessions.rs

/root/repo/target/debug/deps/exp_sessions-cb70179bc359efb4: crates/bench/src/bin/exp_sessions.rs

crates/bench/src/bin/exp_sessions.rs:
