/root/repo/target/debug/deps/parking_lot-d447630d9047ec38.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d447630d9047ec38.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d447630d9047ec38.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
