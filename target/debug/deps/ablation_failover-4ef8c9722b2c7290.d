/root/repo/target/debug/deps/ablation_failover-4ef8c9722b2c7290.d: crates/bench/src/bin/ablation_failover.rs

/root/repo/target/debug/deps/libablation_failover-4ef8c9722b2c7290.rmeta: crates/bench/src/bin/ablation_failover.rs

crates/bench/src/bin/ablation_failover.rs:
