/root/repo/target/debug/deps/dcache-4d3c512daed1f2d7.d: crates/dcache/src/lib.rs crates/dcache/src/config.rs crates/dcache/src/consistency.rs crates/dcache/src/deployment.rs crates/dcache/src/experiment.rs crates/dcache/src/lease.rs crates/dcache/src/sessionapp.rs crates/dcache/src/unityapp.rs

/root/repo/target/debug/deps/libdcache-4d3c512daed1f2d7.rmeta: crates/dcache/src/lib.rs crates/dcache/src/config.rs crates/dcache/src/consistency.rs crates/dcache/src/deployment.rs crates/dcache/src/experiment.rs crates/dcache/src/lease.rs crates/dcache/src/sessionapp.rs crates/dcache/src/unityapp.rs

crates/dcache/src/lib.rs:
crates/dcache/src/config.rs:
crates/dcache/src/consistency.rs:
crates/dcache/src/deployment.rs:
crates/dcache/src/experiment.rs:
crates/dcache/src/lease.rs:
crates/dcache/src/sessionapp.rs:
crates/dcache/src/unityapp.rs:
