/root/repo/target/debug/deps/ablation_serialization-7157990d58a87867.d: crates/bench/src/bin/ablation_serialization.rs

/root/repo/target/debug/deps/ablation_serialization-7157990d58a87867: crates/bench/src/bin/ablation_serialization.rs

crates/bench/src/bin/ablation_serialization.rs:
