/root/repo/target/debug/deps/properties-a9f829314173ae37.d: crates/cachekit/tests/properties.rs

/root/repo/target/debug/deps/properties-a9f829314173ae37: crates/cachekit/tests/properties.rs

crates/cachekit/tests/properties.rs:
