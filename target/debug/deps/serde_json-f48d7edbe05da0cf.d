/root/repo/target/debug/deps/serde_json-f48d7edbe05da0cf.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f48d7edbe05da0cf.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
