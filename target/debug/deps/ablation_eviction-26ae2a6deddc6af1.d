/root/repo/target/debug/deps/ablation_eviction-26ae2a6deddc6af1.d: crates/bench/src/bin/ablation_eviction.rs

/root/repo/target/debug/deps/libablation_eviction-26ae2a6deddc6af1.rmeta: crates/bench/src/bin/ablation_eviction.rs

crates/bench/src/bin/ablation_eviction.rs:
