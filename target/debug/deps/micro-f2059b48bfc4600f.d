/root/repo/target/debug/deps/micro-f2059b48bfc4600f.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-f2059b48bfc4600f.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
