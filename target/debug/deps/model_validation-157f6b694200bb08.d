/root/repo/target/debug/deps/model_validation-157f6b694200bb08.d: tests/model_validation.rs tests/../calibration/model_validation.json

/root/repo/target/debug/deps/libmodel_validation-157f6b694200bb08.rmeta: tests/model_validation.rs tests/../calibration/model_validation.json

tests/model_validation.rs:
tests/../calibration/model_validation.json:
