/root/repo/target/debug/deps/ablation_eviction-553644fcb1eaa118.d: crates/bench/src/bin/ablation_eviction.rs

/root/repo/target/debug/deps/libablation_eviction-553644fcb1eaa118.rmeta: crates/bench/src/bin/ablation_eviction.rs

crates/bench/src/bin/ablation_eviction.rs:
