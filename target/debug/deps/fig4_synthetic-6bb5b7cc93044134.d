/root/repo/target/debug/deps/fig4_synthetic-6bb5b7cc93044134.d: crates/bench/src/bin/fig4_synthetic.rs

/root/repo/target/debug/deps/libfig4_synthetic-6bb5b7cc93044134.rmeta: crates/bench/src/bin/fig4_synthetic.rs

crates/bench/src/bin/fig4_synthetic.rs:
