/root/repo/target/debug/deps/sql_join_properties-6b1957c06cf5fc0e.d: crates/storekit/tests/sql_join_properties.rs

/root/repo/target/debug/deps/libsql_join_properties-6b1957c06cf5fc0e.rmeta: crates/storekit/tests/sql_join_properties.rs

crates/storekit/tests/sql_join_properties.rs:
