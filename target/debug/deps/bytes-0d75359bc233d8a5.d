/root/repo/target/debug/deps/bytes-0d75359bc233d8a5.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-0d75359bc233d8a5.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-0d75359bc233d8a5.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
