/root/repo/target/debug/deps/fig7_rich_objects-27e3f2688f387f49.d: crates/bench/src/bin/fig7_rich_objects.rs

/root/repo/target/debug/deps/libfig7_rich_objects-27e3f2688f387f49.rmeta: crates/bench/src/bin/fig7_rich_objects.rs

crates/bench/src/bin/fig7_rich_objects.rs:
