/root/repo/target/debug/deps/criterion-57e91ed23b478075.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-57e91ed23b478075.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-57e91ed23b478075.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
