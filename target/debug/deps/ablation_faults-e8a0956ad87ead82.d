/root/repo/target/debug/deps/ablation_faults-e8a0956ad87ead82.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/debug/deps/libablation_faults-e8a0956ad87ead82.rmeta: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
