/root/repo/target/debug/deps/ablation_serialization-120f0a7f7e5de0f5.d: crates/bench/src/bin/ablation_serialization.rs

/root/repo/target/debug/deps/libablation_serialization-120f0a7f7e5de0f5.rmeta: crates/bench/src/bin/ablation_serialization.rs

crates/bench/src/bin/ablation_serialization.rs:
