/root/repo/target/debug/deps/fig7_rich_objects-bf20f188b6d6885d.d: crates/bench/src/bin/fig7_rich_objects.rs

/root/repo/target/debug/deps/libfig7_rich_objects-bf20f188b6d6885d.rmeta: crates/bench/src/bin/fig7_rich_objects.rs

crates/bench/src/bin/fig7_rich_objects.rs:
