/root/repo/target/debug/deps/dcache-0e24095962f19433.d: crates/dcache/src/lib.rs crates/dcache/src/config.rs crates/dcache/src/consistency.rs crates/dcache/src/deployment.rs crates/dcache/src/experiment.rs crates/dcache/src/lease.rs crates/dcache/src/sessionapp.rs crates/dcache/src/unityapp.rs

/root/repo/target/debug/deps/libdcache-0e24095962f19433.rmeta: crates/dcache/src/lib.rs crates/dcache/src/config.rs crates/dcache/src/consistency.rs crates/dcache/src/deployment.rs crates/dcache/src/experiment.rs crates/dcache/src/lease.rs crates/dcache/src/sessionapp.rs crates/dcache/src/unityapp.rs

crates/dcache/src/lib.rs:
crates/dcache/src/config.rs:
crates/dcache/src/consistency.rs:
crates/dcache/src/deployment.rs:
crates/dcache/src/experiment.rs:
crates/dcache/src/lease.rs:
crates/dcache/src/sessionapp.rs:
crates/dcache/src/unityapp.rs:
