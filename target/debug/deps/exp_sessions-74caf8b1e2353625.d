/root/repo/target/debug/deps/exp_sessions-74caf8b1e2353625.d: crates/bench/src/bin/exp_sessions.rs

/root/repo/target/debug/deps/libexp_sessions-74caf8b1e2353625.rmeta: crates/bench/src/bin/exp_sessions.rs

crates/bench/src/bin/exp_sessions.rs:
