/root/repo/target/debug/deps/bench-01bafb3560d69143.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-01bafb3560d69143.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
