/root/repo/target/debug/deps/fig4_synthetic-a80c87da9f7aa78e.d: crates/bench/src/bin/fig4_synthetic.rs

/root/repo/target/debug/deps/libfig4_synthetic-a80c87da9f7aa78e.rmeta: crates/bench/src/bin/fig4_synthetic.rs

crates/bench/src/bin/fig4_synthetic.rs:
