/root/repo/target/debug/deps/ablation_serialization-79b4683050fbd0e2.d: crates/bench/src/bin/ablation_serialization.rs

/root/repo/target/debug/deps/libablation_serialization-79b4683050fbd0e2.rmeta: crates/bench/src/bin/ablation_serialization.rs

crates/bench/src/bin/ablation_serialization.rs:
