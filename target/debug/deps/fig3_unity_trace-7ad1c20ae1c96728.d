/root/repo/target/debug/deps/fig3_unity_trace-7ad1c20ae1c96728.d: crates/bench/src/bin/fig3_unity_trace.rs

/root/repo/target/debug/deps/libfig3_unity_trace-7ad1c20ae1c96728.rmeta: crates/bench/src/bin/fig3_unity_trace.rs

crates/bench/src/bin/fig3_unity_trace.rs:
