/root/repo/target/debug/deps/ablation_faults-6f42da5521957e18.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/debug/deps/ablation_faults-6f42da5521957e18: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
