/root/repo/target/debug/deps/fig5_production-2091236c36ebfd41.d: crates/bench/src/bin/fig5_production.rs

/root/repo/target/debug/deps/libfig5_production-2091236c36ebfd41.rmeta: crates/bench/src/bin/fig5_production.rs

crates/bench/src/bin/fig5_production.rs:
