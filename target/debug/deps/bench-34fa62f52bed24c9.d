/root/repo/target/debug/deps/bench-34fa62f52bed24c9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-34fa62f52bed24c9.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-34fa62f52bed24c9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
