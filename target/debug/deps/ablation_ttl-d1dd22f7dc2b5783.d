/root/repo/target/debug/deps/ablation_ttl-d1dd22f7dc2b5783.d: crates/bench/src/bin/ablation_ttl.rs

/root/repo/target/debug/deps/ablation_ttl-d1dd22f7dc2b5783: crates/bench/src/bin/ablation_ttl.rs

crates/bench/src/bin/ablation_ttl.rs:
