/root/repo/target/debug/deps/fig2_theory-4822b9264f1042ec.d: crates/bench/src/bin/fig2_theory.rs

/root/repo/target/debug/deps/libfig2_theory-4822b9264f1042ec.rmeta: crates/bench/src/bin/fig2_theory.rs

crates/bench/src/bin/fig2_theory.rs:
