/root/repo/target/debug/deps/consistency_faults-ab6b6b3d447a6456.d: tests/consistency_faults.rs

/root/repo/target/debug/deps/libconsistency_faults-ab6b6b3d447a6456.rmeta: tests/consistency_faults.rs

tests/consistency_faults.rs:
