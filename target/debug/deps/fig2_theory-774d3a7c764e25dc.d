/root/repo/target/debug/deps/fig2_theory-774d3a7c764e25dc.d: crates/bench/src/bin/fig2_theory.rs

/root/repo/target/debug/deps/libfig2_theory-774d3a7c764e25dc.rmeta: crates/bench/src/bin/fig2_theory.rs

crates/bench/src/bin/fig2_theory.rs:
