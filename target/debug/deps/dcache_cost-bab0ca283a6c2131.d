/root/repo/target/debug/deps/dcache_cost-bab0ca283a6c2131.d: src/lib.rs

/root/repo/target/debug/deps/libdcache_cost-bab0ca283a6c2131.rlib: src/lib.rs

/root/repo/target/debug/deps/libdcache_cost-bab0ca283a6c2131.rmeta: src/lib.rs

src/lib.rs:
