/root/repo/target/debug/deps/netrpc-29140b479c8e500e.d: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/obs.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

/root/repo/target/debug/deps/netrpc-29140b479c8e500e: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/obs.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

crates/netrpc/src/lib.rs:
crates/netrpc/src/client.rs:
crates/netrpc/src/codec.rs:
crates/netrpc/src/obs.rs:
crates/netrpc/src/resilient.rs:
crates/netrpc/src/server.rs:
