/root/repo/target/debug/deps/bench-17ab4e5feb5d8ccb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-17ab4e5feb5d8ccb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
