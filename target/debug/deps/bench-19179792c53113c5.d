/root/repo/target/debug/deps/bench-19179792c53113c5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-19179792c53113c5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
