/root/repo/target/debug/deps/micro-429fcdd74507005f.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-429fcdd74507005f.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
