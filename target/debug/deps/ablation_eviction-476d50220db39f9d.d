/root/repo/target/debug/deps/ablation_eviction-476d50220db39f9d.d: crates/bench/src/bin/ablation_eviction.rs

/root/repo/target/debug/deps/libablation_eviction-476d50220db39f9d.rmeta: crates/bench/src/bin/ablation_eviction.rs

crates/bench/src/bin/ablation_eviction.rs:
