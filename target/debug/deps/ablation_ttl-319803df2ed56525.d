/root/repo/target/debug/deps/ablation_ttl-319803df2ed56525.d: crates/bench/src/bin/ablation_ttl.rs

/root/repo/target/debug/deps/libablation_ttl-319803df2ed56525.rmeta: crates/bench/src/bin/ablation_ttl.rs

crates/bench/src/bin/ablation_ttl.rs:
