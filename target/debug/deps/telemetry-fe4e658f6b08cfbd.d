/root/repo/target/debug/deps/telemetry-fe4e658f6b08cfbd.d: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs

/root/repo/target/debug/deps/telemetry-fe4e658f6b08cfbd: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/profile.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
crates/telemetry/src/json.rs:
