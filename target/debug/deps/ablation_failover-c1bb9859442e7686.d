/root/repo/target/debug/deps/ablation_failover-c1bb9859442e7686.d: crates/bench/src/bin/ablation_failover.rs

/root/repo/target/debug/deps/libablation_failover-c1bb9859442e7686.rmeta: crates/bench/src/bin/ablation_failover.rs

crates/bench/src/bin/ablation_failover.rs:
