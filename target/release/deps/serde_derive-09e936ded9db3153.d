/root/repo/target/release/deps/serde_derive-09e936ded9db3153.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-09e936ded9db3153.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
