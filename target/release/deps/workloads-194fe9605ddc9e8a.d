/root/repo/target/release/deps/workloads-194fe9605ddc9e8a.d: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/meta.rs crates/workloads/src/sessions.rs crates/workloads/src/sizes.rs crates/workloads/src/trace.rs crates/workloads/src/twitter.rs crates/workloads/src/unity.rs crates/workloads/src/zipf.rs

/root/repo/target/release/deps/libworkloads-194fe9605ddc9e8a.rlib: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/meta.rs crates/workloads/src/sessions.rs crates/workloads/src/sizes.rs crates/workloads/src/trace.rs crates/workloads/src/twitter.rs crates/workloads/src/unity.rs crates/workloads/src/zipf.rs

/root/repo/target/release/deps/libworkloads-194fe9605ddc9e8a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/meta.rs crates/workloads/src/sessions.rs crates/workloads/src/sizes.rs crates/workloads/src/trace.rs crates/workloads/src/twitter.rs crates/workloads/src/unity.rs crates/workloads/src/zipf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kv.rs:
crates/workloads/src/meta.rs:
crates/workloads/src/sessions.rs:
crates/workloads/src/sizes.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/twitter.rs:
crates/workloads/src/unity.rs:
crates/workloads/src/zipf.rs:
