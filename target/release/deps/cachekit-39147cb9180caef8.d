/root/repo/target/release/deps/cachekit-39147cb9180caef8.d: crates/cachekit/src/lib.rs crates/cachekit/src/admission.rs crates/cachekit/src/cache.rs crates/cachekit/src/list.rs crates/cachekit/src/mrc.rs crates/cachekit/src/policy.rs crates/cachekit/src/ring.rs crates/cachekit/src/sharded.rs crates/cachekit/src/stats.rs

/root/repo/target/release/deps/libcachekit-39147cb9180caef8.rlib: crates/cachekit/src/lib.rs crates/cachekit/src/admission.rs crates/cachekit/src/cache.rs crates/cachekit/src/list.rs crates/cachekit/src/mrc.rs crates/cachekit/src/policy.rs crates/cachekit/src/ring.rs crates/cachekit/src/sharded.rs crates/cachekit/src/stats.rs

/root/repo/target/release/deps/libcachekit-39147cb9180caef8.rmeta: crates/cachekit/src/lib.rs crates/cachekit/src/admission.rs crates/cachekit/src/cache.rs crates/cachekit/src/list.rs crates/cachekit/src/mrc.rs crates/cachekit/src/policy.rs crates/cachekit/src/ring.rs crates/cachekit/src/sharded.rs crates/cachekit/src/stats.rs

crates/cachekit/src/lib.rs:
crates/cachekit/src/admission.rs:
crates/cachekit/src/cache.rs:
crates/cachekit/src/list.rs:
crates/cachekit/src/mrc.rs:
crates/cachekit/src/policy.rs:
crates/cachekit/src/ring.rs:
crates/cachekit/src/sharded.rs:
crates/cachekit/src/stats.rs:
