/root/repo/target/release/deps/rand-c1e87efb583d0d82.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-c1e87efb583d0d82.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-c1e87efb583d0d82.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
