/root/repo/target/release/deps/telemetry_report-08c920fd031d8c78.d: crates/bench/src/bin/telemetry_report.rs

/root/repo/target/release/deps/telemetry_report-08c920fd031d8c78: crates/bench/src/bin/telemetry_report.rs

crates/bench/src/bin/telemetry_report.rs:
