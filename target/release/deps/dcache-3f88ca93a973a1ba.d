/root/repo/target/release/deps/dcache-3f88ca93a973a1ba.d: crates/dcache/src/lib.rs crates/dcache/src/config.rs crates/dcache/src/consistency.rs crates/dcache/src/deployment.rs crates/dcache/src/experiment.rs crates/dcache/src/lease.rs crates/dcache/src/sessionapp.rs crates/dcache/src/unityapp.rs

/root/repo/target/release/deps/libdcache-3f88ca93a973a1ba.rlib: crates/dcache/src/lib.rs crates/dcache/src/config.rs crates/dcache/src/consistency.rs crates/dcache/src/deployment.rs crates/dcache/src/experiment.rs crates/dcache/src/lease.rs crates/dcache/src/sessionapp.rs crates/dcache/src/unityapp.rs

/root/repo/target/release/deps/libdcache-3f88ca93a973a1ba.rmeta: crates/dcache/src/lib.rs crates/dcache/src/config.rs crates/dcache/src/consistency.rs crates/dcache/src/deployment.rs crates/dcache/src/experiment.rs crates/dcache/src/lease.rs crates/dcache/src/sessionapp.rs crates/dcache/src/unityapp.rs

crates/dcache/src/lib.rs:
crates/dcache/src/config.rs:
crates/dcache/src/consistency.rs:
crates/dcache/src/deployment.rs:
crates/dcache/src/experiment.rs:
crates/dcache/src/lease.rs:
crates/dcache/src/sessionapp.rs:
crates/dcache/src/unityapp.rs:
