/root/repo/target/release/deps/telemetry-8f56d191587f054e.d: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs

/root/repo/target/release/deps/libtelemetry-8f56d191587f054e.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs

/root/repo/target/release/deps/libtelemetry-8f56d191587f054e.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs crates/telemetry/src/json.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/profile.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
crates/telemetry/src/json.rs:
