/root/repo/target/release/deps/tokio_macros-252cdf1a49999aeb.d: /tmp/stubs/tokio_macros/src/lib.rs

/root/repo/target/release/deps/libtokio_macros-252cdf1a49999aeb.so: /tmp/stubs/tokio_macros/src/lib.rs

/tmp/stubs/tokio_macros/src/lib.rs:
