/root/repo/target/release/deps/simnet-f9bf86f4234f0e5d.d: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/engine.rs crates/simnet/src/fault.rs crates/simnet/src/metrics.rs crates/simnet/src/net.rs crates/simnet/src/node.rs crates/simnet/src/queueing.rs crates/simnet/src/time.rs

/root/repo/target/release/deps/libsimnet-f9bf86f4234f0e5d.rlib: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/engine.rs crates/simnet/src/fault.rs crates/simnet/src/metrics.rs crates/simnet/src/net.rs crates/simnet/src/node.rs crates/simnet/src/queueing.rs crates/simnet/src/time.rs

/root/repo/target/release/deps/libsimnet-f9bf86f4234f0e5d.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/engine.rs crates/simnet/src/fault.rs crates/simnet/src/metrics.rs crates/simnet/src/net.rs crates/simnet/src/node.rs crates/simnet/src/queueing.rs crates/simnet/src/time.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cpu.rs:
crates/simnet/src/engine.rs:
crates/simnet/src/fault.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/net.rs:
crates/simnet/src/node.rs:
crates/simnet/src/queueing.rs:
crates/simnet/src/time.rs:
