/root/repo/target/release/deps/tokio-a1105721190f968b.d: /tmp/stubs/tokio/src/lib.rs

/root/repo/target/release/deps/libtokio-a1105721190f968b.rlib: /tmp/stubs/tokio/src/lib.rs

/root/repo/target/release/deps/libtokio-a1105721190f968b.rmeta: /tmp/stubs/tokio/src/lib.rs

/tmp/stubs/tokio/src/lib.rs:
