/root/repo/target/release/deps/bytes-2366ea7e96aa210b.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-2366ea7e96aa210b.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-2366ea7e96aa210b.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
