/root/repo/target/release/deps/netrpc-0e74e696a5293896.d: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/obs.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

/root/repo/target/release/deps/libnetrpc-0e74e696a5293896.rlib: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/obs.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

/root/repo/target/release/deps/libnetrpc-0e74e696a5293896.rmeta: crates/netrpc/src/lib.rs crates/netrpc/src/client.rs crates/netrpc/src/codec.rs crates/netrpc/src/obs.rs crates/netrpc/src/resilient.rs crates/netrpc/src/server.rs

crates/netrpc/src/lib.rs:
crates/netrpc/src/client.rs:
crates/netrpc/src/codec.rs:
crates/netrpc/src/obs.rs:
crates/netrpc/src/resilient.rs:
crates/netrpc/src/server.rs:
