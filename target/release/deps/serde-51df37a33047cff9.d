/root/repo/target/release/deps/serde-51df37a33047cff9.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-51df37a33047cff9.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-51df37a33047cff9.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
