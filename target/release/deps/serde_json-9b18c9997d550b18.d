/root/repo/target/release/deps/serde_json-9b18c9997d550b18.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-9b18c9997d550b18.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-9b18c9997d550b18.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
