/root/repo/target/release/deps/bench-a292533c566a59b3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-a292533c566a59b3.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-a292533c566a59b3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
