/root/repo/target/release/deps/parking_lot-fdd17b137afe7943.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-fdd17b137afe7943.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-fdd17b137afe7943.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
