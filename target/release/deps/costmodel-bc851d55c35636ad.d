/root/repo/target/release/deps/costmodel-bc851d55c35636ad.d: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

/root/repo/target/release/deps/libcostmodel-bc851d55c35636ad.rlib: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

/root/repo/target/release/deps/libcostmodel-bc851d55c35636ad.rmeta: crates/costmodel/src/lib.rs crates/costmodel/src/pricing.rs crates/costmodel/src/ssd.rs crates/costmodel/src/theory.rs

crates/costmodel/src/lib.rs:
crates/costmodel/src/pricing.rs:
crates/costmodel/src/ssd.rs:
crates/costmodel/src/theory.rs:
