//! Consistent caching: the cost of a version check, the delayed-write
//! hazard, and the lease-owned fix (§5.5, §6, Figure 8).
//!
//! ```sh
//! cargo run --release --example consistent_cache
//! ```

use dcache_cost::sim::SimTime;
use dcache_cost::study::consistency::{check_linearizable, delayed_write_scenario, HistoryOp};
use dcache_cost::study::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache_cost::study::{ArchKind, DeploymentConfig};
use dcache_cost::workload::{KvWorkloadConfig, SizeDist};

fn main() {
    // ------------------------------------------------------------------
    // Part 1: what does consistency cost?
    // ------------------------------------------------------------------
    println!("Part 1: the cost of consistent reads (20K keys, 1KB values, 95% reads)\n");
    let run = |arch: ArchKind| {
        let cfg = KvExperimentConfig {
            deployment: DeploymentConfig::paper(arch),
            workload: KvWorkloadConfig {
                keys: 20_000,
                alpha: 1.2,
                read_ratio: 0.95,
                sizes: SizeDist::Fixed(1_024),
                seed: 7,
                churn_period: None,
            },
            qps: 100_000.0,
            warmup_requests: 25_000,
            requests: 25_000,
            prewarm: true,
            crash_leaders_at_request: None,
            cache_fault_schedule: None,
            trace_sample_every: None,
            diurnal: None,
            observability: None,
            tenants: None,
            pricing: Default::default(),
        };
        run_kv_experiment(&cfg).expect("run")
    };

    let linked = run(ArchKind::Linked);
    let checked = run(ArchKind::LinkedVersion);
    let leased = run(ArchKind::LeaseOwned);
    for (name, r, consistent) in [
        ("linked (eventual)", &linked, false),
        ("linked + version check", &checked, true),
        ("lease-owned", &leased, true),
    ] {
        println!(
            "{name:>24}: ${:>8.2}/mo   {} version checks   linearizable: {consistent}",
            r.total_cost.total(),
            r.version_checks,
        );
    }
    println!(
        "\n=> the per-read check costs {:.1}x the eventually-consistent cache;\n\
         ownership leases get consistency at {:.2}x (§6).\n",
        checked.total_cost.total() / linked.total_cost.total(),
        leased.total_cost.total() / linked.total_cost.total(),
    );

    // ------------------------------------------------------------------
    // Part 2: why leases alone are not enough — Figure 8.
    // ------------------------------------------------------------------
    println!("Part 2: the delayed-write hazard (Figure 8)\n");
    let unfenced = delayed_write_scenario(false).expect("scenario");
    println!(
        "without fencing : write admitted={}, cache={:?}, storage={:?}, linearizable={}",
        unfenced.delayed_write_admitted,
        unfenced.final_cache_value,
        unfenced.final_storage_value,
        unfenced.linearizable
    );
    let fenced = delayed_write_scenario(true).expect("scenario");
    println!(
        "with fencing    : write admitted={}, cache={:?}, storage={:?}, linearizable={}",
        fenced.delayed_write_admitted,
        fenced.final_cache_value,
        fenced.final_storage_value,
        fenced.linearizable
    );

    // ------------------------------------------------------------------
    // Part 3: the linearizability checker on a hand-built history.
    // ------------------------------------------------------------------
    println!("\nPart 3: the checker itself");
    let t = |n: u64| SimTime::from_nanos(n);
    let good = vec![
        HistoryOp::write(1, t(0), t(1)),
        HistoryOp::read(Some(1), t(2), t(3)),
    ];
    let bad = vec![
        HistoryOp::write(1, t(0), t(1)),
        HistoryOp::write(2, t(2), t(3)),
        HistoryOp::read(Some(1), t(4), t(5)),
    ];
    println!(
        "  write(1); read->1              linearizable: {}",
        check_linearizable(&good, None)
    );
    println!(
        "  write(1); write(2); read->1    linearizable: {}",
        check_linearizable(&bad, None)
    );
}
