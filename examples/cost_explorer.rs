//! Cost explorer: should *your* service add a cache, and how big?
//!
//! Feeds your workload parameters through the paper's §4 analytical model
//! and prints the recommended allocation, the expected saving, and the
//! DRAM+SSD hybrid option.
//!
//! ```sh
//! cargo run --release --example cost_explorer -- \
//!     --qps 40000 --keys 10000000 --alpha 1.1 --value-bytes 23000 \
//!     --replicas 1 --storage-cache-gb 1
//! ```
//!
//! All flags are optional; defaults are the paper's production regime.

use dcache_cost::cost::{HybridModel, Pricing, SsdTier, TheoryModel, TheoryParams};

fn arg(name: &str) -> Option<f64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let params = TheoryParams {
        qps: arg("--qps").unwrap_or(40_000.0),
        keys: arg("--keys").unwrap_or(10_000_000.0) as u64,
        alpha: arg("--alpha").unwrap_or(1.1),
        mean_entry_bytes: arg("--value-bytes").unwrap_or(23_000.0),
        replicas: arg("--replicas").unwrap_or(1.0),
        ..TheoryParams::default()
    };
    let s_d = arg("--storage-cache-gb").unwrap_or(1.0);
    let dataset_gb = params.keys as f64 * params.mean_entry_bytes / 1e9;

    println!("workload: {:.0} QPS over {} keys (Zipf {:.2}), mean entry {:.0} B",
        params.qps, params.keys, params.alpha, params.mean_entry_bytes);
    println!("dataset:  {dataset_gb:.1} GB; storage-layer cache fixed at {s_d:.1} GB\n");

    let model = TheoryModel::new(params.clone());
    let no_cache = model.total_cost(0.0, s_d);
    println!("no linked cache      : ${no_cache:>10.2}/mo   (MR at storage cache: {:.3})",
        model.miss_ratio(s_d));

    let best = model.optimal_s_a(s_d, (dataset_gb * 1.2).max(1.0));
    let best_cost = model.total_cost(best, s_d);
    println!(
        "optimal linked cache : ${best_cost:>10.2}/mo   s_A = {best:.2} GB, hit ratio {:.3}  => {:.2}x cheaper",
        1.0 - model.miss_ratio(best),
        no_cache / best_cost
    );

    for s_a in [1.0, 4.0, 8.0, 16.0] {
        let c = model.total_cost(s_a, s_d);
        println!(
            "  s_A = {s_a:>4.0} GB       : ${c:>10.2}/mo   hit {:.3}   {:.2}x",
            1.0 - model.miss_ratio(s_a),
            no_cache / c
        );
    }

    let hybrid = HybridModel::new(&model, SsdTier::default());
    let alloc = hybrid.optimize(s_d, (dataset_gb * 1.2).max(1.0), dataset_gb.max(1.0) * 2.0);
    println!(
        "\nDRAM+SSD hybrid      : ${:>10.2}/mo   {:.2} GB DRAM + {:.0} GB SSD  => {:.2}x cheaper than no cache",
        alloc.monthly_cost,
        alloc.dram_gb,
        alloc.ssd_gb,
        no_cache / alloc.monthly_cost
    );

    println!("\ngradients at the optimum (s_A = {best:.2} GB):");
    println!("  dT/ds_A = {:+.2} $/GB    dT/ds_D = {:+.2} $/GB",
        model.d_ds_a(best, s_d), model.d_ds_d(best, s_d));
    println!("\nPrices: ${}/core-month, ${}/GB-month DRAM (GCP, paper Section 3).",
        Pricing::default().cpu_core_month, Pricing::default().mem_gb_month);
    println!("Caveat: the model prices steady state; run the full simulator");
    println!("(`dcache::experiment`) for per-architecture and consistency costs.");
}
