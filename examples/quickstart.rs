//! Quickstart: how much does a cache save?
//!
//! Builds the paper's deployment shape for each architecture, runs the same
//! synthetic workload through all of them, and prints the monthly bill.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dcache_cost::cost::Pricing;
use dcache_cost::study::experiment::{run_kv_experiment, KvExperimentConfig};
use dcache_cost::study::{ArchKind, DeploymentConfig};
use dcache_cost::workload::KvWorkloadConfig;

fn main() {
    // The paper's synthetic workload: 100K keys, Zipf(1.2), 95% reads, 1 KB
    // values — scaled down to 20K keys so this example runs in seconds.
    let workload = KvWorkloadConfig {
        keys: 20_000,
        alpha: 1.2,
        read_ratio: 0.95,
        sizes: dcache_cost::workload::SizeDist::Fixed(1_024),
        seed: 42,
        churn_period: None,
    };

    println!(
        "workload: {} keys, Zipf({}), {:.0}% reads, 1KB values",
        workload.keys,
        workload.alpha,
        workload.read_ratio * 100.0
    );
    println!("deployment: 3 app servers, 3 SQL front-ends, 3 storage pods (RF=3)\n");

    let mut base_cost = None;
    for arch in ArchKind::ALL {
        let cfg = KvExperimentConfig {
            deployment: DeploymentConfig::paper(arch),
            workload: workload.clone(),
            qps: 100_000.0,
            warmup_requests: 30_000,
            requests: 30_000,
            prewarm: true,
            crash_leaders_at_request: None,
            cache_fault_schedule: None,
            trace_sample_every: None,
            diurnal: None,
            observability: None,
            tenants: None,
            pricing: Pricing::default(),
        };
        let report = run_kv_experiment(&cfg).expect("experiment runs");
        let total = report.total_cost.total();
        let saving = match base_cost {
            None => {
                base_cost = Some(total);
                "baseline".to_string()
            }
            Some(b) => format!("{:.2}x cheaper", b / total),
        };
        println!(
            "{:>16}: ${:>8.2}/mo  ({:5.1} cores, {:4.0}% cache hits, read p50 {:>4}us)  {}",
            arch.label(),
            total,
            report.total_cores,
            report.cache_hit_ratio * 100.0,
            report.read_latency_p50_us,
            saving,
        );
    }

    println!(
        "\nThe linked cache wins on cost AND latency; the per-read version check\n\
         (linked+version) hands almost all of it back — the paper's §5.5 finding.\n\
         Ownership leases (lease-owned) keep consistency without the check (§6)."
    );
}
