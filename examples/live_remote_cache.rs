//! The Remote architecture over real sockets — and where the simulator's
//! cost constants come from.
//!
//! Starts the `netrpc` cache server on loopback, drives a Zipfian workload
//! through it with real tokio clients, and reports measured per-operation
//! CPU time next to the constants the simulator charges for the same
//! operations. Loopback has no NIC, so wire-level per-byte costs read low
//! here; the fixed per-op costs are the interesting comparison.
//!
//! ```sh
//! cargo run --release --example live_remote_cache
//! ```

use dcache_cost::net::{CacheClient, CacheServer};
use dcache_cost::workload::{KvWorkloadConfig, SizeDist};
use std::time::Instant;

/// Process CPU time (user+sys) in nanoseconds, via getrusage-equivalent
/// /proc accounting. Good enough for per-op averages over millions of ops.
fn process_cpu_nanos() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // Fields 14 and 15 (1-based) are utime/stime in clock ticks. The comm
    // field may contain spaces but is parenthesized, so index from after
    // the closing paren: utime/stime are then fields 11 and 12 (0-based).
    let start = stat.rfind(") ").map(|i| i + 2).unwrap_or(0);
    let fields: Vec<&str> = stat[start..].split_whitespace().collect();
    let utime: u64 = fields.get(11).and_then(|s| s.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|s| s.parse().ok()).unwrap_or(0);
    let ticks_per_sec = 100u64; // CLK_TCK on Linux
    (utime + stime) * (1_000_000_000 / ticks_per_sec)
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() -> std::io::Result<()> {
    let ops: u64 = if std::env::args().any(|a| a == "--quick") {
        20_000
    } else {
        100_000
    };

    let server = CacheServer::bind("127.0.0.1:0", 256 << 20).await?;
    let addr = server.local_addr();
    let handle = server.spawn();
    println!("remote cache listening on {addr}");

    // A Zipfian stream of GET/SET against 10K keys of 1 KB values.
    let cfg = KvWorkloadConfig {
        keys: 10_000,
        alpha: 1.2,
        read_ratio: 0.9,
        sizes: SizeDist::Fixed(1_024),
        seed: 42,
        churn_period: None,
    };
    let mut workload = cfg.build();
    let value = vec![0xABu8; 1_024];

    let mut client = CacheClient::connect(addr).await?;
    // Warm: one SET per key.
    for k in 0..cfg.keys {
        client.set(format!("key{k}").as_bytes(), &value, None).await?;
    }

    let cpu0 = process_cpu_nanos();
    let wall0 = Instant::now();
    let mut hits = 0u64;
    for _ in 0..ops {
        let req = workload.next_request();
        let key = format!("key{}", req.key);
        match req.op {
            dcache_cost::workload::KvOp::Read => {
                if client.get(key.as_bytes()).await?.is_some() {
                    hits += 1;
                }
            }
            dcache_cost::workload::KvOp::Write => {
                client.set(key.as_bytes(), &value, None).await?;
            }
        }
    }
    let wall = wall0.elapsed();
    let cpu = process_cpu_nanos().saturating_sub(cpu0);

    let (srv_hits, srv_misses, entries, used) = client.stats().await?;
    handle.shutdown().await;

    let per_op_cpu_us = cpu as f64 / ops as f64 / 1_000.0;
    let per_op_wall_us = wall.as_micros() as f64 / ops as f64;
    println!("\n{ops} ops over real TCP (1 KB values, 90% reads):");
    println!("  wall time  : {:.2}s  ({per_op_wall_us:.1} us/op round trip)", wall.as_secs_f64());
    println!("  CPU (both sides + runtime): {per_op_cpu_us:.1} us/op");
    println!("  client-observed hits: {hits}; server stats: {srv_hits} hits / {srv_misses} misses, {entries} entries, {used} bytes");

    println!("\nSimulator constants for the same path (see dcache::AppCostConfig):");
    println!("  app rpc fixed 35us x2 sides + cache server op 6us + per-byte terms");
    println!("  => modeled remote GET hit ~ 80-90us CPU at 1 KB, measured {per_op_cpu_us:.1}us.");
    println!("  (Loopback skips NIC/kernel-bypass costs real deployments pay; the");
    println!("   simulator's constants deliberately sit above this floor.)");
    Ok(())
}
