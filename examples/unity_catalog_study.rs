//! The rich-object study: Unity Catalog-Object vs Unity Catalog-KV (§5.4).
//!
//! A `getTable` against the relational schema costs 8 SQL statements plus
//! app-side assembly; the denormalized KV flavor costs one point lookup.
//! This example runs both flavors under Base and Linked and shows the
//! paper's claim: caching the *assembled object* saves disproportionately,
//! because a hit elides the whole query fan-out.
//!
//! ```sh
//! cargo run --release --example unity_catalog_study
//! ```

use dcache_cost::study::unityapp::{
    run_unity_kv_experiment, run_unity_object_experiment, UnityExperimentConfig,
};
use dcache_cost::study::{ArchKind, DeploymentConfig};
use dcache_cost::workload::unity::{UnityDataset, UnityScale};

fn main() {
    // A reduced universe (4K tables) so the example runs in ~10 seconds.
    let scale = UnityScale {
        tables: 4_000,
        schemas: 200,
        catalogs: 10,
        principals: 400,
        ..UnityScale::default()
    };

    let dataset = UnityDataset::new(scale);
    let mut sizes: Vec<u64> = (0..scale.tables).map(|t| dataset.object_logical_bytes(t)).collect();
    sizes.sort_unstable();
    println!(
        "universe: {} tables; assembled objects: median {} KB, p99 {} KB",
        scale.tables,
        sizes[sizes.len() / 2] / 1024,
        sizes[(sizes.len() as f64 * 0.99) as usize] / 1024,
    );
    let stmts = dataset.get_table_statements(7);
    println!("getTable(7) issues {} SQL statements:", stmts.len());
    for (sql, params) in &stmts {
        println!("    {sql}   -- params {params:?}");
    }
    println!();

    let run = |flavor: &str, arch: ArchKind| {
        let mut cfg = UnityExperimentConfig {
            deployment: DeploymentConfig::paper(arch),
            scale,
            qps: 40_000.0,
            warmup_requests: 20_000,
            requests: 20_000,
            prewarm: true,
            pricing: Default::default(),
            stream_seed: 1,
        };
        cfg.deployment.cluster.regions = 12;
        let r = match flavor {
            "object" => run_unity_object_experiment(&cfg).expect("object run"),
            _ => run_unity_kv_experiment(&cfg).expect("kv run"),
        };
        (r.total_cost.total(), r.sql_statements as f64 / r.requests as f64, r.cache_hit_ratio)
    };

    for flavor in ["object", "kv"] {
        let (base, base_sql, _) = run(flavor, ArchKind::Base);
        let (linked, linked_sql, hit) = run(flavor, ArchKind::Linked);
        println!("Unity Catalog-{flavor:6}:");
        println!("    base   ${base:>8.2}/mo   {base_sql:.2} SQL/req");
        println!(
            "    linked ${linked:>8.2}/mo   {linked_sql:.2} SQL/req   {:.0}% hits   => {:.2}x cheaper",
            hit * 100.0,
            base / linked
        );
    }

    println!(
        "\nCaching the rich object eliminates the 8-statement query amplification\n\
         entirely on a hit; the KV flavor only saves a single lookup — hence the\n\
         object flavor's larger saving multiple (§5.4, Figure 7)."
    );
}
